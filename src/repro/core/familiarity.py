"""Code-familiarity models (paper §6, §9.2).

The **Degree-of-Knowledge (DOK)** model scores how familiar a developer is
with a file from three version-control factors:

    DOK = α₀ + α_FA·FA + α_DL·DL − α_AC·ln(1 + AC)

* FA — first authorship: 1 if the developer created the file;
* DL — deliveries: number of the developer's commits touching the file;
* AC — acceptances: commits to the file authored by *others*.

The published weights (fit from a developer survey) are α₀ = 3.1,
α_FA = 1.2, α_DL = 0.2, α_AC = 0.5; :mod:`repro.core.calibration`
reproduces the fitting procedure.  Ablations (Table 6 "w/o AC/DL/FA")
zero out one factor.

The **EA model** (§9.2 alternative) scores expertise from the *types* of
commits a developer made to the file — new functionality counts more than
a bug fix, which counts more than refactoring — requiring no survey.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.vcs.objects import Author
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class DokWeights:
    """Weights of the DOK linear model."""

    alpha0: float = 3.1
    alpha_fa: float = 1.2
    alpha_dl: float = 0.2
    alpha_ac: float = 0.5

    def without(self, factor: str) -> "DokWeights":
        """Zero one factor's weight: factor ∈ {'FA', 'DL', 'AC'}."""
        key = {"FA": "alpha_fa", "DL": "alpha_dl", "AC": "alpha_ac"}[factor.upper()]
        return replace(self, **{key: 0.0})


class DokModel:
    """The DOK familiarity model over a MiniGit repository."""

    def __init__(self, repo: Repository, weights: DokWeights | None = None):
        self.repo = repo
        self.weights = weights or DokWeights()
        self._cache: dict[tuple[str, str, object], dict] = {}

    def breakdown(
        self, author: Author | str, path: str, until_rev: int | str | None = None
    ) -> dict:
        """The DOK terms behind one score — the provenance/explain view.

        Raw factors (``fa``/``dl``/``ac``), each weighted term, the
        intercept and the final score: exactly the numbers ``score``
        sums, from one shared computation.
        """
        if isinstance(author, str):
            author = self._author_by_name(author)
        key = (author.name, path, until_rev)
        if key not in self._cache:
            stats = self.repo.file_stats(path, author, until_rev=until_rev)
            weights = self.weights
            fa = 1 if stats.first_authorship else 0
            term_fa = weights.alpha_fa * fa
            term_dl = weights.alpha_dl * stats.deliveries
            term_ac = weights.alpha_ac * math.log1p(stats.acceptances)
            self._cache[key] = {
                "model": "dok",
                "author": author.name,
                "file": path,
                "fa": fa,
                "dl": stats.deliveries,
                "ac": stats.acceptances,
                "alpha0": weights.alpha0,
                "term_fa": term_fa,
                "term_dl": term_dl,
                "term_ac": term_ac,
                "score": weights.alpha0 + term_fa + term_dl - term_ac,
            }
        return dict(self._cache[key])

    def score(self, author: Author | str, path: str, until_rev: int | str | None = None) -> float:
        """Familiarity of ``author`` with ``path`` (higher = more familiar)."""
        return self.breakdown(author, path, until_rev=until_rev)["score"]

    def _author_by_name(self, name: str) -> Author:
        for author in self.repo.authors():
            if author.name == name:
                return author
        return Author(name=name)


# Commit-type weights for the EA model: new functionality implies deeper
# knowledge than fixing, which implies more than refactoring/cleanup.
_EA_NEW = 1.0
_EA_FIX = 0.6
_EA_REFACTOR = 0.3


def classify_commit_message(message: str) -> str:
    """'fix' / 'refactor' / 'new' from the commit message."""
    lowered = message.lower()
    if any(marker in lowered for marker in ("fix", "bug", "cve", "fault", "corrupt")):
        return "fix"
    if any(marker in lowered for marker in ("refactor", "cleanup", "clean up", "style", "rename")):
        return "refactor"
    return "new"


class EaModel:
    """Expertise-Atoms-style model (Mockus & Herbsleb) — weights commits by
    their type; needs no developer survey."""

    def __init__(self, repo: Repository):
        self.repo = repo
        self._cache: dict[tuple[str, str, object], float] = {}

    def score(self, author: Author | str, path: str, until_rev: int | str | None = None) -> float:
        name = author if isinstance(author, str) else author.name
        key = (name, path, until_rev)
        if key not in self._cache:
            total = 0.0
            for commit in self.repo.file_log(path, until_rev=until_rev):
                if commit.author.name != name:
                    continue
                kind = classify_commit_message(commit.message)
                total += {"new": _EA_NEW, "fix": _EA_FIX, "refactor": _EA_REFACTOR}[kind]
            self._cache[key] = total
        return self._cache[key]
