"""The ValueCheck facade: detection → authorship → pruning → ranking.

Every stage can be ablated through :class:`ValueCheckConfig`, which is how
the Table 6 experiment builds its "w/o Authorship", "w/o Familiarity" and
"w/o FA/DL/AC" groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.familiarity import DokModel, DokWeights
from repro.core.findings import AuthorshipInfo, Candidate, Finding
from repro.core.project import Project
from repro.core.pruning import PruneContext, default_pipeline
from repro.core.ranking import rank_findings
from repro.core.report import Report
from repro.engine import DEFAULT_CACHE, AnalysisEngine, EngineRun
from repro.obs.clock import monotonic


@dataclass(frozen=True)
class ValueCheckConfig:
    """Knobs for the pipeline.

    ``use_authorship=False`` removes cross-scope filtering (every candidate
    is treated as reportable); ``pruners=None`` enables all four pruning
    strategies, a set restricts them, an empty set disables pruning;
    ``use_familiarity=False`` keeps detection order instead of DOK ranking;
    ``dok_weights`` supports the per-factor ablations.

    ``executor``/``workers`` select how per-module analysis is scheduled
    (``serial`` | ``thread`` | ``process``); ``module_cache`` toggles the
    content-addressed result cache.  Findings are bit-identical across
    executors — the engine merges deterministically.
    """

    use_authorship: bool = True
    pruners: frozenset[str] | None = None
    use_familiarity: bool = True
    dok_weights: DokWeights = field(default_factory=DokWeights)
    peer_min_occurrences: int = 10
    peer_unused_fraction: float = 0.5
    cursor_min_increments: int = 2
    # §9 extensions (both off by default, matching the paper's tool):
    # the commit-history/comment pruner of §9.1 and the survey-free EA
    # familiarity model of §9.2.
    history_pruning: bool = False
    familiarity_model: str = "dok"  # 'dok' | 'ea'
    # Engine selection (parallel scheduling + content-addressed caching).
    executor: str = "serial"  # 'serial' | 'thread' | 'process'
    workers: int | None = None  # None → os.cpu_count()
    module_cache: bool = True
    # Enabled rule packs (see repro.rules); None = every registered pack.
    rules: tuple[str, ...] | None = None

    def without_factor(self, factor: str) -> "ValueCheckConfig":
        return replace(self, dok_weights=self.dok_weights.without(factor))


def resolve_semantic(
    project: Project, candidates: list[Candidate], rev: int | str | None
) -> list[Finding]:
    """Resolve semantic-rule candidates (use-after-free, resource leaks).

    These carry their evidence in ``Candidate.evidence_lines``; authorship
    reuses the blame machinery directly — the definition author against
    the authors of the evidence sites — instead of the unused-definition
    scenario dispatch in :class:`CrossScopeResolver`.  Shared by the full
    pipeline and the incremental analyzer so warm ``analyze_diff`` steps
    resolve identically to cold runs."""
    if not candidates:
        return []
    blame = project.blame_index(rev) if project.repo is not None else None
    findings: list[Finding] = []
    for candidate in candidates:
        def_author = ""
        introduced_day = -1
        counterparts: list[str] = []
        if blame is not None:
            info = blame.line_info(candidate.file, candidate.line)
            if info is not None:
                def_author = info.author.name
                introduced_day = info.day
            for line in candidate.evidence_lines:
                evidence = blame.line_info(candidate.file, line)
                if evidence is not None and evidence.author.name not in counterparts:
                    counterparts.append(evidence.author.name)
        evidence_at = ", ".join(str(line) for line in candidate.evidence_lines)
        findings.append(
            Finding(
                candidate=candidate,
                authorship=AuthorshipInfo(
                    cross_scope=True,
                    def_author=def_author,
                    counterpart_authors=tuple(counterparts),
                    introducing_author=def_author,
                    blamed_file=candidate.file,
                    introduced_day=introduced_day,
                    reason=f"{candidate.kind.value} evidence at line(s) {evidence_at}",
                    peer_sites=len(candidate.evidence_lines),
                ),
            )
        )
    return findings


class ValueCheck:
    """Run the full pipeline over a project snapshot."""

    def __init__(self, config: ValueCheckConfig | None = None):
        self.config = config or ValueCheckConfig()

    def _engine(self) -> AnalysisEngine:
        return AnalysisEngine(
            executor=self.config.executor,
            workers=self.config.workers,
            cache=DEFAULT_CACHE if self.config.module_cache else None,
            rules=self.config.rules,
        )

    def detect_candidates(self, project: Project) -> list[Candidate]:
        """Stage 1: raw unused definitions from every module."""
        return self._engine().run(project).candidates

    def _resolve_semantic(
        self, project: Project, candidates: list[Candidate], rev: int | str | None
    ) -> list[Finding]:
        return resolve_semantic(project, candidates, rev)

    def _resolve_authorship(
        self, project: Project, candidates: list[Candidate], rev: int | str | None
    ) -> list[Finding]:
        """Stage 2: cross-scope resolution (or its ablation)."""
        if self.config.use_authorship:
            return project.resolver(rev).resolve_all(candidates)
        blame = project.blame_index(rev) if project.repo is not None else None
        findings = []
        for candidate in candidates:
            author_name = ""
            introduced_day = -1
            if blame is not None:
                info = blame.line_info(candidate.file, candidate.line)
                if info is not None:
                    author_name = info.author.name
                    introduced_day = info.day
            findings.append(
                Finding(
                    candidate=candidate,
                    authorship=AuthorshipInfo(
                        cross_scope=True,
                        def_author=author_name,
                        introducing_author=author_name,
                        blamed_file=candidate.file,
                        introduced_day=introduced_day,
                        reason="authorship filtering disabled",
                    ),
                )
            )
        return findings

    def analyze(
        self,
        project: Project,
        rev: int | str | None = None,
        telemetry: obs.Telemetry | None = None,
    ) -> Report:
        """Run all stages and return the report.

        Telemetry: every call records into a **fresh** metrics registry
        (re-entrant ``analyze`` calls never double-count), while spans
        join the ambient tracer when one is active — so a caller that
        wraps project construction + analysis in ``obs.use(...)`` gets a
        single parse→rank trace.  Pass ``telemetry`` explicitly to own
        the registry (e.g. to accumulate across runs deliberately).
        """
        started = monotonic()
        if telemetry is None:
            ambient = obs.current()
            tracer = ambient.tracer if ambient is not None else obs.Tracer()
            telemetry = obs.Telemetry(tracer=tracer, metrics=obs.MetricsRegistry())
        registry = telemetry.metrics
        provenance = obs.ProvenanceLog()
        with obs.use(telemetry), telemetry.tracer.span("analyze", project=project.name):
            engine_run: EngineRun = self._engine().run(
                project, metrics=registry, provenance=provenance
            )
            candidates = engine_run.candidates
            registry.inc("detect.candidates", len(candidates))

            # Imported lazily: repro.rules pulls in repro.core, whose
            # package import reaches back into this module.
            from repro.rules.registry import resolve_rules, semantic_kinds

            packs = resolve_rules(self.config.rules)
            evidence_kinds = semantic_kinds(packs)
            with telemetry.tracer.span("resolve"):
                classic = [c for c in candidates if c.kind not in evidence_kinds]
                semantic = [c for c in candidates if c.kind in evidence_kinds]
                findings = self._resolve_authorship(project, classic, rev)
                findings += self._resolve_semantic(project, semantic, rev)
            for finding in findings:
                if finding.authorship is not None:
                    provenance.set_resolution(finding.key, finding.authorship.provenance())
            cross = [f for f in findings if f.authorship and f.authorship.cross_scope]
            rest = [f for f in findings if not (f.authorship and f.authorship.cross_scope)]
            registry.inc("resolve.cross_scope", len(cross))
            registry.inc("resolve.local", len(rest))

            pipeline = default_pipeline(
                enable=set(self.config.pruners) if self.config.pruners is not None else None,
                min_increments=self.config.cursor_min_increments,
                peer_min_occurrences=self.config.peer_min_occurrences,
                peer_unused_fraction=self.config.peer_unused_fraction,
                include_history=self.config.history_pruning,
            )
            context = PruneContext(project=project, metrics=registry, provenance=provenance)
            with telemetry.tracer.span("prune"):
                cross = pipeline.apply(
                    cross, context, rules=tuple(pack.name for pack in packs)
                )
            prune_stats = pipeline.stats(cross)
            findings = cross + rest

            model = None
            if project.repo is not None:
                if self.config.familiarity_model == "ea":
                    from repro.core.familiarity import EaModel

                    model = EaModel(project.repo)
                else:
                    model = DokModel(project.repo, weights=self.config.dok_weights)
            with telemetry.tracer.span("rank"):
                findings = rank_findings(
                    findings,
                    model=model,
                    until_rev=rev,
                    use_familiarity=self.config.use_familiarity,
                    metrics=registry,
                    provenance=provenance,
                )
            provenance.finalize(findings)
        converged = not engine_run.stats.non_converged
        if not converged:
            registry.inc("andersen.non_converged_modules", len(engine_run.stats.non_converged))
        seconds = monotonic() - started
        registry.observe("analyze.run_seconds", seconds)
        return Report(
            project=project.name,
            findings=findings,
            prune_stats=prune_stats,
            seconds=seconds,
            engine_stats=engine_run.stats,
            metrics=registry.snapshot(),
            trace=telemetry.tracer,
            converged=converged,
            provenance=provenance,
        )
