"""History-based pruning — the paper's §9.1 future-work extension.

"Some unused definitions are just legacy code or debugging, which could
be further pruned by analyzing the commit history and comments.  But
this will incur much more overhead so we do not prune this type of
false positive."

This optional pruner implements that idea: a candidate is claimed when

* the commit that introduced its definition line says it is debugging/
  instrumentation/telemetry work, or
* the surrounding source carries debug/legacy markers.

It is *off by default* (matching the paper's shipped configuration); the
extensions ablation measures what enabling it buys and costs."""

from __future__ import annotations

import re

from repro.core.findings import Candidate
from repro.core.pruning.base import BasePruner, PruneContext
from repro.obs import PrunerVerdict
from repro.vcs.blame import BlameIndex

_MESSAGE_MARKERS = ("debug", "instrument", "telemetry", "diagnostic", "tracing")
_SOURCE_MARKERS = re.compile(r"\b(debug|instrumentation|legacy|deprecated|diagnostic)\b", re.IGNORECASE)


class HistoryPruner(BasePruner):
    name = "history"

    def __init__(self) -> None:
        self._blame_cache: dict[int, BlameIndex] = {}

    def _blame(self, context: PruneContext) -> BlameIndex | None:
        repo = context.project.repo
        if repo is None:
            return None
        key = id(repo)
        if key not in self._blame_cache:
            self._blame_cache[key] = BlameIndex(repo)
        return self._blame_cache[key]

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        # Source-comment markers around the definition.
        for line in (candidate.line, candidate.decl_line):
            if not line:
                continue
            match = _SOURCE_MARKERS.search(context.raw_line(candidate, line))
            if match:
                return PrunerVerdict(
                    self.name,
                    True,
                    {"marker": "source", "token": match.group(0).lower(), "line": line},
                )
        # Commit-message markers on the introducing commit.
        blame = self._blame(context)
        if blame is None:
            return PrunerVerdict(self.name, False, {"reason": "no repository"})
        info = blame.line_info(candidate.file, candidate.line)
        if info is None:
            return PrunerVerdict(self.name, False, {"reason": "line not blamed"})
        try:
            commit = context.project.repo.commit_by_id(info.commit_id)  # type: ignore[union-attr]
        except Exception:
            return PrunerVerdict(self.name, False, {"reason": "commit not found"})
        message = commit.message.lower()
        for marker in _MESSAGE_MARKERS:
            if marker in message:
                return PrunerVerdict(
                    self.name,
                    True,
                    {"marker": "commit_message", "token": marker, "commit": info.commit_id},
                )
        return PrunerVerdict(self.name, False, {"commit": info.commit_id})
