"""Configuration-dependency pruning (paper §5.1).

A definition can look unused only because its uses sit under a
preprocessor conditional the current build configuration disabled —
the IR simply never saw them.  ValueCheck "looks into the corresponding
source code of each definition and checks if there is any use of this
definition enclosed by #if/#ifdef/#ifndef…#endif directives in the same
function"; if so, the definition is pruned.

We check the *raw* (pre-preprocessing) text: any occurrence of the
variable, other than the definition line itself, inside a conditional
region that overlaps the candidate's function."""

from __future__ import annotations

import re

from repro.core.findings import Candidate, CandidateKind
from repro.core.pruning.base import BasePruner, PruneContext
from repro.obs import PrunerVerdict


class ConfigDependencyPruner(BasePruner):
    name = "config_dependency"

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        if candidate.kind is CandidateKind.IGNORED_RETURN and candidate.store_kind is None:
            # Discarded calls have no variable to find uses of.
            return PrunerVerdict(self.name, False, {"reason": "no variable"})
        module = context.module_of(candidate)
        function = context.function_of(candidate)
        if module is None or module.source is None or function is None:
            return PrunerVerdict(self.name, False, {"reason": "no raw source"})
        var = candidate.var.split("#", 1)[0]
        pattern = re.compile(rf"\b{re.escape(var)}\b")
        raw_lines = module.source.raw.split("\n")
        regions = 0
        for region in module.source.regions:
            if region.end < function.line or region.start > function.end_line:
                continue
            regions += 1
            start = max(region.start, 1)
            end = min(region.end, len(raw_lines))
            for line_number in range(start, end + 1):
                if line_number == candidate.line:
                    continue
                if pattern.search(raw_lines[line_number - 1]):
                    return PrunerVerdict(
                        self.name,
                        True,
                        {
                            "variable": var,
                            "guard_start": region.start,
                            "guard_end": region.end,
                            "use_line": line_number,
                        },
                    )
        return PrunerVerdict(
            self.name, False, {"variable": var, "guarded_regions": regions}
        )
