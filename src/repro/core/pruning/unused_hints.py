"""Unused-hint pruning (paper §5.3).

Developers who *intend* a definition to be unused say so:
``__attribute__((unused))``, ``[[maybe_unused]]``, a ``(void)`` discard
cast, or an ``unused`` marker in the surrounding source.  The paper
excludes these "by matching the keyword 'unused' in the source code of
these unused definitions"."""

from __future__ import annotations

from repro.core.findings import Candidate
from repro.core.pruning.base import PruneContext

_HINT_ATTRS = frozenset({"unused", "maybe_unused"})

# Tool-style inline suppression, the moral equivalent of the attribute
# for code bases that cannot change signatures (macros, ABI headers).
SUPPRESSION_MARKER = "valuecheck: ignore"


class UnusedHintsPruner:
    name = "unused_hints"

    def should_prune(self, candidate: Candidate, context: PruneContext) -> bool:
        if any(attr in _HINT_ATTRS for attr in candidate.var_attrs):
            return True
        if candidate.void_cast:
            return True
        for line in {candidate.line, candidate.decl_line}:
            if not line:
                continue
            text = context.raw_line(candidate, line).lower()
            if "unused" in text or SUPPRESSION_MARKER in text:
                return True
        return False
