"""Unused-hint pruning (paper §5.3).

Developers who *intend* a definition to be unused say so:
``__attribute__((unused))``, ``[[maybe_unused]]``, a ``(void)`` discard
cast, or an ``unused`` marker in the surrounding source.  The paper
excludes these "by matching the keyword 'unused' in the source code of
these unused definitions"."""

from __future__ import annotations

from repro.core.findings import Candidate
from repro.core.pruning.base import BasePruner, PruneContext
from repro.obs import PrunerVerdict

_HINT_ATTRS = frozenset({"unused", "maybe_unused"})

# Tool-style inline suppression, the moral equivalent of the attribute
# for code bases that cannot change signatures (macros, ABI headers).
SUPPRESSION_MARKER = "valuecheck: ignore"


class UnusedHintsPruner(BasePruner):
    name = "unused_hints"

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        matched = [attr for attr in candidate.var_attrs if attr in _HINT_ATTRS]
        if matched:
            return PrunerVerdict(
                self.name, True, {"hint": "attribute", "attribute": matched[0]}
            )
        if candidate.void_cast:
            return PrunerVerdict(self.name, True, {"hint": "void_cast"})
        for line in {candidate.line, candidate.decl_line}:
            if not line:
                continue
            text = context.raw_line(candidate, line).lower()
            for token in ("unused", SUPPRESSION_MARKER):
                if token in text:
                    return PrunerVerdict(
                        self.name, True, {"hint": "token", "token": token, "line": line}
                    )
        return PrunerVerdict(self.name, False, {"hint": None})
