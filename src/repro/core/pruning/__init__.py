"""False-positive pruning (paper §5, Table 1).

Four strategies, applied as an ordered pipeline (config dependency →
cursor → unused hints → peer definition).  Pipeline order matters for the
attribution of prune counts: a case matching several patterns is claimed
by the earliest stage, exactly as the paper notes under Table 4.
"""

from repro.core.pruning.base import PruneContext, Pruner
from repro.core.pruning.config_dependency import ConfigDependencyPruner
from repro.core.pruning.cursor import CursorPruner
from repro.core.pruning.unused_hints import UnusedHintsPruner
from repro.core.pruning.peer_definition import PeerDefinitionPruner
from repro.core.pruning.pipeline import PruningPipeline, default_pipeline

__all__ = [
    "PruneContext",
    "Pruner",
    "ConfigDependencyPruner",
    "CursorPruner",
    "UnusedHintsPruner",
    "PeerDefinitionPruner",
    "PruningPipeline",
    "default_pipeline",
]
