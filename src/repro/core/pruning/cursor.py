"""Cursor pruning (paper §5.2, Fig. 5).

``*o++ = c`` leaves the final increment of ``o`` dead, but the increment
*is* the semantics — "moving the cursor".  The paper prunes a definition
"if a variable is incremented repeatedly by the same constant".

We use the increment provenance the IR builder records: a candidate whose
store has ``increment_delta`` set is pruned when the function contains at
least ``min_increments`` stores to the same variable with that same delta
(the candidate itself included)."""

from __future__ import annotations

from repro.core.findings import Candidate
from repro.core.pruning.base import BasePruner, PruneContext
from repro.ir.instructions import Store
from repro.obs import PrunerVerdict


class CursorPruner(BasePruner):
    name = "cursor"

    def __init__(self, min_increments: int = 2):
        self.min_increments = min_increments

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        if candidate.increment_delta is None:
            return PrunerVerdict(self.name, False, {"reason": "not an increment"})
        function = context.function_of(candidate)
        if function is None:
            return PrunerVerdict(self.name, False, {"reason": "function not found"})
        same_delta = 0
        for instruction in function.instructions():
            if (
                isinstance(instruction, Store)
                and instruction.addr is not None
                and instruction.addr.tracked_var() == candidate.var
                and instruction.increment_delta == candidate.increment_delta
            ):
                same_delta += 1
        return PrunerVerdict(
            self.name,
            same_delta >= self.min_increments,
            {
                "delta": candidate.increment_delta,
                "same_delta_stores": same_delta,
                "min_increments": self.min_increments,
            },
        )
