"""Peer-definition pruning (paper §5.4).

How much do developers *care* about using this definition?  Look at its
peers:

* for a function return value, the peers are the return values at every
  other call site of the same function (``printf`` results are ignored
  everywhere — ignoring one more is no bug);
* for the n-th parameter of a function, the peers are the n-th parameters
  of all functions with the same signature.

"If the occurrences are over ten and over half of the peer definitions
are not used, we will not report it." Both thresholds are constructor
parameters (defaults match the paper)."""

from __future__ import annotations

from repro.core.findings import Candidate, CandidateKind
from repro.core.pruning.base import BasePruner, PruneContext
from repro.obs import PrunerVerdict


class PeerDefinitionPruner(BasePruner):
    name = "peer_definition"

    def __init__(self, min_occurrences: int = 10, unused_fraction: float = 0.5):
        self.min_occurrences = min_occurrences
        self.unused_fraction = unused_fraction

    def _mostly_unused(self, usage_flags: list[bool]) -> bool:
        if len(usage_flags) <= self.min_occurrences:
            return False
        unused = sum(1 for used in usage_flags if not used)
        return unused > self.unused_fraction * len(usage_flags)

    def _examine(self, context: PruneContext, usage_flags, shape: str) -> dict:
        """Decide one peer set, recording its site statistics: how many
        peer definition sites were consulted and what fraction ignored
        the value (the §5.4 thresholds act on exactly these numbers).
        The returned evidence carries the same counted sites the
        histograms observe, so the audit trail and the metrics agree by
        construction."""
        flags = list(usage_flags)
        context.observe("prune.peer_sites", len(flags), shape=shape)
        unused = sum(1 for used in flags if not used)
        if flags:
            context.observe("prune.peer_unused_fraction", unused / len(flags), shape=shape)
        return {
            "shape": shape,
            "sites": len(flags),
            "unused": unused,
            "fraction": unused / len(flags) if flags else 0.0,
            "min_occurrences": self.min_occurrences,
            "unused_threshold": self.unused_fraction,
            "pruned": self._mostly_unused(flags),
        }

    def _verdict(self, evidence: dict) -> PrunerVerdict:
        pruned = evidence.pop("pruned")
        return PrunerVerdict(self.name, pruned, evidence)

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        index = context.project.index
        if candidate.kind is CandidateKind.IGNORED_RETURN:
            callees = [
                callee
                for callee in (
                    candidate.resolved_callees
                    or ((candidate.callee,) if candidate.callee else ())
                )
                if callee
            ]
            last: dict | None = None
            for callee in callees:
                evidence = self._examine(context, index.return_usage(callee), shape="return")
                evidence["callee"] = callee
                if evidence["pruned"]:
                    return self._verdict(evidence)
                last = evidence
            if last is None:
                return PrunerVerdict(self.name, False, {"reason": "no resolvable callee"})
            return self._verdict(last)
        if candidate.kind.is_param_shape:
            location = index.location(candidate.function)
            if location is None or candidate.param_index < 0:
                return PrunerVerdict(self.name, False, {"reason": "parameter not indexed"})
            peers = index.peer_params(location.signature, candidate.param_index)
            evidence = self._examine(context, peers, shape="param")
            evidence["signature"] = location.signature
            evidence["param_index"] = candidate.param_index
            return self._verdict(evidence)
        return PrunerVerdict(self.name, False, {"reason": "not a peer-comparable shape"})
