"""Pruner interface and shared context."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.findings import Candidate
from repro.core.project import Project
from repro.ir.module import Function, Module
from repro.obs import MetricsRegistry, ProvenanceLog, PrunerVerdict


@dataclass
class PruneContext:
    """Everything a pruner may consult about a candidate's surroundings."""

    project: Project
    # Per-run metrics registry; pruners record through the helpers below
    # (no-ops when the pipeline runs without telemetry).
    metrics: MetricsRegistry | None = None
    # Per-run provenance log; the pipeline records one verdict per
    # pruner consulted (None when the run keeps no audit trail).
    provenance: ProvenanceLog | None = None

    def count(self, name: str, value: float = 1, **labels) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, **labels)

    def module_of(self, candidate: Candidate) -> Module | None:
        return self.project.modules.get(candidate.file)

    def function_of(self, candidate: Candidate) -> Function | None:
        module = self.module_of(candidate)
        if module is None:
            return None
        return module.functions.get(candidate.function)

    def raw_lines(self, candidate: Candidate) -> list[str]:
        module = self.module_of(candidate)
        if module is None or module.source is None:
            return []
        return module.source.raw.split("\n")

    def raw_line(self, candidate: Candidate, line: int) -> str:
        lines = self.raw_lines(candidate)
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""


class Pruner(Protocol):
    """A pruning strategy; ``name`` keys the Table 4 breakdown.

    ``decide`` is the one decision entry point: it returns the verdict
    *and* the concrete evidence it rests on, and both the kill counters
    and the provenance audit trail are derived from that single return
    value (so the two can never disagree).  ``should_prune`` survives as
    the boolean convenience view over ``decide``.
    """

    name: str

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        """The verdict for this candidate, with its evidence."""
        ...

    def should_prune(self, candidate: Candidate, context: PruneContext) -> bool:
        """True if this candidate is an intentional unused definition."""
        ...


class BasePruner:
    """Shared ``should_prune`` → ``decide`` delegation."""

    name = "base"

    def decide(self, candidate: Candidate, context: PruneContext) -> PrunerVerdict:
        raise NotImplementedError

    def should_prune(self, candidate: Candidate, context: PruneContext) -> bool:
        return self.decide(candidate, context).pruned
