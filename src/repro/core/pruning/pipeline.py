"""Ordered pruning pipeline with per-strategy accounting (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.findings import Finding
from repro.core.pruning.base import PruneContext, Pruner
from repro.core.pruning.config_dependency import ConfigDependencyPruner
from repro.core.pruning.cursor import CursorPruner
from repro.core.pruning.history import HistoryPruner
from repro.core.pruning.unused_hints import UnusedHintsPruner
from repro.core.pruning.peer_definition import PeerDefinitionPruner


@dataclass
class PruningPipeline:
    """Applies pruners in order; the first match claims the candidate."""

    pruners: list[Pruner] = field(default_factory=list)

    def apply(
        self,
        findings: list[Finding],
        context: PruneContext,
        rules: tuple[str, ...] | None = None,
    ) -> list[Finding]:
        """Return findings with ``pruned_by`` stamped (survivors keep None).

        Each finding is only shown to the pruners its rule pack's
        ``pruner_policy`` allows (the unused-definitions pack allows all,
        preserving the paper's behaviour; semantic packs restrict the
        list).  ``rules`` names the enabled packs, for per-rule kill
        accounting.

        Accounting (when ``context.metrics`` is set): every pruner gets a
        ``prune.killed{pruner=...}`` counter — zero-initialised so stage
        sums stay comparable across runs — plus ``prune.examined`` and
        ``prune.survived`` totals that reconcile with the report's
        candidate counts.  Kills are additionally attributed to the
        finding's rule pack under ``prune.killed{rule=...}``.

        Kill counters and provenance verdicts are both derived from the
        *same* :class:`~repro.obs.PrunerVerdict` objects each pruner's
        ``decide`` returns: a short-circuiting pruner cannot make the
        counter and the audit trail disagree.  Pruners after the first
        kill are never consulted (pipeline order claims the candidate),
        so the trail ends at the claiming verdict.
        """
        # Imported lazily: repro.rules pulls in repro.core, whose package
        # import reaches back into this module.
        from repro.rules.registry import pack_for_kind

        for pruner in self.pruners:
            context.count("prune.killed", 0, pruner=pruner.name)
        for rule in rules or ():
            context.count("prune.killed", 0, rule=rule)
        out: list[Finding] = []
        for finding in findings:
            pack = pack_for_kind(finding.candidate.kind)
            pruned_by: str | None = None
            for pruner in self.pruners:
                if not pack.allows_pruner(pruner.name):
                    continue
                verdict = pruner.decide(finding.candidate, context)
                if context.provenance is not None:
                    context.provenance.add_verdict(finding.key, verdict)
                if verdict.pruned:
                    pruned_by = verdict.pruner
                    break
            context.count("prune.examined")
            if pruned_by is not None:
                context.count("prune.killed", 1, pruner=pruned_by)
                context.count("prune.killed", 1, rule=pack.name)
            else:
                context.count("prune.survived")
            out.append(replace(finding, pruned_by=pruned_by))
        return out

    def stats(self, findings: list[Finding]) -> dict[str, int]:
        """Prune counts per strategy (over already-stamped findings)."""
        counts = {pruner.name: 0 for pruner in self.pruners}
        for finding in findings:
            if finding.pruned_by is not None:
                counts[finding.pruned_by] = counts.get(finding.pruned_by, 0) + 1
        return counts


def default_pipeline(
    enable: set[str] | None = None,
    min_increments: int = 2,
    peer_min_occurrences: int = 10,
    peer_unused_fraction: float = 0.5,
    include_history: bool = False,
) -> PruningPipeline:
    """The paper's pipeline, in the paper's order.  ``enable`` restricts to
    a subset of strategy names (for ablations); ``include_history`` adds
    the §9.1 future-work pruner after the four published strategies."""
    pruners: list[Pruner] = [
        ConfigDependencyPruner(),
        CursorPruner(min_increments=min_increments),
        UnusedHintsPruner(),
        PeerDefinitionPruner(
            min_occurrences=peer_min_occurrences, unused_fraction=peer_unused_fraction
        ),
    ]
    if include_history:
        pruners.append(HistoryPruner())
    if enable is not None:
        pruners = [pruner for pruner in pruners if pruner.name in enable]
    return PruningPipeline(pruners=pruners)
