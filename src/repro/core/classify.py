"""Bug-type classification (Table 3's missing-check vs semantic split).

The paper categorises confirmed bugs into *missing-check* bugs (a status
or sanity value goes unobserved, so later execution proceeds on a wrong
assumption) and *semantic* bugs (no crash, but the program logic is
wrong — Figure 6b's corrupted security context).  The shape of the
unused definition predicts the category:

* a discarded or clobbered **call result** is a status that was meant to
  be checked → missing check;
* an unused or overwritten **argument** is an input whose validation or
  effect was skipped → missing check;
* an unused **field definition** or a clobbered locally-computed value
  is state that should have flowed onward → semantic.

`classify_candidate` applies that mapping; the Table 3 driver reports
both the classifier's view and the developers' labels (ground truth)
plus their agreement."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.findings import Candidate, CandidateKind

MISSING_CHECK = "missing_check"
SEMANTIC = "semantic"


@dataclass(frozen=True)
class BugTypePrediction:
    bug_type: str
    rationale: str


def classify_candidate(candidate: Candidate) -> BugTypePrediction:
    """Predict the Table 3 bug category from the candidate's shape."""
    kind = candidate.kind
    if kind is CandidateKind.IGNORED_RETURN:
        return BugTypePrediction(
            MISSING_CHECK, "call result discarded — error status never observed"
        )
    if kind in (CandidateKind.UNUSED_PARAM, CandidateKind.OVERWRITTEN_ARG):
        return BugTypePrediction(
            MISSING_CHECK, "caller-supplied argument never validated or honoured"
        )
    if kind is CandidateKind.OVERWRITTEN_DEF:
        if candidate.is_field:
            return BugTypePrediction(
                SEMANTIC, "struct field clobbered — state not propagated"
            )
        if candidate.callee is not None:
            return BugTypePrediction(
                MISSING_CHECK, "status from callee clobbered before its check"
            )
        return BugTypePrediction(
            SEMANTIC, "locally computed value replaced — wrong value flows on"
        )
    return BugTypePrediction(SEMANTIC, "dead state update — intended effect lost")


def classification_agreement(
    pairs: list[tuple[str, str]],
) -> float:
    """Fraction of (predicted, labelled) pairs that agree."""
    if not pairs:
        return 1.0
    return sum(1 for predicted, labelled in pairs if predicted == labelled) / len(pairs)
