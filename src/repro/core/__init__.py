"""ValueCheck core — the paper's contribution.

Pipeline (paper Fig. 2):

1. :mod:`repro.core.detector` — flow-/field-sensitive, alias-aware unused
   definition detection over the IR (Fig. 4 algorithm with the
   author-carrying define set);
2. :mod:`repro.core.cross_scope` — authorship lookup for the three
   cross-scope scenarios (§3.1/§4.2);
3. :mod:`repro.core.pruning` — the four false-positive pruners (§5);
4. :mod:`repro.core.familiarity` + :mod:`repro.core.ranking` — DOK
   code-familiarity scoring and prioritisation (§6);
5. :mod:`repro.core.valuecheck` — the facade tying it together, plus
   :mod:`repro.core.incremental` for per-commit analysis (§8.6).
"""

from repro.core.findings import Candidate, CandidateKind, Finding
from repro.core.project import Project, ProjectIndex
from repro.core.detector import detect_function, detect_module
from repro.core.cross_scope import CrossScopeResolver
from repro.core.familiarity import DokModel, DokWeights, EaModel
from repro.core.ranking import rank_findings
from repro.core.report import Report
from repro.core.valuecheck import ValueCheck, ValueCheckConfig
from repro.core.incremental import IncrementalAnalyzer

__all__ = [
    "Candidate",
    "CandidateKind",
    "Finding",
    "Project",
    "ProjectIndex",
    "detect_function",
    "detect_module",
    "CrossScopeResolver",
    "DokModel",
    "DokWeights",
    "EaModel",
    "rank_findings",
    "Report",
    "ValueCheck",
    "ValueCheckConfig",
    "IncrementalAnalyzer",
]
