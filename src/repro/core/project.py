"""Project model: parsed modules + version history + cross-file index.

The paper analyses each bitcode file separately (§7, §8.1.2) but the
authorship lookup and peer-definition pruning need *project-wide* facts:
where every function is defined, where its ``return`` statements are, who
calls it from where, and how peers treat the same return value/parameter.
:class:`ProjectIndex` aggregates those facts across modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.liveness import live_variables
from repro.errors import ReproError
from repro.ir.builder import lower_source
from repro.ir.instructions import Call, CastOp
from repro.ir.module import Function, Module
from repro.pointer.value_flow import ValueFlowGraph, build_value_flow
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class FunctionLocation:
    """Where a function lives, for authorship lookup."""

    name: str
    file: str
    line: int
    end_line: int
    return_lines: tuple[int, ...]
    param_lines: tuple[int, ...]  # decl line per parameter index
    signature: tuple[str, ...]  # (return type, param type names...)


@dataclass(frozen=True)
class CallSite:
    callee: str
    file: str
    line: int
    caller: str
    result_used: bool


@dataclass
class ProjectIndex:
    """Cross-file facts: definitions, call sites, peer usage."""

    functions: dict[str, FunctionLocation] = field(default_factory=dict)
    call_sites: dict[str, list[CallSite]] = field(default_factory=dict)
    # (signature, param index) -> usage flags of that parameter across all
    # functions sharing the signature (peer-definition pruning, shape 2).
    param_usage: dict[tuple[tuple[str, ...], int], list[bool]] = field(default_factory=dict)

    def location(self, name: str) -> FunctionLocation | None:
        return self.functions.get(name)

    def sites_of(self, callee: str) -> list[CallSite]:
        return self.call_sites.get(callee, [])

    def return_usage(self, callee: str) -> list[bool]:
        """result_used flags across all call sites of ``callee`` (peer
        definitions of a return value, §5.4)."""
        return [site.result_used for site in self.sites_of(callee)]

    def peer_params(self, signature: tuple[str, ...], index: int) -> list[bool]:
        return self.param_usage.get((signature, index), [])


@dataclass
class _ModuleContribution:
    """One module's slice of the project index."""

    functions: dict[str, FunctionLocation] = field(default_factory=dict)
    call_sites: list[CallSite] = field(default_factory=list)
    param_usage: list[tuple[tuple[str, ...], int, bool]] = field(default_factory=list)


def _call_result_used(function: Function, call: Call, use_map) -> bool:
    if call.dest is None:
        return True  # void calls have no discardable result
    uses = [u for u in use_map.get(call.dest, []) if not (isinstance(u, CastOp) and u.to_void)]
    return bool(uses)


class Project:
    """A set of parsed modules, optionally backed by a MiniGit repository.

    ``build_config`` is the set of preprocessor macros the "build" enables
    — it determines which ``#if`` arms reach the IR, exactly like the
    compilation configuration in the paper's §5.1.
    """

    def __init__(
        self,
        name: str,
        modules: dict[str, Module],
        repo: Repository | None = None,
        build_config: set[str] | None = None,
    ):
        self.name = name
        self.modules = modules
        self.repo = repo
        self.build_config = set(build_config or ())
        self._vfgs: dict[str, ValueFlowGraph] = {}
        self._contribs: dict[str, "_ModuleContribution"] = {}
        self._index: ProjectIndex | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: dict[str, str],
        name: str = "project",
        repo: Repository | None = None,
        build_config: set[str] | None = None,
    ) -> "Project":
        modules = {
            path: lower_source(text, filename=path, config=build_config)
            for path, text in sorted(sources.items())
        }
        return cls(name=name, modules=modules, repo=repo, build_config=build_config)

    @classmethod
    def from_repository(
        cls,
        repo: Repository,
        rev: int | str | None = None,
        name: str | None = None,
        build_config: set[str] | None = None,
        suffixes: tuple[str, ...] = (".c",),
    ) -> "Project":
        snapshot = repo.snapshot_at(rev)
        sources = {
            path: text for path, text in snapshot.items() if path.endswith(suffixes)
        }
        return cls.from_sources(
            sources, name=name or repo.name, repo=repo, build_config=build_config
        )

    # -- derived state ------------------------------------------------------

    def vfg(self, path: str) -> ValueFlowGraph:
        """Value-flow graph for one module (built lazily, cached)."""
        if path not in self._vfgs:
            if path not in self.modules:
                raise ReproError(f"unknown module {path}")
            self._vfgs[path] = build_value_flow(self.modules[path])
        return self._vfgs[path]

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = self._build_index()
        return self._index

    def invalidate(self, paths: set[str] | None = None) -> None:
        """Drop cached per-module analyses (after incremental updates)."""
        if paths is None:
            self._vfgs.clear()
            self._contribs.clear()
        else:
            for path in paths:
                self._vfgs.pop(path, None)
                self._contribs.pop(path, None)
        self._index = None

    def _contribution(self, path: str) -> "_ModuleContribution":
        """Per-module index contribution, cached so incremental analysis
        only recomputes touched files."""
        if path not in self._contribs:
            module = self.modules[path]
            vfg = self.vfg(path)
            contribution = _ModuleContribution()
            for function in module.functions.values():
                ast_fn = module.unit.function(function.name) if module.unit else None
                signature: tuple[str, ...] = (function.return_type,)
                if ast_fn is not None:
                    signature = (str(ast_fn.return_type), *(str(p.type) for p in ast_fn.params))
                contribution.functions[function.name] = FunctionLocation(
                    name=function.name,
                    file=path,
                    line=function.line,
                    end_line=function.end_line,
                    return_lines=tuple(function.return_lines),
                    param_lines=tuple(p.decl_line for p in function.params),
                    signature=signature,
                )
                use_map = function.temp_use_map()
                for instruction in function.instructions():
                    if not isinstance(instruction, Call):
                        continue
                    used = _call_result_used(function, instruction, use_map)
                    for callee in vfg.resolve_call(instruction):
                        contribution.call_sites.append(
                            CallSite(
                                callee=callee,
                                file=path,
                                line=instruction.line,
                                caller=function.name,
                                result_used=used,
                            )
                        )
                live_entry = live_variables(function).live_at_entry()
                for param in function.params:
                    contribution.param_usage.append(
                        (signature, param.param_index, param.name in live_entry)
                    )
            self._contribs[path] = contribution
        return self._contribs[path]

    def _build_index(self) -> ProjectIndex:
        index = ProjectIndex()
        for path in sorted(self.modules):
            contribution = self._contribution(path)
            index.functions.update(contribution.functions)
            for site in contribution.call_sites:
                index.call_sites.setdefault(site.callee, []).append(site)
            for signature, param_index, used in contribution.param_usage:
                index.param_usage.setdefault((signature, param_index), []).append(used)
        for sites in index.call_sites.values():
            sites.sort(key=lambda site: (site.file, site.line))
        return index

    # -- conveniences -------------------------------------------------------

    def functions(self):
        for path in sorted(self.modules):
            module = self.modules[path]
            for name in sorted(module.functions):
                yield path, module, module.functions[name]

    def loc(self) -> int:
        return sum(module.loc() for module in self.modules.values())
