"""Project model: parsed modules + version history + cross-file index.

The paper analyses each bitcode file separately (§7, §8.1.2) but the
authorship lookup and peer-definition pruning need *project-wide* facts:
where every function is defined, where its ``return`` statements are, who
calls it from where, and how peers treat the same return value/parameter.
:class:`ProjectIndex` aggregates those facts across modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.dataflow.liveness import live_variables
from repro.errors import ReproError
from repro.ir.builder import lower_source
from repro.ir.instructions import Call, CastOp
from repro.ir.module import Function, Module
from repro.pointer.value_flow import ValueFlowGraph, build_value_flow
from repro.vcs.repository import Repository

# Most callers alternate between at most a couple of revisions (HEAD and a
# replay cursor); a tiny FIFO keeps memory bounded during long replays.
_REV_CACHE_LIMIT = 4


@dataclass(frozen=True)
class FunctionLocation:
    """Where a function lives, for authorship lookup."""

    name: str
    file: str
    line: int
    end_line: int
    return_lines: tuple[int, ...]
    param_lines: tuple[int, ...]  # decl line per parameter index
    signature: tuple[str, ...]  # (return type, param type names...)


@dataclass(frozen=True)
class CallSite:
    callee: str
    file: str
    line: int
    caller: str
    result_used: bool


@dataclass
class ProjectIndex:
    """Cross-file facts: definitions, call sites, peer usage.

    Once built the per-callee collections are frozen tuples: the accessors
    below are hot paths (every candidate probes them during authorship and
    pruning) and handing out the internal lists would let a caller corrupt
    the index shared across analyses.
    """

    functions: dict[str, FunctionLocation] = field(default_factory=dict)
    call_sites: dict[str, tuple[CallSite, ...]] = field(default_factory=dict)
    # (signature, param index) -> usage flags of that parameter across all
    # functions sharing the signature (peer-definition pruning, shape 2).
    param_usage: dict[tuple[tuple[str, ...], int], tuple[bool, ...]] = field(default_factory=dict)

    def location(self, name: str) -> FunctionLocation | None:
        return self.functions.get(name)

    def sites_of(self, callee: str) -> tuple[CallSite, ...]:
        return self.call_sites.get(callee, ())

    def return_usage(self, callee: str) -> list[bool]:
        """result_used flags across all call sites of ``callee`` (peer
        definitions of a return value, §5.4)."""
        return [site.result_used for site in self.sites_of(callee)]

    def peer_params(self, signature: tuple[str, ...], index: int) -> tuple[bool, ...]:
        return self.param_usage.get((signature, index), ())


@dataclass
class ModuleContribution:
    """One module's slice of the project index.

    Built per module (and in parallel by the analysis engine — instances
    must stay picklable), then merged deterministically by
    :meth:`Project._build_index`.
    """

    functions: dict[str, FunctionLocation] = field(default_factory=dict)
    call_sites: list[CallSite] = field(default_factory=list)
    param_usage: list[tuple[tuple[str, ...], int, bool]] = field(default_factory=list)


# Backwards-compatible alias (pre-engine name).
_ModuleContribution = ModuleContribution


def _call_result_used(function: Function, call: Call, use_map) -> bool:
    if call.dest is None:
        return True  # void calls have no discardable result
    uses = [u for u in use_map.get(call.dest, []) if not (isinstance(u, CastOp) and u.to_void)]
    return bool(uses)


def build_contribution(path: str, module: Module, vfg: ValueFlowGraph) -> ModuleContribution:
    """Compute one module's index contribution (pure function of the
    module + its value-flow graph, so engine workers can run it off the
    main process)."""
    contribution = ModuleContribution()
    for function in module.functions.values():
        ast_fn = module.unit.function(function.name) if module.unit else None
        signature: tuple[str, ...] = (function.return_type,)
        if ast_fn is not None:
            signature = (str(ast_fn.return_type), *(str(p.type) for p in ast_fn.params))
        contribution.functions[function.name] = FunctionLocation(
            name=function.name,
            file=path,
            line=function.line,
            end_line=function.end_line,
            return_lines=tuple(function.return_lines),
            param_lines=tuple(p.decl_line for p in function.params),
            signature=signature,
        )
        use_map = function.temp_use_map()
        for instruction in function.instructions():
            if not isinstance(instruction, Call):
                continue
            used = _call_result_used(function, instruction, use_map)
            for callee in vfg.resolve_call(instruction):
                contribution.call_sites.append(
                    CallSite(
                        callee=callee,
                        file=path,
                        line=instruction.line,
                        caller=function.name,
                        result_used=used,
                    )
                )
        live_entry = live_variables(function).live_at_entry()
        for param in function.params:
            contribution.param_usage.append(
                (signature, param.param_index, param.name in live_entry)
            )
    return contribution


class Project:
    """A set of parsed modules, optionally backed by a MiniGit repository.

    ``build_config`` is the set of preprocessor macros the "build" enables
    — it determines which ``#if`` arms reach the IR, exactly like the
    compilation configuration in the paper's §5.1.
    """

    def __init__(
        self,
        name: str,
        modules: dict[str, Module],
        repo: Repository | None = None,
        build_config: set[str] | None = None,
    ):
        self.name = name
        self.modules = modules
        self.repo = repo
        self.build_config = set(build_config or ())
        self._vfgs: dict[str, ValueFlowGraph] = {}
        self._contribs: dict[str, ModuleContribution] = {}
        self._index: ProjectIndex | None = None
        # Revision-keyed caches for analysis helpers (BlameIndex and the
        # cross-scope resolver) — rebuilt only when the keyed rev changes
        # or the project is invalidated, not on every analyze() call.
        self._blame_cache: dict[object, object] = {}
        self._resolver_cache: dict[object, object] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: dict[str, str],
        name: str = "project",
        repo: Repository | None = None,
        build_config: set[str] | None = None,
    ) -> "Project":
        modules = {
            path: lower_source(text, filename=path, config=build_config)
            for path, text in sorted(sources.items())
        }
        return cls(name=name, modules=modules, repo=repo, build_config=build_config)

    @classmethod
    def from_repository(
        cls,
        repo: Repository,
        rev: int | str | None = None,
        name: str | None = None,
        build_config: set[str] | None = None,
        suffixes: tuple[str, ...] = (".c",),
    ) -> "Project":
        snapshot = repo.snapshot_at(rev)
        sources = {
            path: text for path, text in snapshot.items() if path.endswith(suffixes)
        }
        return cls.from_sources(
            sources, name=name or repo.name, repo=repo, build_config=build_config
        )

    # -- derived state ------------------------------------------------------

    def vfg(self, path: str) -> ValueFlowGraph:
        """Value-flow graph for one module (built lazily, cached)."""
        if path not in self._vfgs:
            if path not in self.modules:
                raise ReproError(f"unknown module {path}")
            self._vfgs[path] = build_value_flow(self.modules[path])
        return self._vfgs[path]

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = self._build_index()
        return self._index

    def invalidate(self, paths: set[str] | None = None) -> None:
        """Drop cached per-module analyses (after incremental updates)."""
        if paths is None:
            self._vfgs.clear()
            self._contribs.clear()
        else:
            for path in paths:
                self._vfgs.pop(path, None)
                self._contribs.pop(path, None)
        self._index = None
        # Resolvers capture the index, so they are stale now; blame data
        # depends only on (repo, rev) and stays valid.
        self._resolver_cache.clear()

    def blame_index(self, rev: int | str | None = None):
        """Blame data at ``rev``, cached per revision."""
        if self.repo is None:
            raise ReproError(f"project {self.name} has no repository to blame")
        if rev not in self._blame_cache:
            from repro.vcs.blame import BlameIndex

            if len(self._blame_cache) >= _REV_CACHE_LIMIT:
                self._blame_cache.pop(next(iter(self._blame_cache)))
            with obs.span("blame_index", project=self.name):
                self._blame_cache[rev] = BlameIndex(self.repo, rev=rev)
        return self._blame_cache[rev]

    def resolver(self, rev: int | str | None = None):
        """Cross-scope resolver at ``rev``, cached per revision (cleared on
        :meth:`invalidate` because resolvers capture the index)."""
        if rev not in self._resolver_cache:
            from repro.core.cross_scope import CrossScopeResolver

            if len(self._resolver_cache) >= _REV_CACHE_LIMIT:
                self._resolver_cache.pop(next(iter(self._resolver_cache)))
            self._resolver_cache[rev] = CrossScopeResolver(self, rev=rev)
        return self._resolver_cache[rev]

    def _contribution(self, path: str) -> ModuleContribution:
        """Per-module index contribution, cached so incremental analysis
        only recomputes touched files."""
        if path not in self._contribs:
            self._contribs[path] = build_contribution(
                path, self.modules[path], self.vfg(path)
            )
        return self._contribs[path]

    def analyzed_paths(self) -> frozenset[str]:
        """Paths whose per-module results are currently warm (used by the
        engine tests to assert eviction granularity)."""
        return frozenset(self._contribs)

    def _build_index(self) -> ProjectIndex:
        with obs.span("project_index", project=self.name):
            return self._build_index_inner()

    def _build_index_inner(self) -> ProjectIndex:
        index = ProjectIndex()
        call_sites: dict[str, list[CallSite]] = {}
        param_usage: dict[tuple[tuple[str, ...], int], list[bool]] = {}
        for path in sorted(self.modules):
            contribution = self._contribution(path)
            index.functions.update(contribution.functions)
            for site in contribution.call_sites:
                call_sites.setdefault(site.callee, []).append(site)
            for signature, param_index, used in contribution.param_usage:
                param_usage.setdefault((signature, param_index), []).append(used)
        for callee, sites in call_sites.items():
            sites.sort(key=lambda site: (site.file, site.line))
            index.call_sites[callee] = tuple(sites)
        for key, flags in param_usage.items():
            index.param_usage[key] = tuple(flags)
        return index

    # -- conveniences -------------------------------------------------------

    def functions(self):
        for path in sorted(self.modules):
            module = self.modules[path]
            for name in sorted(module.functions):
                yield path, module, module.functions[name]

    def loc(self) -> int:
        return sum(module.loc() for module in self.modules.values())
