"""Analysis reports: the ranked unused-definition list plus accounting.

Mirrors the artifact's ``result/APP_NAME/detected.csv`` output and the
counters the evaluation tables aggregate (original candidates, per-pruner
prune counts, reported findings)."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.findings import Finding
from repro.obs import METRICS_SCHEMA_VERSION, summarize_snapshot
from repro.obs.provenance import render_records
from repro.obs.sinks import STAGE_ORDER

if TYPE_CHECKING:
    from repro.engine.scheduler import EngineStats
    from repro.obs import ProvenanceLog, Tracer


@dataclass
class Report:
    """Everything one ValueCheck run produced."""

    project: str
    findings: list[Finding] = field(default_factory=list)
    prune_stats: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    # How the engine produced the per-module results: executor, worker
    # count, and cache hit/miss counters (None for hand-built reports).
    # Legacy view — the full accounting lives in ``metrics``.
    engine_stats: "EngineStats | None" = None
    # Per-run metrics snapshot (repro.obs schema) and the span tracer the
    # run recorded into (None for hand-built reports).
    metrics: dict | None = None
    trace: "Tracer | None" = None
    # False when the Andersen solver failed to reach a fixpoint on at
    # least one module: points-to facts (and thus findings) may then be
    # under-approximated.
    converged: bool = True
    # Per-candidate decision audit: detection site, cross-scope evidence,
    # one verdict per consulted pruner, DOK breakdown and rank (None for
    # hand-built or merged reports — ``explain`` then has nothing to say).
    provenance: "ProvenanceLog | None" = None

    # -- views ----------------------------------------------------------

    def reported(self) -> list[Finding]:
        """Cross-scope, unpruned findings in rank order."""
        out = [finding for finding in self.findings if finding.is_reported]
        out.sort(key=lambda finding: (finding.rank if finding.rank is not None else 1 << 30))
        return out

    def top(self, count: int) -> list[Finding]:
        return self.reported()[:count]

    def pruned(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.pruned_by is not None]

    def cross_scope(self) -> list[Finding]:
        """All cross-scope candidates, pruned or not — Table 4 '#Original'."""
        return [
            finding
            for finding in self.findings
            if finding.authorship is not None and finding.authorship.cross_scope
        ]

    def non_cross_scope(self) -> list[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.authorship is None or not finding.authorship.cross_scope
        ]

    # -- provenance / explain --------------------------------------------

    def explain(self, fragment: str | None = None) -> str:
        """Readable decision trees: every candidate's provenance, or only
        the records whose key contains ``fragment`` (a finding id, file
        name, or ``file:line`` prefix)."""
        if self.provenance is None:
            return "no provenance recorded for this report\n"
        records = (
            self.provenance.records()
            if fragment is None
            else self.provenance.find(fragment)
        )
        if not records:
            if fragment is not None:
                return f"no provenance record matches {fragment!r}\n"
            return "no candidates detected\n"
        return render_records(records) + "\n"

    def explain_jsonl(self) -> str:
        """Machine-readable provenance: one JSON record per line, sorted
        by candidate key — byte-identical across executors."""
        if self.provenance is None:
            return ""
        return self.provenance.to_jsonl()

    # -- accounting ----------------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            "candidates": len(self.findings),
            "cross_scope": len(self.cross_scope()),
            "pruned": len(self.pruned()),
            "reported": len(self.reported()),
        }

    def stage_seconds(self) -> dict[str, float]:
        """Wall-time per pipeline stage, from the run's span trace."""
        if self.trace is None:
            return {}
        totals = self.trace.stage_totals()
        return {stage: totals[stage] for stage in STAGE_ORDER if stage in totals}

    def stats_record(self) -> dict:
        """One self-contained JSONL record for ``--stats-out`` files
        (consumed by ``valuecheck stats`` and trajectory comparisons)."""
        record = {
            "schema": METRICS_SCHEMA_VERSION,
            "project": self.project,
            "seconds": self.seconds,
            "converged": self.converged,
            "counts": self.counts(),
            "prune_stats": dict(self.prune_stats),
            "stages": self.stage_seconds(),
        }
        if self.engine_stats is not None:
            record["executor"] = self.engine_stats.executor
            record["engine"] = self.engine_stats.as_dict()
        if self.metrics is not None:
            record["metrics"] = summarize_snapshot(self.metrics)
        if self.provenance is not None:
            record["provenance"] = self.provenance.aggregates()
        return record

    # -- rendering -------------------------------------------------------------

    _COLUMNS = (
        "rank",
        "file",
        "line",
        "function",
        "variable",
        "kind",
        "callee",
        "cross_scope",
        "introducing_author",
        "pruned_by",
        "familiarity",
    )

    def to_csv(self, path: str | Path | None = None, include_pruned: bool = False) -> str:
        rows = self.reported() if not include_pruned else self.findings
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self._COLUMNS)
        writer.writeheader()
        for finding in rows:
            writer.writerow(finding.to_row())
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_sarif(self, path: str | Path | None = None, include_pruned: bool = False) -> dict:
        """SARIF 2.1.0 log of the reported findings (see repro.core.sarif);
        written to ``path`` when given, for CI viewers and code scanning."""
        from repro.core.sarif import report_to_sarif, write_sarif

        log = report_to_sarif(self, include_pruned=include_pruned)
        if path is not None:
            write_sarif(log, path)
        return log

    def to_markdown(self, top: int = 25) -> str:
        """Render a human-readable Markdown report (for PRs/dashboards)."""
        counts = self.counts()
        lines = [
            f"# ValueCheck report — {self.project}",
            "",
            f"**{counts['reported']}** cross-scope unused definitions reported "
            f"({counts['candidates']} candidates, {counts['pruned']} pruned).",
            "",
        ]
        if self.prune_stats:
            lines.append("| pruning strategy | pruned |")
            lines.append("|---|---|")
            for name, count in sorted(self.prune_stats.items()):
                lines.append(f"| {name} | {count} |")
            lines.append("")
        reported = self.reported()
        if reported:
            lines.append("| # | location | kind | variable | introduced by | familiarity |")
            lines.append("|---|---|---|---|---|---|")
            for finding in reported[:top]:
                candidate = finding.candidate
                author = (
                    finding.authorship.introducing_author if finding.authorship else ""
                )
                familiarity = (
                    f"{finding.familiarity:.2f}" if finding.familiarity is not None else "—"
                )
                lines.append(
                    f"| {finding.rank} | `{candidate.file}:{candidate.line}` "
                    f"| {candidate.kind.value} | `{candidate.function}/{candidate.var}` "
                    f"| {author} | {familiarity} |"
                )
            if len(reported) > top:
                lines.append("")
                lines.append(f"*…and {len(reported) - top} more.*")
        else:
            lines.append("*No findings — nothing crossed developer scopes unpruned.*")
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"project:       {self.project}",
            f"candidates:    {counts['candidates']}",
            f"cross-scope:   {counts['cross_scope']}",
            f"pruned:        {counts['pruned']}",
            f"reported:      {counts['reported']}",
        ]
        for name, count in sorted(self.prune_stats.items()):
            lines.append(f"  pruned by {name}: {count}")
        if self.seconds:
            lines.append(f"analysis time: {self.seconds:.2f}s")
        if self.engine_stats is not None:
            stats = self.engine_stats
            lines.append(
                f"engine:        {stats.executor} x{stats.workers} "
                f"({stats.cache_hits} cached, {stats.analyzed} analyzed)"
            )
            if stats.non_converged:
                lines.append(
                    f"  WARNING: solver did not converge on {len(stats.non_converged)} module(s)"
                )
        stages = self.stage_seconds()
        if stages:
            lines.append("stage wall-time:")
            for stage, seconds in stages.items():
                lines.append(f"  {stage:<12}{seconds:9.3f}s")
        return "\n".join(lines)
