"""Incremental per-commit analysis (paper §8.6).

"This overhead could be reduced by running the analysis incrementally,
i.e., only on the changed functions and the affected files in a commit."

The analyzer keeps a warm :class:`~repro.core.project.Project`; replaying
a commit re-parses only the touched files, determines which functions the
diff actually reached, and runs detection + authorship + pruning on those
functions alone (pruning and authorship still see the full project index,
which stays cached for untouched modules)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.findings import AuthorshipInfo, Candidate, Finding
from repro.core.project import Project
from repro.core.pruning import PruneContext, default_pipeline
from repro.core.valuecheck import ValueCheckConfig
from repro.engine import DEFAULT_CACHE, AnalysisEngine
from repro.engine.scheduler import EngineStats
from repro.errors import AnalysisError
from repro.obs.clock import monotonic
from repro.ir.builder import lower_source
from repro.vcs.diff import myers_diff
from repro.vcs.objects import Commit
from repro.vcs.repository import Repository


@dataclass
class IncrementalResult:
    commit_id: str
    changed_files: list[str] = field(default_factory=list)
    changed_functions: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    # Monotonic-clock duration of this incremental step (see
    # repro.obs.clock — never wall-clock, daemons run across NTP slews).
    seconds: float = 0.0
    # Every (file, function) the step actually re-analysed: the changed
    # functions plus widened callers (and, under ``full_modules``, the
    # untouched siblings in changed files).
    analyzed_functions: list[tuple[str, str]] = field(default_factory=list)
    deleted_files: list[str] = field(default_factory=list)
    # What the engine pass did — warm-state consumers (the analysis
    # service, benchmarks) assert cache hits/misses from this.
    engine_stats: EngineStats | None = None

    def reported(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.is_reported]

    def touched_scope(self) -> tuple[set[str], set[tuple[str, str]]]:
        """What this step invalidated: (deleted files, re-analysed
        (file, function) pairs).  The findings store folds an incremental
        step in by updating exactly this scope — stored fingerprints
        outside it are carried forward untouched."""
        return set(self.deleted_files), set(self.analyzed_functions)


def changed_line_ranges(old_text: str, new_text: str) -> list[tuple[int, int]]:
    """1-based inclusive line ranges of ``new_text`` touched by the edit."""
    old_lines = old_text.split("\n")
    new_lines = new_text.split("\n")
    ranges: list[tuple[int, int]] = []
    for op in myers_diff(old_lines, new_lines):
        if op.tag == "equal":
            continue
        if op.tag == "delete":
            # Deletion touches the seam: attribute to the following line.
            anchor = min(op.j1 + 1, len(new_lines)) or 1
            ranges.append((anchor, anchor))
        else:
            ranges.append((op.j1 + 1, op.j2))
    return ranges


class IncrementalAnalyzer:
    """Replay commits one by one, analysing only what changed."""

    def __init__(
        self,
        repo: Repository,
        start_rev: int | str,
        build_config: set[str] | None = None,
        config: ValueCheckConfig | None = None,
        suffixes: tuple[str, ...] = (".c",),
        widen_callers: bool = True,
    ):
        rev = repo.rev_index(start_rev)
        project = Project.from_repository(repo, rev=rev, build_config=build_config)
        self._bind(project, rev, config, suffixes, widen_callers)

    @classmethod
    def from_project(
        cls,
        project: Project,
        config: ValueCheckConfig | None = None,
        suffixes: tuple[str, ...] = (".c",),
        widen_callers: bool = True,
        rev: int | str | None = None,
    ) -> "IncrementalAnalyzer":
        """Warm incremental state over an already-built project.

        ``rev`` is the revision the project was materialised at (HEAD
        when omitted).  The analysis service opens projects from loose
        source trees as well as repositories; without a repository only
        :meth:`analyze_changes` is usable (no commit replay, no
        authorship)."""
        analyzer = cls.__new__(cls)
        start = project.repo.rev_index(rev) if project.repo is not None else -1
        analyzer._bind(project, start, config, suffixes, widen_callers)
        return analyzer

    def _bind(
        self,
        project: Project,
        rev: int,
        config: ValueCheckConfig | None,
        suffixes: tuple[str, ...],
        widen_callers: bool,
    ) -> None:
        self.repo = project.repo
        self.config = config or ValueCheckConfig()
        self.suffixes = suffixes
        # Call-site candidates (ignored returns) and parameter candidates
        # span the call boundary: changing a callee can create findings in
        # its callers, so those are re-analysed too when enabled.
        self.widen_callers = widen_callers
        self.current_rev = rev
        self.project = project
        # Per-module work (detection + index contributions) goes through
        # the engine so replaying a commit that reverts a file — or
        # re-replaying a commit — hits the content-addressed cache.
        self.engine = AnalysisEngine(
            executor=self.config.executor,
            workers=self.config.workers,
            cache=DEFAULT_CACHE if self.config.module_cache else None,
            rules=self.config.rules,
        )
        # Warm the caches so replay timing measures incremental work only.
        self.engine.run(self.project)
        _ = self.project.index

    def replay_next(self) -> IncrementalResult:
        """Advance one commit and analyse its changes."""
        if self.repo is None:
            raise AnalysisError("project has no repository to replay")
        next_rev = self.current_rev + 1
        if next_rev >= len(self.repo.commits):
            raise AnalysisError("no more commits to replay")
        commit = self.repo.commits[next_rev]
        result = self.analyze_commit(commit)
        self.current_rev = next_rev
        return result

    def analyze_commit(self, commit: Commit) -> IncrementalResult:
        """Analyse the changes one commit introduces (paper §8.6)."""
        changes = {
            path: commit.snapshot.get(path)
            for path in commit.touched
            if path.endswith(self.suffixes)
        }
        return self.analyze_changes(
            changes, label=commit.commit_id, rev=commit.commit_id
        )

    def analyze_changes(
        self,
        changes: Mapping[str, str | None],
        label: str = "edit",
        rev: int | str | None = None,
        full_modules: bool = False,
    ) -> IncrementalResult:
        """Analyse an explicit change set (path → new text, None = delete).

        This is the transport-agnostic core ``analyze_commit`` routes
        through; the analysis service feeds it uncommitted edits.  With
        ``full_modules`` the analysis set widens from the diff-touched
        functions to *every* function of each changed module — the engine
        re-analyses whole modules anyway, so this costs only resolution
        and pruning, and it lets a warm session splice the result over
        its previous full report without stale per-file findings.
        """
        started = monotonic()
        result = IncrementalResult(commit_id=label, changed_files=sorted(changes))

        changed_functions: list[tuple[str, str]] = []  # (path, function name)
        analysis_set: list[tuple[str, str]] = []
        for path in sorted(changes):
            old_text = ""
            if path in self.project.modules and self.project.modules[path].source is not None:
                old_text = self.project.modules[path].source.raw
            new_text = changes[path]
            if new_text is None:
                if path in self.project.modules:
                    del self.project.modules[path]
                self.project.invalidate({path})
                result.deleted_files.append(path)
                continue
            module = lower_source(new_text, filename=path, config=self.project.build_config)
            self.project.modules[path] = module
            self.project.invalidate({path})
            ranges = changed_line_ranges(old_text, new_text)
            for function in module.functions.values():
                touched_by_diff = any(
                    start <= function.end_line and end >= function.line
                    for start, end in ranges
                )
                if touched_by_diff:
                    changed_functions.append((path, function.name))
                if touched_by_diff or full_modules:
                    analysis_set.append((path, function.name))
        result.changed_functions = [name for _, name in changed_functions]

        if not analysis_set:
            result.seconds = monotonic() - started
            return result

        if self.widen_callers and changed_functions:
            from repro.core.callgraph import build_call_graph

            graph = build_call_graph(self.project)
            changed_names = {name for _, name in changed_functions}
            widened: set[str] = set()
            for name in changed_names:
                widened |= graph.callers_of(name)
            widened -= {name for _, name in analysis_set}
            locations = self.project.index.functions
            for name in sorted(widened):
                location = locations.get(name)
                if location is not None and location.file in self.project.modules:
                    analysis_set.append((location.file, name))
        result.analyzed_functions = list(analysis_set)

        # One engine pass over every module the analysis set touches:
        # changed modules are re-analysed (a content-cache miss unless the
        # commit reverted them), widened callers' modules are warm hits.
        needed_paths: list[str] = []
        for path, _ in analysis_set:
            if path not in needed_paths:
                needed_paths.append(path)
        engine_run = self.engine.run(self.project, paths=needed_paths)
        result.engine_stats = engine_run.stats

        candidates: list[Candidate] = []
        for path, name in analysis_set:
            module = self.project.modules[path]
            if module.functions.get(name) is None:
                continue
            candidates.extend(
                candidate
                for candidate in engine_run.by_path[path].candidates
                if candidate.function == name
            )

        # Semantic-rule candidates (evidence-carrying kinds) resolve the
        # same way cold runs do; only the classic unused-definition kinds
        # go through the cross-scope scenario dispatch.  Imported lazily:
        # repro.rules pulls in repro.core, whose package import reaches
        # back into this module.
        from repro.core.valuecheck import resolve_semantic
        from repro.rules.registry import resolve_rules, semantic_kinds

        packs = resolve_rules(self.config.rules)
        evidence_kinds = semantic_kinds(packs)
        classic = [c for c in candidates if c.kind not in evidence_kinds]
        semantic = [c for c in candidates if c.kind in evidence_kinds]

        if self.config.use_authorship and self.repo is not None:
            findings = self.project.resolver(rev).resolve_all(classic)
        else:
            # Mirror ValueCheck's ablation semantics: without authorship
            # every candidate is treated as reportable (synthetic
            # cross-scope), so warm sessions over plain source trees
            # report the same findings a cold run would.
            blame = self.project.blame_index(rev) if self.repo is not None else None
            findings = []
            for candidate in classic:
                author_name = ""
                introduced_day = -1
                if blame is not None:
                    info = blame.line_info(candidate.file, candidate.line)
                    if info is not None:
                        author_name = info.author.name
                        introduced_day = info.day
                findings.append(
                    Finding(
                        candidate=candidate,
                        authorship=AuthorshipInfo(
                            cross_scope=True,
                            def_author=author_name,
                            introducing_author=author_name,
                            blamed_file=candidate.file,
                            introduced_day=introduced_day,
                            reason="authorship filtering disabled",
                        ),
                    )
                )

        findings += resolve_semantic(self.project, semantic, rev)

        pipeline = default_pipeline(
            enable=set(self.config.pruners) if self.config.pruners is not None else None,
            min_increments=self.config.cursor_min_increments,
            peer_min_occurrences=self.config.peer_min_occurrences,
            peer_unused_fraction=self.config.peer_unused_fraction,
            include_history=self.config.history_pruning,
        )
        result.findings = pipeline.apply(
            findings,
            PruneContext(project=self.project),
            rules=tuple(pack.name for pack in packs),
        )
        result.seconds = monotonic() - started
        return result
