"""Incremental per-commit analysis (paper §8.6).

"This overhead could be reduced by running the analysis incrementally,
i.e., only on the changed functions and the affected files in a commit."

The analyzer keeps a warm :class:`~repro.core.project.Project`; replaying
a commit re-parses only the touched files, determines which functions the
diff actually reached, and runs detection + authorship + pruning on those
functions alone (pruning and authorship still see the full project index,
which stays cached for untouched modules)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.findings import Candidate, Finding
from repro.core.project import Project
from repro.core.pruning import PruneContext, default_pipeline
from repro.core.valuecheck import ValueCheckConfig
from repro.engine import DEFAULT_CACHE, AnalysisEngine
from repro.errors import AnalysisError
from repro.ir.builder import lower_source
from repro.vcs.diff import myers_diff
from repro.vcs.objects import Commit
from repro.vcs.repository import Repository


@dataclass
class IncrementalResult:
    commit_id: str
    changed_files: list[str] = field(default_factory=list)
    changed_functions: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    seconds: float = 0.0

    def reported(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.is_reported]


def changed_line_ranges(old_text: str, new_text: str) -> list[tuple[int, int]]:
    """1-based inclusive line ranges of ``new_text`` touched by the edit."""
    old_lines = old_text.split("\n")
    new_lines = new_text.split("\n")
    ranges: list[tuple[int, int]] = []
    for op in myers_diff(old_lines, new_lines):
        if op.tag == "equal":
            continue
        if op.tag == "delete":
            # Deletion touches the seam: attribute to the following line.
            anchor = min(op.j1 + 1, len(new_lines)) or 1
            ranges.append((anchor, anchor))
        else:
            ranges.append((op.j1 + 1, op.j2))
    return ranges


class IncrementalAnalyzer:
    """Replay commits one by one, analysing only what changed."""

    def __init__(
        self,
        repo: Repository,
        start_rev: int | str,
        build_config: set[str] | None = None,
        config: ValueCheckConfig | None = None,
        suffixes: tuple[str, ...] = (".c",),
        widen_callers: bool = True,
    ):
        self.repo = repo
        self.config = config or ValueCheckConfig()
        self.suffixes = suffixes
        # Call-site candidates (ignored returns) and parameter candidates
        # span the call boundary: changing a callee can create findings in
        # its callers, so those are re-analysed too when enabled.
        self.widen_callers = widen_callers
        self.current_rev = repo.rev_index(start_rev)
        self.project = Project.from_repository(
            repo, rev=self.current_rev, build_config=build_config
        )
        # Per-module work (detection + index contributions) goes through
        # the engine so replaying a commit that reverts a file — or
        # re-replaying a commit — hits the content-addressed cache.
        self.engine = AnalysisEngine(
            executor=self.config.executor,
            workers=self.config.workers,
            cache=DEFAULT_CACHE if self.config.module_cache else None,
        )
        # Warm the caches so replay timing measures incremental work only.
        self.engine.run(self.project)
        _ = self.project.index

    def replay_next(self) -> IncrementalResult:
        """Advance one commit and analyse its changes."""
        next_rev = self.current_rev + 1
        if next_rev >= len(self.repo.commits):
            raise AnalysisError("no more commits to replay")
        commit = self.repo.commits[next_rev]
        result = self.analyze_commit(commit)
        self.current_rev = next_rev
        return result

    def analyze_commit(self, commit: Commit) -> IncrementalResult:
        started = time.perf_counter()
        touched = [path for path in commit.touched if path.endswith(self.suffixes)]
        result = IncrementalResult(commit_id=commit.commit_id, changed_files=touched)

        changed_functions: list[tuple[str, str]] = []  # (path, function name)
        for path in touched:
            old_text = ""
            if path in self.project.modules and self.project.modules[path].source is not None:
                old_text = self.project.modules[path].source.raw
            new_text = commit.snapshot.get(path)
            if new_text is None:
                del self.project.modules[path]
                self.project.invalidate({path})
                continue
            module = lower_source(new_text, filename=path, config=self.project.build_config)
            self.project.modules[path] = module
            self.project.invalidate({path})
            ranges = changed_line_ranges(old_text, new_text)
            for function in module.functions.values():
                if any(
                    start <= function.end_line and end >= function.line
                    for start, end in ranges
                ):
                    changed_functions.append((path, function.name))
        result.changed_functions = [name for _, name in changed_functions]

        if not changed_functions:
            result.seconds = time.perf_counter() - started
            return result

        analysis_set = list(changed_functions)
        if self.widen_callers:
            from repro.core.callgraph import build_call_graph

            graph = build_call_graph(self.project)
            changed_names = {name for _, name in changed_functions}
            widened: set[str] = set()
            for name in changed_names:
                widened |= graph.callers_of(name)
            widened -= changed_names
            locations = self.project.index.functions
            for name in sorted(widened):
                location = locations.get(name)
                if location is not None and location.file in self.project.modules:
                    analysis_set.append((location.file, name))

        # One engine pass over every module the analysis set touches:
        # changed modules are re-analysed (a content-cache miss unless the
        # commit reverted them), widened callers' modules are warm hits.
        needed_paths: list[str] = []
        for path, _ in analysis_set:
            if path not in needed_paths:
                needed_paths.append(path)
        engine_run = self.engine.run(self.project, paths=needed_paths)

        candidates: list[Candidate] = []
        for path, name in analysis_set:
            module = self.project.modules[path]
            if module.functions.get(name) is None:
                continue
            candidates.extend(
                candidate
                for candidate in engine_run.by_path[path].candidates
                if candidate.function == name
            )

        rev = commit.commit_id
        if self.config.use_authorship and self.repo is not None:
            findings = self.project.resolver(rev).resolve_all(candidates)
        else:
            findings = [Finding(candidate=candidate) for candidate in candidates]

        pipeline = default_pipeline(
            enable=set(self.config.pruners) if self.config.pruners is not None else None,
            min_increments=self.config.cursor_min_increments,
            peer_min_occurrences=self.config.peer_min_occurrences,
            peer_unused_fraction=self.config.peer_unused_fraction,
            include_history=self.config.history_pruning,
        )
        result.findings = pipeline.apply(findings, PruneContext(project=self.project))
        result.seconds = time.perf_counter() - started
        return result
