"""Project call graph (direct + pointer-resolved indirect edges).

Built from the project index's call sites.  The incremental analyzer
uses it to *widen* a commit's changed-function set with the direct
callers of changed functions: call-site candidates (ignored returns) and
parameter candidates depend on both sides of the call boundary, so a
change to the callee can create or retire findings in its callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.project import Project, ProjectIndex


@dataclass
class CallGraph:
    """Caller/callee adjacency over function names."""

    callees: dict[str, set[str]] = field(default_factory=dict)  # caller -> callees
    callers: dict[str, set[str]] = field(default_factory=dict)  # callee -> callers

    def callees_of(self, function: str) -> set[str]:
        return set(self.callees.get(function, ()))

    def callers_of(self, function: str) -> set[str]:
        return set(self.callers.get(function, ()))

    def transitive_callers(self, function: str, max_depth: int = 1 << 30) -> set[str]:
        """All functions that can reach ``function`` through calls."""
        seen: set[str] = set()
        frontier = {function}
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: set[str] = set()
            for name in frontier:
                for caller in self.callers.get(name, ()):  # expand upwards
                    if caller not in seen:
                        seen.add(caller)
                        next_frontier.add(caller)
            frontier = next_frontier
            depth += 1
        return seen

    def transitive_callees(self, function: str, max_depth: int = 1 << 30) -> set[str]:
        seen: set[str] = set()
        frontier = {function}
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: set[str] = set()
            for name in frontier:
                for callee in self.callees.get(name, ()):  # expand downwards
                    if callee not in seen:
                        seen.add(callee)
                        next_frontier.add(callee)
            frontier = next_frontier
            depth += 1
        return seen

    def roots(self) -> list[str]:
        """Functions never called within the project (entry points)."""
        called = set(self.callers)
        return sorted(name for name in self.callees if name not in called)


def build_call_graph(project_or_index: Project | ProjectIndex) -> CallGraph:
    """Build the call graph from a project (or a prebuilt index)."""
    index = project_or_index.index if isinstance(project_or_index, Project) else project_or_index
    graph = CallGraph()
    for name in index.functions:
        graph.callees.setdefault(name, set())
    for callee, sites in index.call_sites.items():
        for site in sites:
            graph.callees.setdefault(site.caller, set()).add(callee)
            graph.callers.setdefault(callee, set()).add(site.caller)
    return graph
