"""SARIF 2.1.0 export: findings in the standard CI interchange format.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning, VS Code SARIF viewers and most CI dashboards
ingest.  One :class:`~repro.core.report.Report` (or any finding list)
becomes one SARIF *run*: each candidate kind is a rule, each reported
finding a result whose location points at the defining line.

Only reported findings are exported by default — pruned and
non-cross-scope findings are suppressed exactly as in the CSV report —
but ``include_pruned=True`` emits them too, with
``suppressions[].kind = "inSource"`` and the pruner named in the
justification, so a viewer can audit what the pipeline killed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.findings import CandidateKind, Finding
from repro.obs.provenance import ProvenanceLog, ProvenanceRecord, format_evidence

if TYPE_CHECKING:
    from repro.core.report import Report

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

TOOL_NAME = "valuecheck"
TOOL_URI = "https://github.com/valuecheck/valuecheck-repro"

def _rule(kind: CandidateKind) -> dict:
    # Rule metadata comes from the owning rule pack (repro.rules), not a
    # table here: registering a pack is all a new rule needs to appear in
    # SARIF.  Imported lazily — repro.rules pulls in repro.core, whose
    # package import reaches back into this module.
    from repro.rules.registry import pack_for_kind, rule_description

    pack = pack_for_kind(kind)
    return {
        "id": kind.value,
        "name": kind.value.replace("_", " ").title().replace(" ", ""),
        "shortDescription": {"text": rule_description(kind)},
        "helpUri": TOOL_URI,
        "defaultConfiguration": {"level": "warning"},
        "properties": {"pack": pack.name, "gatePolicy": pack.gate_policy},
    }


def _message(finding: Finding) -> str:
    from repro.rules.registry import rule_description

    candidate = finding.candidate
    parts = [
        f"{rule_description(candidate.kind)}: "
        f"`{candidate.var}` in `{candidate.function}`"
    ]
    authorship = finding.authorship
    if authorship is not None and authorship.cross_scope:
        parts.append(
            f"cross-scope (introduced by {authorship.introducing_author or 'unknown'})"
        )
    if finding.familiarity is not None:
        parts.append(f"familiarity {finding.familiarity:.2f}")
    return "; ".join(parts)


def _result(
    finding: Finding,
    record: ProvenanceRecord | None = None,
    rule_index: dict[str, int] | None = None,
    fingerprint=None,
    baseline_state: str | None = None,
    suppression: dict | None = None,
) -> dict:
    candidate = finding.candidate
    result: dict = {
        "ruleId": candidate.kind.value,
        "level": "warning",
        "message": {"text": _message(finding)},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": candidate.file},
                    "region": {"startLine": max(1, candidate.line)},
                },
                "logicalLocations": [
                    {"name": candidate.function, "kind": "function"}
                ],
            }
        ],
        "partialFingerprints": {
            # The legacy dedup/ground-truth join key — line-sensitive,
            # kept for compatibility with earlier logs.
            "valuecheck/candidateKey": candidate.key,
        },
    }
    if rule_index is not None and candidate.kind.value in rule_index:
        # Per the SARIF spec, results reference their rule by index into
        # tool.driver.rules as well as by id.
        result["ruleIndex"] = rule_index[candidate.kind.value]
    if fingerprint is not None:
        # The stable identities the findings store tracks revisions by
        # (repro.store.fingerprint): primary survives line drift,
        # location survives statement rewrites.
        result["partialFingerprints"]["valuecheck/primary"] = fingerprint.primary
        result["partialFingerprints"]["valuecheck/location"] = fingerprint.location
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    if finding.rank is not None:
        result["rank"] = float(finding.rank)
    properties: dict = {}
    if candidate.callee:
        properties["callee"] = candidate.callee
    if finding.familiarity is not None:
        properties["familiarity"] = round(finding.familiarity, 4)
    if record is not None:
        # The full decision audit rides along as a property bag so SARIF
        # viewers can show *why* a result was reported or suppressed.
        properties["provenance"] = record.as_dict()
    if properties:
        result["properties"] = properties
    suppressions: list[dict] = []
    if finding.pruned_by is not None:
        justification = f"pruned by {finding.pruned_by}"
        if record is not None:
            killing = next((v for v in record.verdicts if v.pruned), None)
            if killing is not None and killing.evidence:
                justification += format_evidence(killing.evidence)
        suppressions.append(
            {
                "kind": "inSource",
                "status": "accepted",
                "justification": justification,
            }
        )
    if suppression is not None:
        # A reviewed-and-accepted baseline entry (repro.store.baseline).
        suppressions.append(suppression)
    if suppressions:
        result["suppressions"] = suppressions
    return result


def findings_to_sarif(
    findings: Iterable[Finding],
    project: str = "project",
    include_pruned: bool = False,
    invocation: dict | None = None,
    provenance: ProvenanceLog | None = None,
    fingerprints: Mapping | None = None,
    baseline_states: Mapping[str, str] | None = None,
    suppressions: Mapping[str, dict] | None = None,
) -> dict:
    """Build one SARIF 2.1.0 log dict from a finding list.

    The optional mappings are keyed by ``finding.key``: ``fingerprints``
    (store identities → ``partialFingerprints``), ``baseline_states``
    (lifecycle → ``baselineState``) and ``suppressions`` (accepted
    baseline entries → ``suppressions[]``), all provided by
    :mod:`repro.store` when exporting a revision diff.
    """
    rows = [
        finding
        for finding in findings
        if finding.is_reported or (include_pruned and finding.pruned_by is not None)
    ]
    rows.sort(
        key=lambda finding: (
            finding.rank if finding.rank is not None else 1 << 30,
            finding.key,
        )
    )
    used_kinds = sorted({finding.candidate.kind for finding in rows}, key=lambda k: k.value)
    # Each rule is emitted exactly once in tool.driver.rules; results
    # reference it by ruleIndex (and ruleId) per the SARIF spec.
    rule_index = {kind.value: index for index, kind in enumerate(used_kinds)}
    run: dict = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "informationUri": TOOL_URI,
                "rules": [_rule(kind) for kind in used_kinds],
            }
        },
        "automationDetails": {"id": f"{TOOL_NAME}/{project}"},
        "results": [
            _result(
                finding,
                provenance.get(finding.key) if provenance is not None else None,
                rule_index=rule_index,
                fingerprint=(
                    fingerprints.get(finding.key) if fingerprints is not None else None
                ),
                baseline_state=(
                    baseline_states.get(finding.key)
                    if baseline_states is not None
                    else None
                ),
                suppression=(
                    suppressions.get(finding.key) if suppressions is not None else None
                ),
            )
            for finding in rows
        ],
        "columnKind": "utf16CodeUnits",
    }
    if invocation:
        run["invocations"] = [dict(invocation, executionSuccessful=True)]
    return {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION, "runs": [run]}


def report_to_sarif(report: "Report", include_pruned: bool = False) -> dict:
    """One report → one SARIF log (see :meth:`Report.to_sarif`)."""
    invocation = {}
    if report.converged is False:
        # SARIF has no "under-approximated" flag; surface it as a tool
        # notification so CI viewers show the caveat next to the results.
        invocation = {
            "toolExecutionNotifications": [
                {
                    "level": "warning",
                    "message": {
                        "text": "Andersen solver did not converge on every "
                        "module; findings may be incomplete",
                    },
                }
            ]
        }
    return findings_to_sarif(
        report.findings,
        project=report.project,
        include_pruned=include_pruned,
        invocation=invocation or None,
        provenance=report.provenance,
    )


def write_sarif(log: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(log, indent=2, sort_keys=True) + "\n")
