"""Cross-scope unused-definition detection — the paper's Fig. 4 algorithm.

The backward fixpoint carries two facts per program point:

* **LiveSet** — may-liveness of tracked variables (as in
  :mod:`repro.dataflow.liveness`);
* **DefSet** — for each variable, the lines of the *next* definitions that
  overwrite it, tracked as a **must** fact: a variable is present only if
  every successor path overwrites it before function exit.  This is what
  lets the detector say "overwritten by other developers on *all*
  successor paths" (§3.1 scenario 3) — authors for those lines are
  resolved later by the authorship lookup.

When the final pass reaches a store whose variable is not live, it emits a
:class:`~repro.core.findings.Candidate` whose kind encodes which scenario
applies:

* value came from a call               → scenario 1 (return authors checked)
* the store is the parameter's entry
  store                                → scenario 2 (call-site authors checked)
* DefSet has overwriters               → scenario 3 (overwriter authors checked)
* none of the above                    → plain dead store (never cross-scope)

Discarded call results (``f();`` or results only consumed by ``(void)``
casts) are emitted as IGNORED_RETURN candidates directly from the call
instruction — the "implicit definition ``tmp = printf()``" of §5.4.

Finally, the alias check (§4.1) drops candidates whose variable is
referenced by pointers: those may be used through indirect reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.traversal import backward_order
from repro.ir.instructions import Call, CastOp, Instruction, Load, Store, StoreKind
from repro.ir.module import Function, Module
from repro.ir.values import Temp
from repro.pointer.value_flow import ValueFlowGraph, build_value_flow
from repro.core.findings import Candidate, CandidateKind

_MAX_ITERATIONS = 100


@dataclass
class _State:
    """LiveSet + DefSet at one program point."""

    live: set[str]
    defs: dict[str, frozenset[int]]  # must-overwrite lines per var

    @classmethod
    def bottom(cls) -> "_State":
        return cls(live=set(), defs={})

    def copy(self) -> "_State":
        return _State(live=set(self.live), defs=dict(self.defs))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _State)
            and self.live == other.live
            and self.defs == other.defs
        )


def _join_states(states: list[_State]) -> _State:
    """May-union for LiveSet; must-intersection (with line union) for DefSet."""
    if not states:
        return _State.bottom()
    live: set[str] = set()
    for state in states:
        live |= state.live
    common_vars = set(states[0].defs)
    for state in states[1:]:
        common_vars &= set(state.defs)
    defs: dict[str, frozenset[int]] = {}
    for var in common_vars:
        lines: frozenset[int] = frozenset()
        for state in states:
            lines |= state.defs[var]
        defs[var] = lines
    return _State(live=live, defs=defs)


def _is_live(var: str, live: set[str]) -> bool:
    if var in live:
        return True
    return "#" in var and var.split("#", 1)[0] in live


def _kill_live(var: str, state: _State, function: Function) -> None:
    state.live.discard(var)
    info = function.variables.get(var)
    if info is not None and info.is_struct:
        prefix = var + "#"
        for name in [v for v in state.live if v.startswith(prefix)]:
            state.live.discard(name)


def _record_def(var: str, line: int, state: _State, function: Function) -> None:
    state.defs[var] = frozenset((line,))
    info = function.variables.get(var)
    if info is not None and info.is_struct:
        prefix = var + "#"
        for name in list(state.defs):
            if name.startswith(prefix):
                state.defs[name] = frozenset((line,))


def _overwriters_of(var: str, state: _State) -> frozenset[int]:
    """Must-overwrite lines for ``var`` (falling back to the base struct
    for field pseudo-variables)."""
    if var in state.defs:
        return state.defs[var]
    if "#" in var:
        return state.defs.get(var.split("#", 1)[0], frozenset())
    return frozenset()


def _transfer(instruction: Instruction, state: _State, function: Function) -> None:
    """Backward transfer (no candidate emission — used during fixpoint)."""
    if isinstance(instruction, Store):
        tracked = instruction.addr.tracked_var() if instruction.addr is not None else None
        if tracked is not None:
            _kill_live(tracked, state, function)
            _record_def(tracked, instruction.line, state, function)
    elif isinstance(instruction, Load):
        addr = instruction.addr
        tracked = addr.tracked_var() if addr is not None else None
        if tracked is not None:
            state.live.add(tracked)
        else:
            base = addr.base_var() if addr is not None else None
            if base is not None:
                state.live.add(base)


class _Detector:
    def __init__(self, function: Function, module: Module, vfg: ValueFlowGraph):
        self.function = function
        self.module = module
        self.vfg = vfg
        self.temp_defs = function.temp_def_map()
        self.temp_uses = function.temp_use_map()

    # -- helpers -----------------------------------------------------------

    def _value_callee(self, value) -> tuple[str | None, tuple[str, ...]]:
        """If ``value`` is (transitively through a cast) a call result,
        return (primary callee, all resolved callees)."""
        seen = 0
        while isinstance(value, Temp) and seen < 8:
            seen += 1
            defining = self.temp_defs.get(value)
            if isinstance(defining, Call):
                resolved = tuple(self.vfg.resolve_call(defining))
                primary = defining.callee or (resolved[0] if resolved else None)
                return primary, resolved
            if isinstance(defining, CastOp):
                value = defining.value
                continue
            return None, ()
        return None, ()

    def _var_info(self, var: str):
        return self.function.var(var)

    def _skip_var(self, var: str) -> bool:
        info = self._var_info(var)
        if info is None:
            return True
        return info.artificial or info.is_array

    # -- candidate construction ------------------------------------------------

    def _candidate_for_store(self, store: Store, state: _State) -> Candidate | None:
        tracked = store.addr.tracked_var() if store.addr is not None else None
        if tracked is None or self._skip_var(tracked):
            return None
        info = self._var_info(tracked)
        assert info is not None
        overwriters = tuple(sorted(_overwriters_of(tracked, state)))
        callee, resolved = self._value_callee(store.value)
        if store.kind is StoreKind.PARAM_INIT:
            kind = CandidateKind.OVERWRITTEN_ARG if overwriters else CandidateKind.UNUSED_PARAM
        elif overwriters:
            kind = CandidateKind.OVERWRITTEN_DEF
        elif callee is not None:
            kind = CandidateKind.IGNORED_RETURN
        else:
            kind = CandidateKind.DEAD_STORE
        return Candidate(
            file=self.function.filename,
            function=self.function.name,
            var=tracked,
            line=store.line,
            kind=kind,
            store_kind=store.kind,
            callee=callee,
            overwrite_lines=overwriters,
            is_field="#" in tracked,
            param_index=info.param_index if store.kind is StoreKind.PARAM_INIT else -1,
            increment_delta=store.increment_delta,
            void_cast=False,
            var_attrs=info.attrs,
            decl_line=info.decl_line,
            resolved_callees=resolved,
        )

    def _candidate_for_call(self, call: Call) -> Candidate | None:
        if call.dest is None:
            return None
        real_uses = [
            use
            for use in self.temp_uses.get(call.dest, [])
            if not (isinstance(use, CastOp) and use.to_void)
        ]
        if real_uses:
            return None
        resolved = tuple(self.vfg.resolve_call(call))
        callee = call.callee or (resolved[0] if resolved else None)
        return Candidate(
            file=self.function.filename,
            function=self.function.name,
            var=callee or "<indirect>",
            line=call.line,
            kind=CandidateKind.IGNORED_RETURN,
            store_kind=None,
            callee=callee,
            void_cast=call.void_cast,
            resolved_callees=resolved,
        )

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Candidate]:
        function = self.function
        order = backward_order(function)
        in_states: dict[int, _State] = {id(b): _State.bottom() for b in function.blocks}
        out_states: dict[int, _State] = {id(b): _State.bottom() for b in function.blocks}
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for block in order:
                out_state = _join_states([in_states[id(s)] for s in block.successors])
                state = out_state.copy()
                for instruction in reversed(block.instructions):
                    _transfer(instruction, state, function)
                if out_state != out_states[id(block)]:
                    out_states[id(block)] = out_state
                    changed = True
                if state != in_states[id(block)]:
                    in_states[id(block)] = state
                    changed = True
            if not changed:
                break

        candidates: list[Candidate] = []
        for block in function.blocks:
            state = _join_states([in_states[id(s)] for s in block.successors]).copy()
            for instruction in reversed(block.instructions):
                if isinstance(instruction, Store):
                    tracked = (
                        instruction.addr.tracked_var() if instruction.addr is not None else None
                    )
                    if tracked is not None and not _is_live(tracked, state.live):
                        candidate = self._candidate_for_store(instruction, state)
                        if candidate is not None:
                            candidates.append(candidate)
                elif isinstance(instruction, Call):
                    candidate = self._candidate_for_call(instruction)
                    if candidate is not None:
                        candidates.append(candidate)
                _transfer(instruction, state, function)

        # Alias check (§4.1): a variable referenced by pointers may be used
        # through indirect reads — drop its candidates.  The VFG memoizes
        # the verdict per (function, var) across repeated candidates.
        aliased = self.vfg.may_be_used_indirectly
        filtered = [
            candidate
            for candidate in candidates
            if candidate.kind is CandidateKind.IGNORED_RETURN and candidate.store_kind is None
            or not aliased(function, candidate.var)
        ]
        filtered.sort(key=lambda candidate: (candidate.line, candidate.var, candidate.kind.value))
        return filtered


def detect_function(function: Function, module: Module, vfg: ValueFlowGraph) -> list[Candidate]:
    """Detect unused-definition candidates in one function."""
    return _Detector(function, module, vfg).run()


def detect_module(module: Module, vfg: ValueFlowGraph | None = None) -> list[Candidate]:
    """Detect candidates in every function of a module."""
    if vfg is None:
        vfg = build_value_flow(module)
    candidates: list[Candidate] = []
    for name in sorted(module.functions):
        candidates.extend(detect_function(module.functions[name], module, vfg))
    return candidates
