"""Candidate and finding records flowing through the ValueCheck pipeline.

A :class:`Candidate` is a raw unused definition straight out of the
detector.  Authorship resolution decorates it into cross-scope (or not),
pruning may claim it, and ranking finally turns the survivors into
:class:`Finding` rows with familiarity scores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.ir.instructions import StoreKind


class CandidateKind(enum.Enum):
    """Which detector shape a candidate is.

    The first five are the paper's unused-definition scenarios; the
    semantic kinds below them come from additional rule packs
    (:mod:`repro.rules`) that reuse the same pipeline spine.
    """

    IGNORED_RETURN = "ignored_return"  # f(); — result discarded at a call
    UNUSED_PARAM = "unused_param"  # parameter value never read
    OVERWRITTEN_ARG = "overwritten_arg"  # parameter overwritten before read
    OVERWRITTEN_DEF = "overwritten_def"  # local def overwritten on all paths
    DEAD_STORE = "dead_store"  # def dead at exit, no overwriter
    USE_AFTER_FREE = "use_after_free"  # pointer used after a free-like call
    RESOURCE_LEAK = "resource_leak"  # acquire with a release-free exit path

    @property
    def is_param_shape(self) -> bool:
        return self in (CandidateKind.UNUSED_PARAM, CandidateKind.OVERWRITTEN_ARG)

    @property
    def is_semantic(self) -> bool:
        """Kinds whose evidence is a site pair, not an unused definition."""
        return self in (CandidateKind.USE_AFTER_FREE, CandidateKind.RESOURCE_LEAK)


@dataclass(frozen=True)
class Candidate:
    """One raw unused definition."""

    file: str
    function: str
    var: str  # variable name; for IGNORED_RETURN the callee name
    line: int  # def line (call line for IGNORED_RETURN, decl line for params)
    kind: CandidateKind
    store_kind: StoreKind | None = None
    # Callee whose return value produced the stored value (scenario 1),
    # for IGNORED_RETURN this is the called function itself.
    callee: str | None = None
    # Lines of the stores that overwrite this definition on all successor
    # paths (scenario 3 / overwritten argument).
    overwrite_lines: tuple[int, ...] = ()
    is_field: bool = False
    param_index: int = -1
    increment_delta: int | None = None
    void_cast: bool = False
    var_attrs: tuple[str, ...] = ()
    decl_line: int = 0
    # For indirect calls: every pointee the pointer analysis resolved.
    resolved_callees: tuple[str, ...] = ()
    # Rule-specific evidence sites: for USE_AFTER_FREE the free-site
    # line(s); for RESOURCE_LEAK the release-site line(s) that exist on
    # *other* paths.  Empty for the unused-definition kinds.
    evidence_lines: tuple[int, ...] = ()

    @property
    def key(self) -> str:
        """Stable identifier used for dedup and ground-truth joins."""
        return f"{self.file}:{self.function}:{self.var}:{self.line}:{self.kind.value}"

    def __str__(self) -> str:
        return f"{self.file}:{self.line} [{self.kind.value}] {self.function}/{self.var}"


@dataclass(frozen=True)
class AuthorshipInfo:
    """Resolved authorship for a candidate (see CrossScopeResolver)."""

    cross_scope: bool
    def_author: str = ""
    counterpart_authors: tuple[str, ...] = ()
    # The developer who introduced the inconsistency; familiarity is
    # computed for this author against ``blamed_file``.
    introducing_author: str = ""
    blamed_file: str = ""
    introduced_day: int = -1
    reason: str = ""
    # How many counterpart sites (call sites, return statements,
    # overwriting stores) the resolver actually blamed and compared —
    # the evidence base of the cross-scope verdict.
    peer_sites: int = 0

    def provenance(self) -> dict:
        """The resolution-evidence slice of a provenance record."""
        return {
            "cross_scope": self.cross_scope,
            "reason": self.reason,
            "def_author": self.def_author,
            "counterpart_authors": list(self.counterpart_authors),
            "peer_sites": self.peer_sites,
            "introducing_author": self.introducing_author,
            "blamed_file": self.blamed_file,
            "introduced_day": self.introduced_day,
        }


@dataclass(frozen=True)
class Finding:
    """A candidate that survived (or is annotated by) the full pipeline."""

    candidate: Candidate
    authorship: AuthorshipInfo | None = None
    pruned_by: str | None = None
    familiarity: float | None = None
    rank: int | None = None

    @property
    def key(self) -> str:
        return self.candidate.key

    @property
    def is_reported(self) -> bool:
        """Survived cross-scope filtering and pruning."""
        cross = self.authorship.cross_scope if self.authorship is not None else False
        return cross and self.pruned_by is None

    def with_rank(self, rank: int) -> "Finding":
        return replace(self, rank=rank)

    def to_row(self) -> dict:
        """Flat dict for CSV reports."""
        c = self.candidate
        a = self.authorship
        return {
            "rank": self.rank if self.rank is not None else "",
            "file": c.file,
            "line": c.line,
            "function": c.function,
            "variable": c.var,
            "kind": c.kind.value,
            "callee": c.callee or "",
            "cross_scope": a.cross_scope if a is not None else "",
            "introducing_author": a.introducing_author if a is not None else "",
            "pruned_by": self.pruned_by or "",
            "familiarity": f"{self.familiarity:.3f}" if self.familiarity is not None else "",
        }
