"""Authorship lookup: decide which candidates are *cross-scope* (§4.2).

The three scenarios, quoting the paper:

1. **Unused return value** — author D of the call site vs the authors
   B₁,B₂,… of every ``return`` statement in the callee.  Cross-scope iff
   all Bᵢ differ from D.  A callee not defined in the project (a library
   call) counts as a different author.
2. **Unused/overwritten function argument** — author C of each call site
   vs the author B of the parameter's definition line, or, when the
   parameter is overwritten inside the callee by developer D, C vs D.
   Cross-scope iff some call site's author differs.
3. **Overwritten definition** — author A of the definition vs the authors
   of the stores that overwrite it on all successor paths.  Cross-scope
   iff the overwriter set is non-empty and every overwriter differs
   from A.

The resolver also picks the *introducing author* — the developer whose
edit created the inconsistency — and the file to measure their
familiarity against; the DOK ranking consumes both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.findings import AuthorshipInfo, Candidate, CandidateKind, Finding
from repro.core.project import Project, ProjectIndex
from repro.vcs.blame import BlameIndex
from repro.vcs.objects import Author

_EXTERNAL = "<external>"


@dataclass
class _LineAuthor:
    name: str
    day: int


class CrossScopeResolver:
    """Resolves candidates against blame data for one project revision."""

    def __init__(self, project: Project, rev: int | str | None = None):
        if project.repo is None:
            raise ValueError("cross-scope resolution needs a project with a repository")
        self.project = project
        self.index: ProjectIndex = project.index
        # Revision-keyed cache on the project: repeated analyses at the
        # same rev reuse one BlameIndex instead of re-blaming every file.
        self.blame: BlameIndex = project.blame_index(rev)
        # callee -> blamed return authors; a hot callee (e.g. a logging
        # helper called everywhere) is probed once per candidate without
        # this, and each probe re-blames every return line.
        self._return_author_cache: dict[str, list[_LineAuthor] | None] = {}

    # -- blame helpers --------------------------------------------------

    def _line_author(self, file: str, line: int) -> _LineAuthor | None:
        info = self.blame.line_info(file, line)
        if info is None:
            return None
        return _LineAuthor(name=info.author.name, day=info.day)

    def _return_authors(self, callee: str | None) -> list[_LineAuthor] | None:
        """Authors of every return statement of ``callee``; None when the
        callee is external to the project (treated as cross-scope)."""
        if callee is None:
            return None
        if callee in self._return_author_cache:
            return self._return_author_cache[callee]
        authors = self._return_authors_uncached(callee)
        self._return_author_cache[callee] = authors
        return authors

    def _return_authors_uncached(self, callee: str) -> list[_LineAuthor] | None:
        location = self.index.location(callee)
        if location is None:
            return None
        authors = []
        for line in location.return_lines:
            author = self._line_author(location.file, line)
            if author is not None:
                authors.append(author)
        if not authors:
            # Defined but with no return lines blamed (e.g. void callee
            # reached through a stale pointer set) — use the definition line.
            author = self._line_author(location.file, location.line)
            return [author] if author is not None else None
        return authors

    # -- per-scenario checks ------------------------------------------------

    def _check_ignored_return(self, candidate: Candidate) -> AuthorshipInfo:
        site_author = self._line_author(candidate.file, candidate.line)
        if site_author is None:
            return AuthorshipInfo(cross_scope=False, reason="call site not blamed")
        callees = candidate.resolved_callees or (
            (candidate.callee,) if candidate.callee else ()
        )
        counterparts: list[str] = []
        cross = True
        any_internal = False
        for callee in callees or (candidate.callee,):
            return_authors = self._return_authors(callee)
            if return_authors is None:
                counterparts.append(_EXTERNAL)
                continue  # library call: different author by definition
            any_internal = True
            counterparts.extend(author.name for author in return_authors)
            if any(author.name == site_author.name for author in return_authors):
                cross = False
        if not callees and candidate.callee is None:
            # Unresolvable indirect call: conservative, not cross-scope.
            return AuthorshipInfo(cross_scope=False, reason="unresolved indirect call")
        return AuthorshipInfo(
            cross_scope=cross,
            def_author=site_author.name,
            counterpart_authors=tuple(counterparts),
            introducing_author=site_author.name,
            blamed_file=candidate.file,
            introduced_day=site_author.day,
            reason="ignored return value" + ("" if any_internal else " (external callee)"),
            peer_sites=len(counterparts),
        )

    def _check_param(self, candidate: Candidate) -> AuthorshipInfo:
        location = self.index.location(candidate.function)
        if location is None:
            return AuthorshipInfo(cross_scope=False, reason="function not indexed")
        sites = self.index.sites_of(candidate.function)
        if not sites:
            return AuthorshipInfo(cross_scope=False, reason="no call sites in project")
        # The in-function side: the overwriting author if the param is
        # overwritten, otherwise the author of the parameter definition.
        if candidate.overwrite_lines:
            inside_lines = candidate.overwrite_lines
        else:
            inside_lines = (candidate.line,)
        inside_authors = [
            author
            for line in inside_lines
            if (author := self._line_author(candidate.file, line)) is not None
        ]
        if not inside_authors:
            return AuthorshipInfo(cross_scope=False, reason="parameter not blamed")
        site_authors = [
            author
            for site in sites
            if (author := self._line_author(site.file, site.line)) is not None
        ]
        inside_names = {author.name for author in inside_authors}
        mismatched = [a for a in site_authors if a.name not in inside_names]
        cross = bool(mismatched)
        introducing = max(inside_authors, key=lambda author: author.day)
        return AuthorshipInfo(
            cross_scope=cross,
            def_author=introducing.name,
            counterpart_authors=tuple(author.name for author in site_authors),
            introducing_author=introducing.name,
            blamed_file=candidate.file,
            introduced_day=introducing.day,
            reason=(
                "argument overwritten inside callee"
                if candidate.kind is CandidateKind.OVERWRITTEN_ARG
                else "parameter value unused"
            ),
            peer_sites=len(site_authors),
        )

    def _check_overwritten(self, candidate: Candidate) -> AuthorshipInfo:
        def_author = self._line_author(candidate.file, candidate.line)
        if def_author is None:
            return AuthorshipInfo(cross_scope=False, reason="definition not blamed")
        overwriters = [
            author
            for line in candidate.overwrite_lines
            if (author := self._line_author(candidate.file, line)) is not None
        ]
        cross = bool(overwriters) and all(
            author.name != def_author.name for author in overwriters
        )
        result: AuthorshipInfo | None = None
        if cross:
            introducing = max(overwriters, key=lambda author: author.day)
            result = AuthorshipInfo(
                cross_scope=True,
                def_author=def_author.name,
                counterpart_authors=tuple(author.name for author in overwriters),
                introducing_author=introducing.name,
                blamed_file=candidate.file,
                introduced_day=introducing.day,
                reason="definition overwritten by other authors",
                peer_sites=len(overwriters),
            )
        # Scenario 1 piggy-back (Fig. 4 lines 6-8): a stored value that came
        # from a call is also checked against the callee's return authors.
        if result is None and candidate.callee is not None:
            return_check = self._check_value_from_call(candidate, def_author)
            if return_check is not None:
                return return_check
        if result is not None:
            return result
        return AuthorshipInfo(
            cross_scope=False,
            def_author=def_author.name,
            counterpart_authors=tuple(author.name for author in overwriters),
            reason="overwriters share the definition's author"
            if overwriters
            else "no overwriter on all paths",
            peer_sites=len(overwriters),
        )

    def _check_value_from_call(
        self, candidate: Candidate, def_author: _LineAuthor
    ) -> AuthorshipInfo | None:
        return_authors = self._return_authors(candidate.callee)
        if return_authors is None:
            counterparts: tuple[str, ...] = (_EXTERNAL,)
            cross = True
        else:
            counterparts = tuple(author.name for author in return_authors)
            cross = all(author.name != def_author.name for author in return_authors)
        if not cross:
            return None
        return AuthorshipInfo(
            cross_scope=True,
            def_author=def_author.name,
            counterpart_authors=counterparts,
            introducing_author=def_author.name,
            blamed_file=candidate.file,
            introduced_day=def_author.day,
            reason="unused return value (assigned form)",
            peer_sites=len(counterparts),
        )

    # -- public API ------------------------------------------------------------

    def resolve(self, candidate: Candidate) -> AuthorshipInfo:
        if candidate.kind is CandidateKind.IGNORED_RETURN and candidate.store_kind is None:
            return self._check_ignored_return(candidate)
        if candidate.kind.is_param_shape:
            return self._check_param(candidate)
        if candidate.kind is CandidateKind.IGNORED_RETURN:
            # Assigned-but-unused return value with no overwriter.
            def_author = self._line_author(candidate.file, candidate.line)
            if def_author is None:
                return AuthorshipInfo(cross_scope=False, reason="definition not blamed")
            checked = self._check_value_from_call(candidate, def_author)
            if checked is not None:
                return checked
            return AuthorshipInfo(
                cross_scope=False,
                def_author=def_author.name,
                reason="return authors include the definition's author",
            )
        if candidate.kind is CandidateKind.OVERWRITTEN_DEF:
            return self._check_overwritten(candidate)
        return self._check_dead_store(candidate)

    def _check_dead_store(self, candidate: Candidate) -> AuthorshipInfo:
        """Dead stores with no overwriter and no call provenance.

        The paper's Fig. 4 only ever compares against overwriters or
        return/call-site authors, yet its Table 4 pruning statistics count
        cursors — trailing dead increments with neither — among the
        *cross-scope* candidates.  We interpret the boundary for these as
        the function itself: the definition was added into a function
        another developer owns (author of the definition line differs from
        the author of the function's signature line).  DESIGN.md records
        this interpretation.
        """
        def_author = self._line_author(candidate.file, candidate.line)
        if def_author is None:
            return AuthorshipInfo(cross_scope=False, reason="definition not blamed")
        location = self.index.location(candidate.function)
        owner = (
            self._line_author(location.file, location.line) if location is not None else None
        )
        if owner is None:
            return AuthorshipInfo(cross_scope=False, reason="function owner not blamed")
        cross = owner.name != def_author.name
        return AuthorshipInfo(
            cross_scope=cross,
            def_author=def_author.name,
            counterpart_authors=(owner.name,),
            peer_sites=1,
            introducing_author=def_author.name if cross else "",
            blamed_file=candidate.file if cross else "",
            introduced_day=def_author.day if cross else -1,
            reason="dead store in another author's function"
            if cross
            else "dead store by the function's own author",
        )

    def resolve_all(self, candidates: list[Candidate]) -> list[Finding]:
        return [Finding(candidate=c, authorship=self.resolve(c)) for c in candidates]
