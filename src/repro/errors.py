"""Exception hierarchy for the ValueCheck reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Frontend errors
carry source locations; analysis errors carry the function or file being
analysed when that context is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceError(ReproError):
    """An error tied to a location in a source file."""

    def __init__(self, message: str, filename: str = "<unknown>", line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column
        super().__init__(f"{filename}:{line}:{column}: {message}")


class LexError(SourceError):
    """The lexer encountered a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser encountered an unexpected token."""


class PreprocessorError(SourceError):
    """Malformed or unbalanced preprocessor directives."""


class LoweringError(SourceError):
    """AST-to-IR lowering hit a construct it cannot translate."""


class AnalysisError(ReproError):
    """A static analysis failed on well-formed input."""


class AnalysisUnsupported(AnalysisError):
    """A tool (typically a baseline) cannot analyse the given project.

    The paper's baselines fail on some applications (e.g. Smatch reports
    compilation errors on everything except Linux, fb-infer errors on
    Linux); baselines raise this to reproduce the ``-*`` table cells.
    """


class VcsError(ReproError):
    """Errors from the MiniGit version-control substrate."""


class CorpusError(ReproError):
    """Errors from the synthetic corpus generator."""


class EvaluationError(ReproError):
    """Errors from the evaluation harness."""
