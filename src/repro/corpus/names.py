"""Identifier pools for generated code.

Names are drawn per application *domain* so the corpora read like their
real counterparts (filesystem verbs in NFS-ganesha, TLS nouns in OpenSSL,
…).  All choices flow through the caller's seeded RNG, so generation is
deterministic.
"""

from __future__ import annotations

import random

VERBS = [
    "read", "write", "open", "close", "flush", "sync", "alloc", "free",
    "init", "reset", "update", "commit", "apply", "check", "verify",
    "parse", "encode", "decode", "lookup", "insert", "remove", "scan",
    "map", "unmap", "lock", "unlock", "attach", "detach", "resolve",
    "register", "probe", "submit", "poll", "drain", "merge", "split",
]

NOUNS_BY_DOMAIN = {
    "filesystem": [
        "inode", "dentry", "superblock", "extent", "bitmap", "journal",
        "mount", "acl", "xattr", "quota", "dirent", "blockmap", "fsal",
        "layout", "lease", "handle", "export", "attrmask",
    ],
    "security": [
        "cred", "keyring", "policy", "label", "capset", "token", "sctx",
        "permset", "audit", "sid", "acl_entry", "mask",
    ],
    "network": [
        "sock", "skb", "route", "neigh", "frag", "qdisc", "session",
        "endpoint", "channel", "stream", "datagram", "backlog",
    ],
    "memory": [
        "page", "slab", "zone", "vma", "pool", "arena", "chunk", "span",
        "region", "mapping",
    ],
    "drivers": [
        "device", "queue", "ring", "dma", "irq", "regmap", "phy", "port",
        "bridge", "adapter", "firmware",
    ],
    "storage": [
        "buf_pool", "redo_log", "undo_seg", "tablespace", "btree", "trx",
        "rollback", "checkpoint", "page_arch", "doublewrite",
    ],
    "crypto": [
        "cipher", "digest", "hmac", "master_secret", "session_ticket",
        "keyshare", "cert_chain", "nonce", "pkey", "x509",
    ],
    "other": [
        "config", "option", "stat", "counter", "timer", "worker", "task",
        "context", "request", "reply", "entry", "record",
    ],
}

VAR_NAMES = [
    "ret", "rc", "err", "status", "attr", "flags", "count", "len",
    "offset", "mode", "level", "idx", "nbytes", "result", "state",
    "code", "val", "pos", "total", "avail",
]

TYPE_SUFFIXES = ["t", "info", "state", "ctx", "desc", "cfg", "args", "opts"]

LOG_VERBS = ["log", "trace", "note", "report", "emit", "record"]


class NamePool:
    """Deterministic unique-name factory for one generated application."""

    def __init__(self, rng: random.Random, domains: list[str]):
        self.rng = rng
        self.domains = domains
        self._counter = 0

    def _next(self) -> int:
        self._counter += 1
        return self._counter

    def domain(self) -> str:
        return self.rng.choice(self.domains)

    def function(self, domain: str | None = None, verb: str | None = None) -> str:
        domain = domain or self.domain()
        noun = self.rng.choice(NOUNS_BY_DOMAIN[domain])
        verb = verb or self.rng.choice(VERBS)
        return f"{verb}_{noun}_{self._next()}"

    def log_function(self) -> str:
        verb = self.rng.choice(LOG_VERBS)
        return f"{verb}_msg_{self._next()}"

    def variable(self) -> str:
        return f"{self.rng.choice(VAR_NAMES)}{self._next()}"

    def type_name(self, domain: str | None = None) -> str:
        domain = domain or self.domain()
        noun = self.rng.choice(NOUNS_BY_DOMAIN[domain])
        suffix = self.rng.choice(TYPE_SUFFIXES)
        return f"{noun}_{suffix}_{self._next()}"

    def struct_name(self, domain: str | None = None) -> str:
        domain = domain or self.domain()
        noun = self.rng.choice(NOUNS_BY_DOMAIN[domain])
        return f"{noun}_req_{self._next()}"

    def file_name(self, domain: str) -> str:
        noun = self.rng.choice(NOUNS_BY_DOMAIN[domain])
        return f"{domain}/{noun}_{self._next()}.c"

    def macro(self) -> str:
        noun = self.rng.choice(NOUNS_BY_DOMAIN[self.domain()]).upper()
        return f"CONFIG_{noun}_{self._next()}"
