"""Synthetic corpus generator.

The paper evaluates on Linux-5.19, MySQL-8.0.21, OpenSSL-3.0.0 and
NFS-ganesha-4.46 — multi-million-line trees with decade-deep git
histories.  Those cannot ship here, so this package synthesises, for each
application, a MiniC project plus a MiniGit history whose *measurable
composition* matches the paper's published statistics: the number of
cross-scope unused-definition candidates per pruning pattern (Table 4),
the real-bug and minor-false-positive counts (Tables 2/5), the bug-type
mix (Table 3), the component/severity/age distributions (Figure 7), and
the familiarity structure that makes DOK ranking work (Table 6, Figure 9).

Everything is planted as *code constructs* with authored commit
histories; the analyses then rediscover them — nothing in the evaluation
reads the ground-truth ledger except to score results.
"""

from repro.corpus.ground_truth import GroundTruthEntry, GroundTruthLedger
from repro.corpus.profiles import AppProfile, CategoryCounts, PROFILES, scaled
from repro.corpus.generator import SyntheticApp, generate_app, generate_all
from repro.corpus.preliminary import PreliminaryStudyCorpus, generate_preliminary_corpus

__all__ = [
    "GroundTruthEntry",
    "GroundTruthLedger",
    "AppProfile",
    "CategoryCounts",
    "PROFILES",
    "scaled",
    "SyntheticApp",
    "generate_app",
    "generate_all",
    "PreliminaryStudyCorpus",
    "generate_preliminary_corpus",
]
