"""Custom application profiles — build corpora beyond the four paper apps.

Downstream users benchmarking their own tooling can synthesise corpora
with arbitrary composition::

    from repro.corpus.custom import make_profile
    from repro.corpus.generator import _AppGenerator  # or generate_custom

    profile = make_profile(
        "webserver", bugs=30, fp_minor=10, hints=200, peer_sites=400,
        domains=("network", "security"),
    )
    app = generate_custom(profile, scale=1.0, seed=42)

The generated app carries the same ground-truth ledger as the built-in
profiles, so `valuecheck score` and the eval metrics work unchanged.
"""

from __future__ import annotations

from repro.corpus.generator import SyntheticApp, _AppGenerator
from repro.corpus.profiles import AppProfile, CategoryCounts
from repro.errors import CorpusError

_VALID_DOMAINS = (
    "filesystem",
    "security",
    "network",
    "memory",
    "drivers",
    "storage",
    "crypto",
    "other",
)


def make_profile(
    name: str,
    *,
    bugs: int = 20,
    fp_minor: int = 6,
    config_dep: int = 4,
    cursor: int = 10,
    hints: int = 60,
    peer_sites: int = 80,
    same_author: int = 100,
    pruned_bug_config: int = 0,
    pruned_bug_peer: int = 0,
    filler: int = 40,
    domains: tuple[str, ...] = ("other",),
    n_owner_authors: int = 10,
    n_drifter_authors: int = 8,
    detection_date: str = "2022-07-31",
    is_kernel: bool = False,
    same_author_newcomer_fraction: float = 0.25,
    display: str | None = None,
    version: str = "1.0",
) -> AppProfile:
    """Build a custom :class:`AppProfile` with validation."""
    if not name:
        raise CorpusError("profile name must be non-empty")
    unknown = [domain for domain in domains if domain not in _VALID_DOMAINS]
    if unknown:
        raise CorpusError(f"unknown domains {unknown}; valid: {_VALID_DOMAINS}")
    for label, value in (
        ("bugs", bugs),
        ("fp_minor", fp_minor),
        ("config_dep", config_dep),
        ("cursor", cursor),
        ("hints", hints),
        ("peer_sites", peer_sites),
        ("same_author", same_author),
        ("filler", filler),
    ):
        if value < 0:
            raise CorpusError(f"{label} must be non-negative, got {value}")
    if not 0.0 <= same_author_newcomer_fraction <= 1.0:
        raise CorpusError("same_author_newcomer_fraction must be within [0, 1]")
    return AppProfile(
        name=name,
        display=display or name,
        version=version,
        domains=tuple(domains),
        counts=CategoryCounts(
            config_dep=config_dep,
            cursor=cursor,
            hints=hints,
            peer_sites=peer_sites,
            bugs=bugs,
            fp_minor=fp_minor,
            same_author=same_author,
            pruned_bug_config=pruned_bug_config,
            pruned_bug_peer=pruned_bug_peer,
            filler=filler,
        ),
        n_owner_authors=n_owner_authors,
        n_drifter_authors=n_drifter_authors,
        detection_date=detection_date,
        is_kernel=is_kernel,
        same_author_newcomer_fraction=same_author_newcomer_fraction,
    )


def generate_custom(profile: AppProfile, scale: float = 1.0, seed: int = 7) -> SyntheticApp:
    """Generate a corpus from a custom profile."""
    return _AppGenerator(profile, scale, seed).generate()
