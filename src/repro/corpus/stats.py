"""Corpus statistics: summarise a generated (or loaded) project + history.

Used by the CLI's ``corpus-stats`` subcommand and by EXPERIMENTS.md-style
reporting: how big is the tree, how is authorship distributed, and what
does the construct composition look like."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.project import Project
from repro.corpus.ground_truth import GroundTruthLedger
from repro.vcs.objects import day_to_iso
from repro.vcs.repository import Repository


@dataclass
class CorpusStats:
    name: str
    files: int = 0
    loc: int = 0
    functions: int = 0
    commits: int = 0
    authors: int = 0
    first_commit: str = ""
    last_commit: str = ""
    commits_per_author: dict[str, int] = field(default_factory=dict)
    constructs: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"corpus: {self.name}",
            f"  files:     {self.files}",
            f"  LoC:       {self.loc}",
            f"  functions: {self.functions}",
            f"  commits:   {self.commits} ({self.first_commit} → {self.last_commit})",
            f"  authors:   {self.authors}",
        ]
        top = sorted(self.commits_per_author.items(), key=lambda kv: -kv[1])[:5]
        if top:
            lines.append("  top committers:")
            for author, count in top:
                lines.append(f"    {author:<24}{count:>5}")
        if self.constructs:
            lines.append("  planted constructs:")
            for category, count in sorted(self.constructs.items()):
                lines.append(f"    {category:<24}{count:>5}")
        return "\n".join(lines)


def collect_stats(
    repo: Repository,
    project: Project | None = None,
    ledger: GroundTruthLedger | None = None,
    name: str | None = None,
) -> CorpusStats:
    """Gather statistics for a repository (+ optional parsed project and
    ground-truth ledger)."""
    stats = CorpusStats(name=name or repo.name)
    stats.commits = len(repo.commits)
    if repo.commits:
        stats.first_commit = day_to_iso(repo.commits[0].day)
        stats.last_commit = day_to_iso(repo.head.day)
    for commit in repo.commits:
        stats.commits_per_author[commit.author.name] = (
            stats.commits_per_author.get(commit.author.name, 0) + 1
        )
    stats.authors = len(stats.commits_per_author)
    if project is None:
        project = Project.from_repository(repo)
    stats.files = len(project.modules)
    stats.loc = project.loc()
    stats.functions = sum(len(m.functions) for m in project.modules.values())
    if ledger is not None:
        stats.constructs = ledger.counts()
    return stats
