"""Assembling constructs into files and files into a MiniGit history.

The generation model:

* a **construct** is one planted pattern (a bug, a cursor, a benign peer
  call, …) rendered as tagged source lines.  Lines are tagged with a
  *round*: round 0 belongs to the file's creation commit (the owner),
  rounds 1/2 are later insertions by other developers (round 1 is an
  optional "warm-up" delivery that gives veterans history in the file,
  round 2 is the construct edit itself, dated by the construct's age);
* a **file plan** hosts several constructs plus a merged prelude
  (prototypes/typedefs, always round 0);
* the **repository assembler** walks every file's commits in global day
  order and replays them into a :class:`~repro.vcs.repository.Repository`,
  producing blame-accurate multi-author histories.

Insertion-only edits keep blame attribution exact (every generated line
is unique, so the Myers diff aligns unambiguously).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.ground_truth import GroundTruthEntry
from repro.errors import CorpusError
from repro.vcs.objects import Author
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class TaggedLine:
    """One source line with its round tag (0 = creation)."""

    text: str
    round: int = 0


@dataclass
class SupportFunction:
    """A function this construct needs in *another* file (a callee or a
    caller), authored by a support-team developer."""

    lines: list[str]
    prelude: list[str] = field(default_factory=list)
    author_role: str = "support"  # 'support' | 'logging'


@dataclass
class Construct:
    """One planted pattern, ready for placement into a host file."""

    category: str
    function: str  # host function name (unique per construct)
    var: str  # ground-truth variable / callee key
    lines: list[TaggedLine] = field(default_factory=list)
    prelude: list[str] = field(default_factory=list)
    support: list[SupportFunction] = field(default_factory=list)
    intro_role: str = "owner"  # author of rounds 1/2: 'newcomer'|'veteran'|'owner'
    introduced_age: int = 0  # days before detection for round 2
    truth: GroundTruthEntry | None = None  # file filled at placement time

    def has_round(self, round_number: int) -> bool:
        return any(line.round == round_number for line in self.lines)


@dataclass
class _FileCommit:
    day: int
    author: Author
    message: str
    rounds: list[tuple[int, int]]  # (construct index, round) made visible


@dataclass
class FilePlan:
    """A host file: prelude + constructs, with its commit schedule."""

    path: str
    owner: Author
    creation_day: int
    prelude: list[str] = field(default_factory=list)
    constructs: list[Construct] = field(default_factory=list)
    # Per-construct author of rounds 1/2 (resolved from intro_role).
    intro_authors: dict[int, Author] = field(default_factory=dict)
    intro_days: dict[int, int] = field(default_factory=dict)

    def add_construct(self, construct: Construct, intro_author: Author, intro_day: int) -> None:
        index = len(self.constructs)
        self.constructs.append(construct)
        self.intro_authors[index] = intro_author
        self.intro_days[index] = intro_day
        for line in construct.prelude:
            if line not in self.prelude:
                self.prelude.append(line)

    # -- rendering ---------------------------------------------------------

    def _visible_lines(self, visible: set[tuple[int, int]]) -> str:
        parts: list[str] = list(self.prelude)
        if parts:
            parts.append("")
        for index, construct in enumerate(self.constructs):
            emitted = False
            for line in construct.lines:
                if (index, line.round) in visible:
                    parts.append(line.text)
                    emitted = True
            if emitted:
                parts.append("")
        while parts and parts[-1] == "":
            parts.pop()
        return "\n".join(parts) + "\n"

    def commits(self) -> list[tuple[int, Author, str, set[tuple[int, int]]]]:
        """The file's commit schedule: (day, author, message, cumulative
        visible (construct, round) set), in day order."""
        events: list[tuple[int, Author, str, list[tuple[int, int]]]] = []
        creation_rounds = [(index, 0) for index in range(len(self.constructs))]
        events.append((self.creation_day, self.owner, f"add {self.path}", creation_rounds))
        for index, construct in enumerate(self.constructs):
            author = self.intro_authors[index]
            day = self.intro_days[index]
            if construct.has_round(1):
                events.append(
                    (
                        max(self.creation_day + 1, day - 45),
                        author,
                        f"update {self.path}: housekeeping around {construct.function}",
                        [(index, 1)],
                    )
                )
            if construct.has_round(2):
                events.append(
                    (
                        max(self.creation_day + 2, day),
                        author,
                        f"update {self.path}: rework {construct.function}",
                        [(index, 2)],
                    )
                )
        events.sort(key=lambda event: event[0])
        visible: set[tuple[int, int]] = set()
        out: list[tuple[int, Author, str, set[tuple[int, int]]]] = []
        for day, author, message, rounds in events:
            visible |= set(rounds)
            out.append((day, author, message, set(visible)))
        return out


def assemble_repository(
    name: str,
    plans: list[FilePlan],
    rng: random.Random,
    extra_files: dict[str, tuple[Author, int, str]] | None = None,
) -> Repository:
    """Replay every file plan's commits, globally ordered by day.

    ``extra_files`` maps path → (author, day, content) for one-shot files
    (e.g. the kernel marker header)."""
    events: list[tuple[int, int, str, Author, str, str]] = []  # day, seq, path, author, msg, content
    sequence = 0
    for plan in plans:
        for day, author, message, visible in plan.commits():
            content = plan._visible_lines(visible)
            events.append((day, sequence, plan.path, author, message, content))
            sequence += 1
    for path, (author, day, content) in (extra_files or {}).items():
        events.append((day, sequence, path, author, f"add {path}", content))
        sequence += 1
    events.sort(key=lambda event: (event[0], event[1]))
    if not events:
        raise CorpusError("nothing to assemble")
    repo = Repository(name)
    for day, _, path, author, message, content in events:
        repo.commit(author, message, {path: content}, day=day)
    return repo
