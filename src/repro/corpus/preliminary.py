"""Corpus for the §3.1 preliminary study and the §8.3.2 recall experiment.

The paper's procedure: run plain liveness on the 2019 and 2021 snapshots
of the four projects, collect the 325 unused definitions present in 2019
but gone by 2021, randomly sample 60, check the removing commits'
messages (42 were bug fixes), and observe 39 of those 42 cross author
scopes.  §8.3.2 then runs full ValueCheck on the 39 known cross-scope
bugs and detects 37 (two lost to peer-definition pruning).

This generator plants exactly that structure: constructs that are unused
definitions in the 2019 snapshot and are later *removed* by a commit
whose message is either a bug fix or a cleanup; cross-scope-ness and
peer-style (recall-miss) flavours are planted at the paper's fractions.
Deletion commits exercise the blame carrying logic the main corpus's
insertion-only histories do not.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.corpus.names import NamePool
from repro.vcs.objects import Author, iso_to_day
from repro.vcs.repository import Repository

DAY_2019 = iso_to_day("2019-01-01")
DAY_2021 = iso_to_day("2021-01-01")

# Paper fractions: 42 of 60 sampled were bug-fix removals; 39 of the 42
# crossed author scopes; 2 of the 39 are peer-prunable (the recall misses).
BUGFIX_FRACTION = 42 / 60
CROSS_OF_BUGFIX = 39 / 42
CLEANUP_CROSS_FRACTION = 0.3
TOTAL_AT_SCALE_1 = 325
PEER_MISSES_AT_SCALE_1 = 2


@dataclass(frozen=True)
class PrelimEntry:
    """One planted historical unused definition."""

    file: str
    function: str
    var: str
    removed_by_bugfix: bool
    cross_scope: bool
    peer_style: bool  # detectable only with peer pruning disabled

    @property
    def join_key(self) -> tuple[str, str, str]:
        return (self.file, self.function, self.var)


@dataclass
class PreliminaryStudyCorpus:
    repo: Repository
    entries: list[PrelimEntry] = field(default_factory=list)
    day_2019: int = DAY_2019
    day_2021: int = DAY_2021

    def bugfix_entries(self) -> list[PrelimEntry]:
        return [entry for entry in self.entries if entry.removed_by_bugfix]

    def cross_scope_bugs(self) -> list[PrelimEntry]:
        return [entry for entry in self.entries if entry.removed_by_bugfix and entry.cross_scope]


class _PrelimBuilder:
    def __init__(self, scale: float, seed: int):
        self.scale = scale
        self.rng = random.Random(seed * 7919 + 13)
        self.pool = NamePool(self.rng, ["filesystem", "network", "security", "other"])
        self.repo = Repository("prelim")
        self.entries: list[PrelimEntry] = []
        self.owners = [Author(f"hist-dev{i}") for i in range(12)]
        self.newcomers = [Author(f"hist-new{i}") for i in range(10)]
        self.logging_author = Author("hist-logging")
        self._commits: list[tuple[int, Author, str, dict[str, str | None]]] = []

    def _queue(self, day: int, author: Author, message: str, changes: dict[str, str | None]) -> None:
        self._commits.append((day, author, message, changes))

    def _construct(self, index: int, cross: bool, bugfix: bool, peer_style: bool) -> None:
        owner = self.rng.choice(self.owners)
        newcomer = self.rng.choice(self.newcomers)
        fn = self.pool.function()
        ret = self.pool.variable()
        path = f"hist/{fn}.c"
        create_day = self.rng.randrange(0, DAY_2019 - 800)
        insert_day = self.rng.randrange(create_day + 30, DAY_2019 - 10)
        fix_day = self.rng.randrange(DAY_2019 + 30, DAY_2021 - 10)

        if peer_style:
            callee = f"note_msg_hist{index}"
            v1 = (
                f"int {callee}(int level);\n"
                f"void {fn}(int level)\n"
                "{\n"
                "    if (level < 0) { return; }\n"
                "}\n"
            )
            v2 = (
                f"int {callee}(int level);\n"
                f"void {fn}(int level)\n"
                "{\n"
                "    if (level < 0) { return; }\n"
                f"    {callee}(level);\n"
                "}\n"
            )
            v3 = (
                f"int {callee}(int level);\n"
                f"void {fn}(int level)\n"
                "{\n"
                "    int rc;\n"
                "    if (level < 0) { return; }\n"
                f"    rc = {callee}(level);\n"
                "    if (rc < 0) { return; }\n"
                "}\n"
            )
            self._queue(create_day, owner, f"add {path}", {path: v1})
            self._queue(insert_day, newcomer if cross else owner, f"wire telemetry into {fn}", {path: v2})
            message = f"Fix unchecked status from {callee} in {fn}"
            self._queue(fix_day, owner, message, {path: v3})
            self.entries.append(
                PrelimEntry(
                    file=path,
                    function=fn,
                    var=callee,
                    removed_by_bugfix=True,
                    cross_scope=cross,
                    peer_style=True,
                )
            )
            return

        callee_a = f"{fn}_load"
        callee_b = f"{fn}_mask"
        header = (
            f"static int {callee_a}(int v)\n{{\n    if (v < 0) {{ return -1; }}\n    return 0;\n}}\n"
            f"static int {callee_b}(int v)\n{{\n    return v & 7;\n}}\n"
        )
        v1 = (
            header
            + f"int {fn}(int v)\n"
            + "{\n"
            + f"    int {ret};\n"
            + f"    {ret} = {callee_a}(v);\n"
            + f"    if ({ret} < 0) {{ return -1; }}\n"
            + "    return 0;\n"
            + "}\n"
        )
        # The overwriting line makes the first definition unused (2019 state).
        v2 = (
            header
            + f"int {fn}(int v)\n"
            + "{\n"
            + f"    int {ret};\n"
            + f"    {ret} = {callee_a}(v);\n"
            + f"    {ret} = {callee_b}(v);\n"
            + f"    if ({ret} < 0) {{ return -1; }}\n"
            + "    return 0;\n"
            + "}\n"
        )
        if bugfix:
            # The fix checks the first status before recomputing.
            v3 = (
                header
                + f"int {fn}(int v)\n"
                + "{\n"
                + f"    int {ret};\n"
                + f"    {ret} = {callee_a}(v);\n"
                + f"    if ({ret} < 0) {{ return -1; }}\n"
                + f"    {ret} = {callee_b}(v);\n"
                + f"    if ({ret} < 0) {{ return -1; }}\n"
                + "    return 0;\n"
                + "}\n"
            )
            message = f"Fix lost error status of {callee_a} in {fn}"
        else:
            # A cleanup simply drops the dead first assignment.
            v3 = (
                header
                + f"int {fn}(int v)\n"
                + "{\n"
                + f"    int {ret};\n"
                + f"    {ret} = {callee_b}(v);\n"
                + f"    if ({ret} < 0) {{ return -1; }}\n"
                + "    return 0;\n"
                + "}\n"
            )
            message = f"cleanup: drop dead assignment in {fn}"
        self._queue(create_day, owner, f"add {path}", {path: v1})
        insert_author = newcomer if cross else owner
        self._queue(insert_day, insert_author, f"recompute mask in {fn}", {path: v2})
        self._queue(fix_day, owner, message, {path: v3})
        self.entries.append(
            PrelimEntry(
                file=path,
                function=fn,
                var=ret,
                removed_by_bugfix=bugfix,
                cross_scope=cross,
                peer_style=False,
            )
        )

    def _peer_noise(self, callees: list[str]) -> None:
        """Static worker files making every peer-style callee mostly
        ignored across both snapshots."""
        lines = ["/* telemetry fan-out */"]
        protos = [f"int {callee}(int level);" for callee in callees]
        body: list[str] = []
        for index, callee in enumerate(callees):
            for site in range(12):
                body.append(f"void fanout_{index}_{site}(int level)")
                body.append("{")
                body.append(f"    {callee}(level + {site});")
                body.append("}")
        defs = [
            f"int {callee}(int level)\n{{\n    return level;\n}}" for callee in callees
        ]
        content = "\n".join(protos + body) + "\n"
        self._queue(100, self.logging_author, "add telemetry fanout", {"hist/fanout.c": content})
        self._queue(
            101,
            self.logging_author,
            "add telemetry backend",
            {"hist/telemetry.c": "\n".join(defs) + "\n"},
        )

    def build(self) -> PreliminaryStudyCorpus:
        total = max(6, math.floor(TOTAL_AT_SCALE_1 * self.scale + 0.5))
        n_bugfix = round(total * BUGFIX_FRACTION)
        n_cross_bugfix = round(n_bugfix * CROSS_OF_BUGFIX)
        n_peer = min(
            n_cross_bugfix,
            max(1, math.floor(PEER_MISSES_AT_SCALE_1 * self.scale + 0.5)) if self.scale >= 0.05 else 1,
        )
        plan: list[tuple[bool, bool, bool]] = []  # (cross, bugfix, peer)
        for index in range(total):
            bugfix = index < n_bugfix
            if bugfix:
                cross = index < n_cross_bugfix
                peer = index < n_peer
            else:
                cross = self.rng.random() < CLEANUP_CROSS_FRACTION
                peer = False
            plan.append((cross, bugfix, peer))
        self.rng.shuffle(plan)
        peer_callees: list[str] = []
        for index, (cross, bugfix, peer) in enumerate(plan):
            self._construct(index, cross=cross, bugfix=bugfix, peer_style=peer)
            if peer:
                peer_callees.append(self.entries[-1].var)
        if peer_callees:
            self._peer_noise(peer_callees)
        self._commits.sort(key=lambda item: item[0])
        for day, author, message, changes in self._commits:
            self.repo.commit(author, message, changes, day=day)
        # Snapshot anchors so snapshot_at_day finds commits at both dates.
        self.repo.commit(self.owners[0], "2021 tree state", {"NOTES": "2021\n"}, day=DAY_2021 + 5)
        return PreliminaryStudyCorpus(repo=self.repo, entries=self.entries)


def generate_preliminary_corpus(scale: float = 1.0, seed: int = 11) -> PreliminaryStudyCorpus:
    """Generate the historical-differential corpus at the given scale."""
    return _PrelimBuilder(scale, seed).build()
