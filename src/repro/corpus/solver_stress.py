"""Deterministic solver-stress corpus for the ``stages.solver`` benchmark.

The application profiles in :mod:`repro.corpus.generator` are shaped
like real code: many small functions, few pointer chains, so constraint
*construction* (an IR walk both solvers share) dominates and the
propagation loop barely runs.  Measuring solver work needs the opposite
shape — modules whose constraint graphs make propagation dominate:

* **chains** — long ``p[i+1] = p[i]`` copy chains fed by many
  address-of base constraints.  Difference propagation walks every
  (edge, pointee) pair one set-insert at a time: O(chain · pointees)
  string-hashed operations.  The bitset solver moves whole masks, one
  ``|`` per edge.
* **cycles** — the same chains closed back on themselves
  (``p[0] = p[last]``).  Online SCC collapsing folds each loop into one
  representative; the reference keeps circulating deltas around it.
* **derefs** — ``**pp``-style complex constraints that add copy edges
  mid-solve, exercising lazy (online) cycle detection rather than the
  offline pass.
* **handler fans** — function-pointer dispatch through a shared
  handler variable, exercising indirect-call wiring.

Everything is plain C accepted by the in-tree frontend, lowered through
the normal pipeline — the stress modules measure the real solver on real
IR, just with an adversarial constraint shape.  ``scale=1.0`` is the
size recorded in BENCH ``stages.solver``; all sizes grow linearly with
``scale``.  ``seed`` offsets which pointee each chain link is reseeded
with, so distinct seeds give structurally equal but not textually
identical corpora.
"""

from __future__ import annotations

from repro.ir.builder import lower_source
from repro.ir.module import Module

#: Sizes at scale 1.0, per stress module.  Chain/cycle modules get the
#: full pointee fan (their cost is pure copy propagation, where the two
#: solvers differ structurally); deref modules use a quarter of it, since
#: complex constraints iterate pointees one at a time in both solvers.
CHAIN_LENGTH = 540
POINTEE_COUNT = 2160
DEREF_DEPTH = 48
HANDLER_COUNT = 64
MODULE_COUNTS = {"chain": 2, "cycle": 2, "deref": 1, "handlers": 1}


def _chain_source(index: int, chain: int, pointees: int, seed: int, cyclic: bool) -> str:
    lines = [f"void stress_{'cycle' if cyclic else 'chain'}_{index}(void) {{"]
    lines.extend(f"    int x{i};" for i in range(pointees))
    lines.extend(f"    int *p{i};" for i in range(chain))
    # Base constraints: every pointee enters at a deterministic,
    # seed-offset link so deltas start all along the chain.
    for i in range(pointees):
        entry = (i * 7 + seed + index) % max(1, chain // 4)
        lines.append(f"    p{entry} = &x{i};")
    lines.extend(f"    p{i + 1} = p{i};" for i in range(chain - 1))
    if cyclic:
        lines.append(f"    p0 = p{chain - 1};")
    lines.append("}")
    return "\n".join(lines)


def _deref_source(index: int, depth: int, pointees: int, seed: int) -> str:
    lines = [f"void stress_deref_{index}(void) {{"]
    lines.extend(f"    int y{i};" for i in range(pointees))
    lines.extend(f"    int *q{i};" for i in range(depth))
    lines.extend(f"    int **qq{i};" for i in range(depth))
    for i in range(depth):
        lines.append(f"    qq{i} = &q{i};")
    # Stores through pointer-to-pointer fan pointees into the q chain;
    # loads read them back out, adding copy edges during the solve.
    for i in range(pointees):
        slot = (i * 5 + seed + index) % depth
        lines.append(f"    *qq{slot} = &y{i};")
    for i in range(depth - 1):
        lines.append(f"    q{i + 1} = *qq{i};")
    lines.append(f"    q0 = *qq{depth - 1};")
    lines.append("}")
    return "\n".join(lines)


def _handlers_source(index: int, handlers: int, seed: int) -> str:
    lines = []
    for i in range(handlers):
        lines.append(f"int stress_handler_{index}_{i}(int *arg) {{ return {i}; }}")
    lines.append(f"void stress_dispatch_{index}(int c) {{")
    lines.append("    int r;")
    lines.append("    int payload;")
    lines.append("    int *handler;")
    for i in range(handlers):
        pick = (i + seed) % handlers
        lines.append(
            f"    if (c == {i}) {{ handler = stress_handler_{index}_{pick}; }}"
        )
    lines.append("    r = handler(&payload);")
    lines.append("}")
    return "\n".join(lines)


def stress_sources(scale: float = 1.0, seed: int = 7) -> dict[str, str]:
    """Path -> C source for the stress corpus at ``scale``."""
    chain = max(8, int(CHAIN_LENGTH * scale))
    pointees = max(8, int(POINTEE_COUNT * scale))
    depth = max(4, int(DEREF_DEPTH * scale))
    handlers = max(4, int(HANDLER_COUNT * scale))
    sources: dict[str, str] = {}
    for i in range(MODULE_COUNTS["chain"]):
        sources[f"stress/chain_{i}.c"] = _chain_source(i, chain, pointees, seed, cyclic=False)
    for i in range(MODULE_COUNTS["cycle"]):
        sources[f"stress/cycle_{i}.c"] = _chain_source(i, chain, pointees, seed, cyclic=True)
    for i in range(MODULE_COUNTS["deref"]):
        sources[f"stress/deref_{i}.c"] = _deref_source(i, depth, max(8, pointees // 4), seed)
    for i in range(MODULE_COUNTS["handlers"]):
        sources[f"stress/handlers_{i}.c"] = _handlers_source(i, handlers, seed)
    return sources


def stress_modules(scale: float = 1.0, seed: int = 7) -> list[tuple[str, Module]]:
    """The stress corpus lowered to IR, sorted by path."""
    return [
        (path, lower_source(text, filename=path))
        for path, text in sorted(stress_sources(scale, seed).items())
    ]
