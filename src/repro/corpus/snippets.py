"""Construct builders: each returns a :class:`Construct` that plants
exactly one unused-definition candidate (or, for fillers, none).

Every builder documents which pipeline stage is expected to handle its
output; the corpus tests assert those expectations hold when the real
analyses run."""

from __future__ import annotations

import random

from repro.corpus.assembly import Construct, SupportFunction, TaggedLine
from repro.corpus.ground_truth import GroundTruthEntry
from repro.corpus.names import NamePool

L = TaggedLine


def _truth(
    construct: Construct,
    *,
    is_bug: bool,
    cross: bool,
    pruner: str | None = None,
    bug_type: str | None = None,
    component: str | None = None,
    severity: str | None = None,
) -> None:
    construct.truth = GroundTruthEntry(
        category=construct.category,
        file="",  # stamped at placement
        function=construct.function,
        var=construct.var,
        is_bug=is_bug,
        expected_cross_scope=cross,
        expected_pruner=pruner,
        bug_type=bug_type,
        component=component,
        severity=severity,
    )


# ---------------------------------------------------------------------------
# Fillers
# ---------------------------------------------------------------------------


def make_filler(pool: NamePool, rng: random.Random) -> Construct:
    """A clean function: every parameter and local is genuinely used."""
    fn = pool.function()
    a, b = pool.variable(), pool.variable()
    shape = rng.randrange(5)
    if shape == 4:
        # Classic kernel-style goto error handling.
        lines = [
            L(f"int {fn}(int {a})"),
            L("{"),
            L(f"    int {b} = -1;"),
            L(f"    if ({a} < 0) {{ goto out; }}"),
            L(f"    {b} = {a} + 1;"),
            L("out:"),
            L(f"    return {b};"),
            L("}"),
        ]
        return Construct(category="filler", function=fn, var="", lines=lines)
    if shape == 3:
        lines = [
            L(f"int {fn}(int {a})"),
            L("{"),
            L(f"    int {b} = 0;"),
            L(f"    switch ({a} + {b}) {{"),
            L("    case 0:"),
            L(f"        {b} = 1;"),
            L("        break;"),
            L(f"    case {rng.randrange(1, 5)}:"),
            L(f"        {b} = {a} + 1;"),
            L("        break;"),
            L("    default:"),
            L(f"        {b} = {a};"),
            L("    }"),
            L(f"    return {b};"),
            L("}"),
        ]
        return Construct(category="filler", function=fn, var="", lines=lines)
    if shape == 0:
        lines = [
            L(f"int {fn}(int {a}, int {b})"),
            L("{"),
            L(f"    int total = {a} + {b};"),
            L(f"    if (total > {rng.randrange(2, 9)}) {{ return total; }}"),
            L(f"    return {a};"),
            L("}"),
        ]
    elif shape == 1:
        lines = [
            L(f"int {fn}(int {a})"),
            L("{"),
            L(f"    int acc = 0;"),
            L(f"    for (int i = 0; i < {a}; i++) {{ acc = acc + i; }}"),
            L("    return acc;"),
            L("}"),
        ]
    else:
        lines = [
            L(f"int {fn}(int {a}, int {b})"),
            L("{"),
            L(f"    while ({a} > {b}) {{ {a} = {a} - 1; }}"),
            L(f"    return {a};"),
            L("}"),
        ]
    return Construct(category="filler", function=fn, var="", lines=lines)


# ---------------------------------------------------------------------------
# Real bugs (cross-scope, must survive pruning and be reported)
# ---------------------------------------------------------------------------


def make_bug_overwritten_def(
    pool: NamePool, rng: random.Random, intro_role: str
) -> Construct:
    """Scenario 3 (Figure 8): a value assigned by the owner, overwritten on
    all paths by another developer before any use."""
    fn = pool.function(verb="check")
    ret = pool.variable()
    callee_a = pool.function(verb="get")
    callee_b = pool.function(verb="calc")
    arg = pool.variable()
    construct = Construct(
        category="bug_overwritten",
        function=fn,
        var=ret,
        intro_role=intro_role,
        prelude=[f"int {callee_a}(int v);", f"int {callee_b}(int v);"],
        lines=[
            L(f"int {fn}(int {arg})"),
            L("{"),
            L(f"    int {ret};"),
            L(f"    {ret} = {callee_a}({arg});"),
            L(f"    {ret} = {callee_b}({arg});", round=2),
            L(f"    if ({ret} < 0) {{ return {ret}; }}"),
            L("    return 0;"),
            L("}"),
        ],
        support=[
            SupportFunction(
                lines=[
                    f"int {callee_a}(int v)",
                    "{",
                    f"    if (v < 0) {{ return -{rng.randrange(1, 20)}; }}",
                    "    return 0;",
                    "}",
                ]
            ),
            SupportFunction(
                lines=[
                    f"int {callee_b}(int v)",
                    "{",
                    f"    return v & {rng.randrange(1, 255)};",
                    "}",
                ]
            ),
        ],
    )
    _truth(construct, is_bug=True, cross=True, bug_type=None)
    return construct


def make_bug_ignored_return(
    pool: NamePool, rng: random.Random, intro_role: str, coverity_findable: bool
) -> Construct:
    """Scenario 1 (Figure 6a-style): a status-returning callee whose result
    one developer discards."""
    fn = pool.function(verb="apply")
    callee = pool.function(verb="init")
    loc = pool.variable()
    support = [
        SupportFunction(
            lines=[
                f"int {callee}(int v)",
                "{",
                f"    if (v < 0) {{ return -{rng.randrange(1, 30)}; }}",
                "    return 0;",
                "}",
            ]
        )
    ]
    if coverity_findable:
        # Give the callee peers that DO check the result, so a
        # usage-percentage checker can infer the return matters.
        for peer_index in range(3):
            user = pool.function(verb="probe")
            support.append(
                SupportFunction(
                    prelude=[f"int {callee}(int v);"],
                    lines=[
                        f"int {user}(int v)",
                        "{",
                        "    int rc;",
                        f"    rc = {callee}(v + {peer_index});",
                        "    if (rc < 0) { return rc; }",
                        "    return 0;",
                        "}",
                    ],
                )
            )
    construct = Construct(
        category="bug_ignored_return",
        function=fn,
        var=callee,
        intro_role=intro_role,
        prelude=[f"int {callee}(int v);"],
        lines=[
            L(f"void {fn}(int mode)"),
            L("{"),
            L(f"    int {loc} = mode + 1;"),
            L(f"    {callee}({loc});", round=2),
            L("}"),
        ],
        support=support,
    )
    _truth(construct, is_bug=True, cross=True, bug_type=None)
    return construct


def make_bug_overwritten_arg(
    pool: NamePool, rng: random.Random, intro_role: str, flavor: str
) -> Construct:
    """Scenario 2 (Figure 1b): a parameter whose incoming value another
    developer's code never observes.  ``flavor`` is 'overwrite' (the value
    is clobbered inside the callee) or 'unused' (never read at all)."""
    fn = pool.function(verb="open")
    ty = pool.type_name()
    bufsz = pool.variable()
    caller = pool.function(verb="register")
    prelude = [f"typedef int {ty};"]
    constant = rng.choice((512, 1024, 1400, 4096))
    if flavor == "overwrite":
        lines = [
            L(f"int {fn}({ty} mode, int {bufsz})"),
            L("{"),
            L("    if (mode < 0) { return -1; }"),
            L(f"    {bufsz} = {constant};", round=2),
            L(f"    if ({bufsz} > 0) {{ return {bufsz}; }}"),
            L("    return 0;"),
            L("}"),
        ]
        category = "bug_overwritten_arg"
    else:
        # The whole function is the newcomer's (round 2), so the parameter
        # definition itself belongs to the boundary-crossing author.
        lines = [
            L(f"int {fn}({ty} mode, int {bufsz})", round=2),
            L("{", round=2),
            L("    if (mode < 0) { return -1; }", round=2),
            L(f"    return {constant};", round=2),
            L("}", round=2),
        ]
        category = "bug_unused_param"
    construct = Construct(
        category=category,
        function=fn,
        var=bufsz,
        intro_role=intro_role,
        prelude=prelude,
        lines=lines,
        support=[
            SupportFunction(
                prelude=[f"typedef int {ty};", f"int {fn}({ty} mode, int {bufsz});"],
                lines=[
                    f"void {caller}(void)",
                    "{",
                    "    int r;",
                    f"    r = {fn}(1, 0);",
                    "    if (r < 0) { return; }",
                    "}",
                ],
            )
        ],
    )
    _truth(construct, is_bug=True, cross=True, bug_type=None)
    return construct


def make_bug_field_def(pool: NamePool, rng: random.Random, intro_role: str) -> Construct:
    """Field-sensitive scenario 3: a struct field set by the owner, then
    overwritten by another developer before any read."""
    fn = pool.function(verb="update")
    struct = pool.struct_name()
    construct = Construct(
        category="bug_field",
        function=fn,
        var="req#flags",
        intro_role=intro_role,
        prelude=[f"struct {struct} {{ int mode; int flags; }};"],
        lines=[
            L(f"int {fn}(int v)"),
            L("{"),
            L(f"    struct {struct} req;"),
            L("    req.flags = v;"),
            L(f"    req.flags = v | {rng.randrange(2, 64)};", round=2),
            L("    req.mode = 1;"),
            L("    return req.flags + req.mode;"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=True, cross=True, bug_type=None)
    return construct


# ---------------------------------------------------------------------------
# Benign cross-scope candidates, claimed by each pruning strategy
# ---------------------------------------------------------------------------


def make_config_dep(pool: NamePool, rng: random.Random, macro: str) -> Construct:
    """§5.1: the candidate definition's only use sits under a disabled
    #if.  An earlier definition of the same variable *is* read, so AST
    walkers (Clang) stay silent — maintained code bases are warning-clean
    (§8.4.1) — while the flow-sensitive detector still sees the dead
    redefinition."""
    fn = pool.function(verb="trace")
    var = pool.variable()
    emitter = pool.function(verb="emit")
    seeder = pool.function(verb="record")
    construct = Construct(
        category="config_dep",
        function=fn,
        var=var,
        intro_role="newcomer",
        prelude=[f"void {seeder}(int v);"],
        lines=[
            L(f"int {fn}(int level)"),
            L("{"),
            L(f"    int {var} = level;"),
            L(f"    {seeder}({var});"),
            L(f"    {var} = level + {rng.randrange(1, 9)};", round=2),
            L(f"#if {macro}", round=2),
            L(f"    {emitter}({var});", round=2),
            L("#endif", round=2),
            L("    return level;"),
            L("}"),
        ],
        support=[
            SupportFunction(
                lines=[f"void {seeder}(int v)", "{", "    if (v) { return; }", "}"]
            )
        ],
    )
    _truth(construct, is_bug=False, cross=True, pruner="config_dependency")
    return construct


def make_cursor(pool: NamePool, rng: random.Random) -> Construct:
    """§5.2 (Figure 5): the trailing cursor increment is dead by design."""
    fn = pool.function(verb="encode")
    construct = Construct(
        category="cursor",
        function=fn,
        var="o",
        intro_role="newcomer",
        lines=[
            L(f"static void {fn}(char *output, char c)"),
            L("{"),
            L("    char *o = output;", round=2),
            L("    if (c == '-')", round=2),
            L("        *o++ = '_';", round=2),
            L("    *o++ = '\\0';", round=2),
            L("}"),
        ],
    )
    _truth(construct, is_bug=False, cross=True, pruner="cursor")
    return construct


def make_hint(pool: NamePool, rng: random.Random, flavor: str) -> Construct:
    """§5.3: the developer said the definition is unused on purpose."""
    fn = pool.function(verb="probe")
    var = pool.variable()
    if flavor == "attribute":
        body = [L(f"    int {var} __attribute__((unused)) = mode + {rng.randrange(1, 9)};", round=2)]
    else:
        # Comment marker on a dead *redefinition*; the earlier definition
        # is read, so AST walkers stay silent (see make_config_dep).
        body = [
            L(f"    int {var} = mode;", round=2),
            L(f"    if ({var} < 0) {{ return -1; }}", round=2),
            L(f"    {var} = mode & 3; /* unused, kept for the debugger */", round=2),
        ]
    construct = Construct(
        category="hint",
        function=fn,
        var=var,
        intro_role="newcomer",
        lines=[
            L(f"int {fn}(int mode)"),
            L("{"),
            *body,
            L("    return mode;"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=False, cross=True, pruner="unused_hints")
    return construct


def make_hint_param(pool: NamePool, rng: random.Random) -> Construct:
    """§5.3, parameter form: ``[[maybe_unused]]`` on an ignored argument."""
    fn = pool.function(verb="flush")
    ty = pool.type_name()
    caller = pool.function(verb="drain")
    construct = Construct(
        category="hint",
        function=fn,
        var="force",
        intro_role="newcomer",
        prelude=[f"typedef int {ty};"],
        lines=[
            L(f"int {fn}({ty} depth, int force [[maybe_unused]])", round=2),
            L("{", round=2),
            L("    if (depth < 0) { return -1; }", round=2),
            L("    return depth;", round=2),
            L("}", round=2),
        ],
        support=[
            SupportFunction(
                prelude=[f"typedef int {ty};", f"int {fn}({ty} depth, int force);"],
                lines=[
                    f"void {caller}(void)",
                    "{",
                    "    int r;",
                    f"    r = {fn}(3, 1);",
                    "    if (r < 0) { return; }",
                    "}",
                ],
            )
        ],
    )
    _truth(construct, is_bug=False, cross=True, pruner="unused_hints")
    return construct


def make_peer_callee(pool: NamePool) -> SupportFunction:
    """A logging-style function whose return value nobody checks."""
    callee = pool.log_function()
    return SupportFunction(
        author_role="logging",
        lines=[
            f"int {callee}(int level)",
            "{",
            "    return level;",
            "}",
        ],
    )


def make_peer_site(pool: NamePool, rng: random.Random, callee: str) -> Construct:
    """§5.4: a worker function ignoring the result of a peer-pruned callee
    (exactly one candidate)."""
    fn = pool.function(verb="submit")
    construct = Construct(
        category="peer",
        function=fn,
        var=callee,
        intro_role="owner",
        prelude=[f"int {callee}(int level);"],
        lines=[
            L(f"void {fn}(int level)"),
            L("{"),
            L(f"    {callee}(level + {rng.randrange(0, 5)});"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=False, cross=True, pruner="peer_definition")
    return construct


# ---------------------------------------------------------------------------
# Reported-but-minor false positives (survive the whole pipeline)
# ---------------------------------------------------------------------------


def make_fp_minor(pool: NamePool, rng: random.Random, intro_role: str, flavor: str) -> Construct:
    if flavor == "infallible_return":
        # The callee cannot fail here, so the developer ignores the status.
        # Cross-scope comes from the callee living in another team's file,
        # so the call can be the host owner's own round-0 code (the common
        # case: experienced developers knowingly skip the check).
        fn = pool.function(verb="reset")
        callee = pool.function(verb="set")
        by_owner = intro_role == "owner"
        call_round = 0 if by_owner else 2
        lines = [L(f"void {fn}(int v)"), L("{")]
        if not by_owner:
            lines.append(L("    /* cache warm-up for the fast path */", round=1))
        lines.extend([L(f"    {callee}(v);", round=call_round), L("}")])
        construct = Construct(
            category="fp_minor",
            function=fn,
            var=callee,
            intro_role=intro_role,
            prelude=[f"int {callee}(int v);"],
            lines=lines,
            support=[
                SupportFunction(
                    lines=[
                        f"int {callee}(int v)",
                        "{",
                        "    if (v < 0) { return 0; }",
                        "    return 0;",
                        "}",
                    ]
                )
            ],
        )
    else:  # leftover debug accumulator (dead redefinition; see make_config_dep)
        fn = pool.function(verb="scan")
        var = pool.variable()
        construct = Construct(
            category="fp_minor",
            function=fn,
            var=var,
            intro_role=intro_role,
            lines=[
                L(f"int {fn}(int mode)"),
                L("{"),
                L("    /* instrumentation sweep */", round=1),
                L(f"    int {var} = mode * {rng.randrange(2, 7)}; /* debug counter */", round=2),
                L(f"    if ({var} < 0) {{ return -1; }}", round=2),
                L(f"    {var} = mode >> 1;", round=2),
                L("    return mode;"),
                L("}"),
            ],
        )
    _truth(construct, is_bug=False, cross=True, pruner=None)
    return construct


# ---------------------------------------------------------------------------
# Same-author unused definitions (filtered by the authorship stage)
# ---------------------------------------------------------------------------


def make_same_author(
    pool: NamePool, rng: random.Random, flavor: str, late: bool = False
) -> Construct:
    """A non-cross-scope unused definition.  With ``late=True`` the whole
    function is a later insertion by a newcomer (their own self-contained
    code, still single-author): these populate the low-familiarity noise
    that swamps the w/o-Authorship ablation in the paper's §8.5.1."""
    construct = _make_same_author_body(pool, rng, flavor)
    if late:
        construct.intro_role = "newcomer"
        construct.lines = [L(line.text, round=2) for line in construct.lines]
    return construct


def _make_same_author_body(pool: NamePool, rng: random.Random, flavor: str) -> Construct:
    if flavor == "overwritten":
        fn = pool.function(verb="sync")
        ret = pool.variable()
        helper = f"{fn}_helper"
        construct = Construct(
            category="same_author",
            function=fn,
            var=ret,
            intro_role="owner",
            lines=[
                L(f"static int {helper}(int v)"),
                L("{"),
                L("    return v + 1;"),
                L("}"),
                L(f"int {fn}(int v)"),
                L("{"),
                L(f"    int {ret};"),
                L(f"    {ret} = {helper}(v);"),
                L(f"    {ret} = 0;"),
                L(f"    if ({ret} < v) {{ return 1; }}"),
                L("    return 0;"),
                L("}"),
            ],
        )
    elif flavor == "dead_store":
        fn = pool.function(verb="poll")
        var = pool.variable()
        construct = Construct(
            category="same_author",
            function=fn,
            var=var,
            intro_role="owner",
            lines=[
                L(f"int {fn}(int mode)"),
                L("{"),
                L(f"    int {var} = mode * 2;"),
                L(f"    if ({var} > mode) {{ {var} = mode; }}"),
                L("    return mode;"),
                L("}"),
            ],
        )
    else:  # ignored return of a same-file, same-author helper
        fn = pool.function(verb="drain")
        helper = f"{fn}_note"
        construct = Construct(
            category="same_author",
            function=fn,
            var=helper,
            intro_role="owner",
            lines=[
                L(f"static int {helper}(int v)"),
                L("{"),
                L("    return v;"),
                L("}"),
                L(f"void {fn}(int v)"),
                L("{"),
                L(f"    {helper}(v);"),
                L("}"),
            ],
        )
    _truth(construct, is_bug=False, cross=False, pruner=None)
    return construct


# ---------------------------------------------------------------------------
# Real bugs that pruning wrongly claims (§8.3.4's sampled false negatives)
# ---------------------------------------------------------------------------


def make_pruned_bug_config(pool: NamePool, rng: random.Random, macro: str) -> Construct:
    """A genuine overwritten-definition bug whose variable also appears
    under a disabled #if — the config pruner claims it."""
    fn = pool.function(verb="commit")
    ret = pool.variable()
    callee_a = pool.function(verb="get")
    dump = pool.function(verb="report")
    construct = Construct(
        category="pruned_bug_config",
        function=fn,
        var=ret,
        intro_role="newcomer",
        prelude=[f"int {callee_a}(int v);"],
        lines=[
            L(f"int {fn}(int v)"),
            L("{"),
            L(f"    int {ret};"),
            L(f"    {ret} = {callee_a}(v);"),
            L(f"    {ret} = v + 1;", round=2),
            L(f"#if {macro}"),
            L(f"    {dump}({ret});"),
            L("#endif"),
            L(f"    if ({ret} < 0) {{ return -1; }}"),
            L("    return 0;"),
            L("}"),
        ],
        support=[
            SupportFunction(
                lines=[
                    f"int {callee_a}(int v)",
                    "{",
                    f"    if (v > {rng.randrange(3, 60)}) {{ return -1; }}",
                    "    return 0;",
                    "}",
                ]
            )
        ],
    )
    _truth(construct, is_bug=True, cross=True, pruner="config_dependency")
    return construct


def make_pruned_bug_peer(pool: NamePool, rng: random.Random, peer_callee: str) -> Construct:
    """A genuine ignored-return bug on a callee whose peers mostly ignore
    the result — peer pruning claims it (the paper's dominant pruning FN)."""
    fn = pool.function(verb="verify")
    construct = Construct(
        category="pruned_bug_peer",
        function=fn,
        var=peer_callee,
        intro_role="newcomer",
        prelude=[f"int {peer_callee}(int level);"],
        lines=[
            L(f"void {fn}(int level)"),
            L("{"),
            L(f"    {peer_callee}(level);", round=2),
            L("}"),
        ],
    )
    _truth(construct, is_bug=True, cross=True, pruner="peer_definition")
    return construct


# ---------------------------------------------------------------------------
# Semantic-rule plants (repro.rules): use-after-free and resource-leak
# ---------------------------------------------------------------------------


def make_bug_use_after_free(
    pool: NamePool, rng: random.Random, intro_role: str
) -> Construct:
    """A pointer freed by a later contributor while the original code
    still reads through it — the use-after-free pack must report the use
    site with the free line as evidence."""
    fn = pool.function(verb="drain")
    ptr = pool.variable()
    slot = pool.variable()
    construct = Construct(
        category="bug_uaf",
        function=fn,
        var=ptr,
        intro_role=intro_role,
        prelude=["void free(int *p);"],
        lines=[
            L(f"int {fn}(int mode)"),
            L("{"),
            L(f"    int {slot} = mode + {rng.randrange(1, 9)};"),
            L(f"    int *{ptr} = &{slot};"),
            L(f"    free({ptr});", round=2),
            L(f"    return *{ptr};"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=True, cross=True, bug_type="use_after_free")
    return construct


def make_benign_use_after_free(pool: NamePool, rng: random.Random) -> Construct:
    """A freed pointer re-pointed before any further use — every path
    from the free to a use crosses the reassignment, so the pack must
    stay silent."""
    fn = pool.function(verb="reset")
    ptr = pool.variable()
    slot = pool.variable()
    spare = pool.variable()
    construct = Construct(
        category="benign_uaf",
        function=fn,
        var=ptr,
        prelude=["void free(int *p);"],
        lines=[
            L(f"int {fn}(int mode)"),
            L("{"),
            L(f"    int {slot} = mode;"),
            L(f"    int {spare} = mode + {rng.randrange(1, 9)};"),
            L(f"    int *{ptr} = &{slot};"),
            L(f"    free({ptr});"),
            L(f"    {ptr} = &{spare};"),
            L(f"    return *{ptr};"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=False, cross=False)
    return construct


def make_bug_resource_leak(
    pool: NamePool, rng: random.Random, intro_role: str
) -> Construct:
    """A handle released on the main path but not on an early return a
    later contributor added — the resource-leak pack must report the
    acquire site with the release line as evidence."""
    fn = pool.function(verb="load")
    handle = pool.variable()
    construct = Construct(
        category="bug_leak",
        function=fn,
        var=handle,
        intro_role=intro_role,
        prelude=["struct file *fopen(int mode);", "void fclose(struct file *h);"],
        lines=[
            L(f"int {fn}(int mode)"),
            L("{"),
            L(f"    struct file *{handle} = fopen(mode);"),
            L(f"    if (mode < 0) {{ return -1; }}", round=2),
            L(f"    fclose({handle});"),
            L("    return 0;"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=True, cross=True, bug_type="resource_leak")
    return construct


def make_benign_resource_leak(pool: NamePool, rng: random.Random) -> Construct:
    """A handle released on every path (including the early return) —
    the resource-leak pack must stay silent."""
    fn = pool.function(verb="sync")
    handle = pool.variable()
    construct = Construct(
        category="benign_leak",
        function=fn,
        var=handle,
        prelude=["struct file *fopen(int mode);", "void fclose(struct file *h);"],
        lines=[
            L(f"int {fn}(int mode)"),
            L("{"),
            L(f"    struct file *{handle} = fopen(mode);"),
            L(f"    if (mode < 0) {{ fclose({handle}); return -1; }}"),
            L(f"    fclose({handle});"),
            L("    return 0;"),
            L("}"),
        ],
    )
    _truth(construct, is_bug=False, cross=False)
    return construct
