"""Ground-truth ledger: what was planted, and what should happen to it.

Every planted construct registers an entry describing the expected
pipeline outcome (cross-scope? pruned by which strategy? a real bug?) and
the bug-report metadata Figure 7 aggregates.  The evaluation joins
analysis findings against the ledger by (file, function, variable) — the
analyses themselves never see it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.findings import Finding


@dataclass(frozen=True)
class GroundTruthEntry:
    """One planted construct."""

    category: str  # generator category (bug_overwritten, cursor, peer, ...)
    file: str
    function: str
    var: str  # variable name, or callee name for ignored returns
    is_bug: bool
    expected_cross_scope: bool
    expected_pruner: str | None = None  # which strategy should claim it
    bug_type: str | None = None  # 'missing_check' | 'semantic'
    component: str | None = None  # Figure 7a
    severity: str | None = None  # Figure 7b: high/medium/low
    introduced_day: int = -1  # Figure 7c (age = detection day - this)

    @property
    def join_key(self) -> tuple[str, str, str]:
        return (self.file, self.function, self.var)


@dataclass
class GroundTruthLedger:
    """All planted constructs of one synthetic application."""

    app: str
    detection_day: int
    entries: list[GroundTruthEntry] = field(default_factory=list)
    _index_cache: dict[tuple[str, str, str], GroundTruthEntry] | None = field(
        default=None, repr=False, compare=False
    )

    def add(self, entry: GroundTruthEntry) -> None:
        self.entries.append(entry)
        self._index_cache = None

    def by_category(self, category: str) -> list[GroundTruthEntry]:
        return [entry for entry in self.entries if entry.category == category]

    def bugs(self) -> list[GroundTruthEntry]:
        return [entry for entry in self.entries if entry.is_bug]

    def lookup(self, file: str, function: str, var: str) -> GroundTruthEntry | None:
        return self._index().get((file, function, var))

    def _index(self) -> dict[tuple[str, str, str], GroundTruthEntry]:
        if self._index_cache is None:
            self._index_cache = {entry.join_key: entry for entry in self.entries}
        return self._index_cache

    def match_finding(self, finding: Finding) -> GroundTruthEntry | None:
        """Join an analysis finding back to its planted construct."""
        candidate = finding.candidate
        index = self._index()
        exact = index.get((candidate.file, candidate.function, candidate.var))
        if exact is not None:
            return exact
        # Ignored returns carry the callee name as the variable; planted
        # entries for assigned forms may use the local instead.
        if candidate.callee is not None:
            return index.get((candidate.file, candidate.function, candidate.callee))
        return None

    def match_warning(self, file: str, function: str, var: str) -> GroundTruthEntry | None:
        """Join a baseline warning (same key shape)."""
        return self._index().get((file, function, var))

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.category] = out.get(entry.category, 0) + 1
        return out

    # -- (de)serialisation — lets generated corpora ship their ground
    # truth next to the sources, so external tool runs can be scored
    # (`valuecheck score`).

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "detection_day": self.detection_day,
            "entries": [asdict(entry) for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroundTruthLedger":
        ledger = cls(app=data["app"], detection_day=data["detection_day"])
        for raw in data["entries"]:
            ledger.add(GroundTruthEntry(**raw))
        return ledger

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "GroundTruthLedger":
        return cls.from_dict(json.loads(Path(path).read_text()))
