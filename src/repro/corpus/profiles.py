"""Application profiles: the paper's published per-app statistics.

Counts at ``scale=1.0`` reproduce the magnitudes of Table 4 (candidate
breakdown), Table 2/5 (bugs and minor false positives) and §8.5.1 (the
same-author unused definitions that only surface when cross-scope
filtering is ablated: 2259 total detected without authorship, of which
210 are the cross-scope reports).  ``scaled()`` shrinks every count
proportionally while keeping each non-zero category represented, so tests
and benchmarks can run at laptop-friendly sizes with the same *shape*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.vcs.objects import iso_to_day


@dataclass(frozen=True)
class CategoryCounts:
    """How many constructs of each category to plant (per application)."""

    # Cross-scope candidates pruned per strategy (Table 4 columns).
    config_dep: int
    cursor: int
    hints: int
    peer_sites: int  # total ignored call sites of peer-pruned functions
    # Cross-scope survivors (Table 2 / Table 5).
    bugs: int  # confirmed by developers
    fp_minor: int  # reported but judged minor / not bugs
    # Unused definitions that are NOT cross-scope (visible only in the
    # w/o-Authorship ablation, §8.5.1).
    same_author: int
    # Real bugs lost to pruning (§8.3.4's sampled false negatives).
    pruned_bug_config: int = 0
    pruned_bug_peer: int = 0
    # Plain filler functions (no candidates) for realistic bulk.
    filler: int = 40
    # Semantic-rule plants (repro.rules): use-after-free and resource-leak
    # bugs with ground-truth labels, plus benign look-alikes the packs
    # must stay silent on.  Zero in the published profiles — the paper's
    # corpora predate the semantic packs, which keeps their RNG draws
    # (and every downstream expectation) unchanged.
    uaf_bugs: int = 0
    uaf_benign: int = 0
    leak_bugs: int = 0
    leak_benign: int = 0

    @property
    def original(self) -> int:
        """Expected Table 4 '#Original' (cross-scope candidates)."""
        return (
            self.config_dep
            + self.cursor
            + self.hints
            + self.peer_sites
            + self.bugs
            + self.fp_minor
            + self.pruned_bug_config
            + self.pruned_bug_peer
        )


@dataclass(frozen=True)
class AppProfile:
    """One evaluated application."""

    name: str
    display: str
    version: str
    domains: tuple[str, ...]
    counts: CategoryCounts
    n_owner_authors: int
    n_drifter_authors: int
    detection_date: str  # analysis day (head commit)
    is_kernel: bool = False  # plants the KBUILD marker (baseline compat)
    loc_paper: str = ""  # the paper's Table 7 LOC column, for reports
    # Fraction of same-author unused defs written by low-familiarity
    # newcomers (self-contained later additions).  Shapes the
    # w/o-Authorship ablation of Table 6: these rank alongside real bugs
    # once cross-scope filtering is removed.
    same_author_newcomer_fraction: float = 0.25

    @property
    def detection_day(self) -> int:
        return iso_to_day(self.detection_date)


# Bug-type mix (Table 3): 134 missing-check vs 20 semantic of 154.
MISSING_CHECK_FRACTION = 134 / 154

# Figure 7a component distribution over confirmed bugs.
COMPONENT_WEIGHTS = {
    "filesystem": 0.38,
    "security": 0.17,
    "network": 0.14,
    "memory": 0.11,
    "drivers": 0.12,
    "other": 0.08,
}

# Figure 7b severity distribution.
SEVERITY_WEIGHTS = {"high": 0.15, "medium": 0.59, "low": 0.26}

# Figure 7c age buckets (days before detected) with sampling weights.
AGE_BUCKETS = [
    ((10, 100), 0.04),
    ((100, 500), 0.07),
    ((500, 1000), 0.08),
    ((1000, 2500), 0.81),
]

# Scenario mix for planted bugs (documented assumption; the paper gives
# examples of each shape but no exact split).
BUG_SCENARIO_WEIGHTS = {
    "ignored_return": 0.40,
    "overwritten_def": 0.30,
    "overwritten_arg": 0.15,
    "field_def": 0.15,
}

PROFILES: dict[str, AppProfile] = {
    "linux": AppProfile(
        name="linux",
        display="Linux",
        version="5.19",
        domains=("filesystem", "network", "memory", "drivers", "security"),
        counts=CategoryCounts(
            config_dep=1,
            cursor=22,
            hints=46,
            peer_sites=127,
            bugs=44,
            fp_minor=19,
            same_author=600,
            pruned_bug_config=1,
            pruned_bug_peer=1,
            filler=120,
        ),
        n_owner_authors=40,
        n_drifter_authors=30,
        detection_date="2022-07-31",
        is_kernel=True,
        loc_paper="27.8M",
        same_author_newcomer_fraction=0.04,
    ),
    "nfs-ganesha": AppProfile(
        name="nfs-ganesha",
        display="NFS-ganesha",
        version="4.46",
        domains=("filesystem", "security", "network"),
        counts=CategoryCounts(
            config_dep=7,
            cursor=7,
            hints=839,
            peer_sites=23,
            bugs=18,
            fp_minor=4,
            same_author=150,
            pruned_bug_peer=1,
            filler=40,
        ),
        n_owner_authors=10,
        n_drifter_authors=8,
        detection_date="2022-07-31",
        loc_paper="315K",
        same_author_newcomer_fraction=0.60,
    ),
    "mysql": AppProfile(
        name="mysql",
        display="MySQL",
        version="8.0.21",
        domains=("storage", "filesystem", "network", "memory", "security"),
        counts=CategoryCounts(
            config_dep=37,
            cursor=83,
            hints=3031,
            peer_sites=4493,
            bugs=74,
            fp_minor=25,
            same_author=1100,
            pruned_bug_config=1,
            pruned_bug_peer=2,
            filler=150,
        ),
        n_owner_authors=30,
        n_drifter_authors=20,
        detection_date="2022-07-31",
        loc_paper="1.7M",
        same_author_newcomer_fraction=0.08,
    ),
    "openssl": AppProfile(
        name="openssl",
        display="OpenSSL",
        version="3.0.0",
        domains=("crypto", "security", "network"),
        counts=CategoryCounts(
            config_dep=18,
            cursor=74,
            hints=322,
            peer_sites=202,
            bugs=18,
            fp_minor=8,
            same_author=200,
            pruned_bug_peer=1,
            filler=60,
        ),
        n_owner_authors=15,
        n_drifter_authors=10,
        detection_date="2022-07-31",
        loc_paper="1.5M",
        same_author_newcomer_fraction=0.50,
    ),
}


# The semantic-rules evaluation corpus (docs/RULES.md).  Deliberately
# NOT in PROFILES: the published profiles reproduce the paper's tables
# and must keep generating byte-identical corpora; this profile exists
# so ``repro.eval`` can report per-rule precision/recall for the
# use-after-free and resource-leak packs against known labels.
RULES_EVAL_PROFILE = AppProfile(
    name="rules-eval",
    display="RulesEval",
    version="1.0",
    domains=("filesystem", "memory", "network"),
    counts=CategoryCounts(
        config_dep=2,
        cursor=2,
        hints=4,
        peer_sites=12,
        bugs=4,
        fp_minor=2,
        same_author=6,
        filler=12,
        uaf_bugs=6,
        uaf_benign=4,
        leak_bugs=6,
        leak_benign=4,
    ),
    n_owner_authors=6,
    n_drifter_authors=5,
    detection_date="2022-07-31",
)


def _scale_count(count: int, scale: float) -> int:
    if count == 0:
        return 0
    return max(1, math.floor(count * scale + 0.5))


def scaled(profile: AppProfile, scale: float) -> AppProfile:
    """Shrink (or grow) every category count by ``scale``; non-zero
    categories keep at least one representative."""
    if scale == 1.0:
        return profile
    counts = profile.counts
    new_counts = replace(
        counts,
        config_dep=_scale_count(counts.config_dep, scale),
        cursor=_scale_count(counts.cursor, scale),
        hints=_scale_count(counts.hints, scale),
        peer_sites=_scale_count(counts.peer_sites, scale),
        bugs=_scale_count(counts.bugs, scale),
        fp_minor=_scale_count(counts.fp_minor, scale),
        same_author=_scale_count(counts.same_author, scale),
        pruned_bug_config=_scale_count(counts.pruned_bug_config, scale),
        pruned_bug_peer=_scale_count(counts.pruned_bug_peer, scale),
        filler=_scale_count(counts.filler, scale),
        uaf_bugs=_scale_count(counts.uaf_bugs, scale),
        uaf_benign=_scale_count(counts.uaf_benign, scale),
        leak_bugs=_scale_count(counts.leak_bugs, scale),
        leak_benign=_scale_count(counts.leak_benign, scale),
    )
    return replace(profile, counts=new_counts)
