"""Top-level corpus generation: profile → (repository, ground truth).

Author model
------------

* **owners** create files (round 0) — first authorship, so high DOK;
* **veterans** are recurring contributors: a warm-up delivery (round 1)
  precedes their construct edit, giving them DL ≥ 2 on the file;
* **newcomers** touch a file exactly once (the construct edit itself) —
  the low-familiarity developers the paper's insight targets;
* **support** / **logging** authors own the library files that host
  callees (making ignored returns cross-scope).

Bug edits are authored by newcomers with high probability (85%) and by
veterans otherwise; minor false positives are mostly the file owner's own
deliberate choices (infallible-return sites) with a minority of
newcomer/veteran debug leftovers.  The DOK ranking signal of §6 *emerges*
from these histories rather than being attached to findings."""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.core.project import Project
from repro.corpus.assembly import Construct, FilePlan, SupportFunction, assemble_repository
from repro.corpus.ground_truth import GroundTruthEntry, GroundTruthLedger
from repro.corpus.names import NamePool
from repro.corpus import snippets
from repro.corpus.profiles import (
    AGE_BUCKETS,
    AppProfile,
    BUG_SCENARIO_WEIGHTS,
    COMPONENT_WEIGHTS,
    PROFILES,
    SEVERITY_WEIGHTS,
    scaled,
)
from repro.errors import CorpusError
from repro.vcs.objects import Author
from repro.vcs.repository import Repository

_MIN_PEER_SITES = 12  # peer pruning needs > 10 occurrences per callee


def _weighted_choice(rng: random.Random, weights: dict[str, float]) -> str:
    roll = rng.random() * sum(weights.values())
    acc = 0.0
    for key, weight in weights.items():
        acc += weight
        if roll <= acc:
            return key
    return next(iter(weights))


def _sample_age(rng: random.Random) -> int:
    roll = rng.random()
    acc = 0.0
    for (lo, hi), weight in AGE_BUCKETS:
        acc += weight
        if roll <= acc:
            return rng.randrange(lo, hi)
    lo, hi = AGE_BUCKETS[-1][0]
    return rng.randrange(lo, hi)


@dataclass
class SyntheticApp:
    """One generated application."""

    profile: AppProfile
    scale: float
    repo: Repository
    ledger: GroundTruthLedger
    build_config: frozenset[str] = frozenset()

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def detection_day(self) -> int:
        return self.profile.detection_day

    def project(self) -> Project:
        return Project.from_repository(
            self.repo, name=self.profile.name, build_config=set(self.build_config)
        )


@dataclass
class _Planned:
    construct: Construct
    age: int
    domain: str


class _AppGenerator:
    def __init__(self, profile: AppProfile, scale: float, seed: int):
        self.profile = scaled(profile, scale)
        self.base_profile = profile
        self.scale = scale
        # zlib.crc32 is process-stable (built-in str hash is randomised
        # per interpreter run, which would make corpora non-reproducible).
        name_hash = zlib.crc32(profile.name.encode())
        self.rng = random.Random((seed * 1_000_003) ^ name_hash)
        self.pool = NamePool(self.rng, list(profile.domains))
        prefix = profile.name
        self.owners = [Author(f"{prefix}-dev{i}") for i in range(profile.n_owner_authors)]
        self.newcomers = [Author(f"{prefix}-new{i}") for i in range(profile.n_drifter_authors)]
        self.veterans = [Author(f"{prefix}-vet{i}") for i in range(max(3, profile.n_drifter_authors // 2))]
        self.support_authors = [Author(f"{prefix}-lib{i}") for i in range(4)]
        self.logging_author = Author(f"{prefix}-logging")
        self.support_functions: list[SupportFunction] = []
        self.planned: list[_Planned] = []
        self.peer_callees: list[str] = []
        self.ledger = GroundTruthLedger(app=profile.name, detection_day=profile.detection_day)

    # -- planning ----------------------------------------------------------

    def _plan(self, construct: Construct, age: int | None = None, domain: str | None = None) -> None:
        self.support_functions.extend(construct.support)
        construct.support = []
        self.planned.append(
            _Planned(
                construct=construct,
                age=age if age is not None else self.rng.randrange(100, 2200),
                domain=domain or self.pool.domain(),
            )
        )

    def _bug_role(self) -> str:
        return "newcomer" if self.rng.random() < 0.85 else "veteran"

    def _plan_bugs(self) -> None:
        counts = self.profile.counts
        for _ in range(counts.bugs):
            scenario = _weighted_choice(self.rng, BUG_SCENARIO_WEIGHTS)
            role = self._bug_role()
            if scenario == "ignored_return":
                construct = snippets.make_bug_ignored_return(
                    self.pool, self.rng, role, coverity_findable=self.rng.random() < 0.5
                )
            elif scenario == "overwritten_def":
                construct = snippets.make_bug_overwritten_def(self.pool, self.rng, role)
            elif scenario == "overwritten_arg":
                flavor = "overwrite" if self.rng.random() < 0.7 else "unused"
                construct = snippets.make_bug_overwritten_arg(self.pool, self.rng, role, flavor)
            else:
                construct = snippets.make_bug_field_def(self.pool, self.rng, role)
            component = _weighted_choice(self.rng, COMPONENT_WEIGHTS)
            severity = _weighted_choice(self.rng, SEVERITY_WEIGHTS)
            # Developers label bugs by their consequence, which follows
            # the scenario's shape: clobbered fields are semantic bugs
            # (Fig. 6b), and a clobbered local computation occasionally
            # is too (Fig. 1a); discarded statuses and ignored arguments
            # are missing checks.  The resulting mix lands on Table 3's
            # ~134:20 split.
            if scenario == "field_def" and self.rng.random() < 0.7:
                bug_type = "semantic"
            elif scenario == "overwritten_def" and self.rng.random() < 0.1:
                bug_type = "semantic"
            else:
                bug_type = "missing_check"
            age = _sample_age(self.rng)
            assert construct.truth is not None
            construct.truth = GroundTruthEntry(
                category=construct.truth.category,
                file="",
                function=construct.truth.function,
                var=construct.truth.var,
                is_bug=True,
                expected_cross_scope=True,
                expected_pruner=None,
                bug_type=bug_type,
                component=component,
                severity=severity,
                introduced_day=self.profile.detection_day - age,
            )
            domain = component if component in self.base_profile.domains else None
            self._plan(construct, age=age, domain=domain)

    def _plan_semantic(self) -> None:
        """Semantic-rule plants (use-after-free / resource-leak) with
        ground-truth labels, plus benign look-alikes the packs must not
        report.  Zero counts make zero RNG draws, so the published
        profiles (which plant none) generate byte-identical corpora."""
        counts = self.profile.counts
        for _ in range(counts.uaf_bugs):
            construct = snippets.make_bug_use_after_free(
                self.pool, self.rng, self._bug_role()
            )
            self._finish_semantic_bug(construct, "use_after_free")
        for _ in range(counts.uaf_benign):
            self._plan(snippets.make_benign_use_after_free(self.pool, self.rng))
        for _ in range(counts.leak_bugs):
            construct = snippets.make_bug_resource_leak(
                self.pool, self.rng, self._bug_role()
            )
            self._finish_semantic_bug(construct, "resource_leak")
        for _ in range(counts.leak_benign):
            self._plan(snippets.make_benign_resource_leak(self.pool, self.rng))

    def _finish_semantic_bug(self, construct: Construct, bug_type: str) -> None:
        component = _weighted_choice(self.rng, COMPONENT_WEIGHTS)
        severity = _weighted_choice(self.rng, SEVERITY_WEIGHTS)
        age = _sample_age(self.rng)
        assert construct.truth is not None
        construct.truth = GroundTruthEntry(
            category=construct.truth.category,
            file="",
            function=construct.truth.function,
            var=construct.truth.var,
            is_bug=True,
            expected_cross_scope=True,
            expected_pruner=None,
            bug_type=bug_type,
            component=component,
            severity=severity,
            introduced_day=self.profile.detection_day - age,
        )
        domain = component if component in self.base_profile.domains else None
        self._plan(construct, age=age, domain=domain)

    def _plan_benign(self) -> None:
        counts = self.profile.counts
        for _ in range(counts.config_dep):
            self._plan(snippets.make_config_dep(self.pool, self.rng, self.pool.macro()))
        for _ in range(counts.cursor):
            self._plan(snippets.make_cursor(self.pool, self.rng))
        for index in range(counts.hints):
            # Mostly explicit attributes (which every tool honours); a
            # minority of comment markers and hinted parameters.
            slot = index % 7
            if slot == 6:
                self._plan(snippets.make_hint_param(self.pool, self.rng))
            elif slot == 5:
                self._plan(snippets.make_hint(self.pool, self.rng, "comment"))
            else:
                self._plan(snippets.make_hint(self.pool, self.rng, "attribute"))
        self._plan_peers(counts.peer_sites)
        for index in range(counts.fp_minor):
            if self.rng.random() < 0.7:
                construct = snippets.make_fp_minor(self.pool, self.rng, "owner", "infallible_return")
            else:
                role = "newcomer" if self.rng.random() < 0.3 else "veteran"
                flavor = "debug" if self.rng.random() < 0.6 else "infallible_return"
                construct = snippets.make_fp_minor(self.pool, self.rng, role, flavor)
            self._plan(construct)
        newcomer_fraction = self.base_profile.same_author_newcomer_fraction
        for index in range(counts.same_author):
            # Dead stores and same-author ignored returns dominate; flow-
            # sensitive overwrites (which Infer/Coverity also see) are a
            # minority, keeping those tools' report volumes plausible.
            flavor = ("dead_store", "ignored", "dead_store", "ignored", "overwritten")[index % 5]
            late = self.rng.random() < newcomer_fraction
            self._plan(snippets.make_same_author(self.pool, self.rng, flavor, late=late))
        for _ in range(counts.pruned_bug_config):
            self._plan(
                snippets.make_pruned_bug_config(self.pool, self.rng, self.pool.macro()),
                age=_sample_age(self.rng),
            )
        for _ in range(counts.pruned_bug_peer):
            if not self.peer_callees:
                self._plan_peers(_MIN_PEER_SITES)
            callee = self.rng.choice(self.peer_callees)
            self._plan(
                snippets.make_pruned_bug_peer(self.pool, self.rng, callee),
                age=_sample_age(self.rng),
            )
        for _ in range(counts.filler):
            self._plan(snippets.make_filler(self.pool, self.rng))

    def _plan_peers(self, total_sites: int) -> None:
        """Create logging callees and one ignoring worker per site.  Every
        callee gets at least _MIN_PEER_SITES sites so the >10-occurrence
        threshold holds even at small corpus scales."""
        if total_sites <= 0:
            return
        n_callees = max(1, total_sites // 18)
        sites_per_callee = max(_MIN_PEER_SITES, -(-total_sites // n_callees))
        for _ in range(n_callees):
            support = snippets.make_peer_callee(self.pool)
            callee_name = support.lines[0].split()[1].split("(")[0]
            self.peer_callees.append(callee_name)
            self.support_functions.append(support)
        remaining = max(total_sites, _MIN_PEER_SITES * n_callees)
        callee_cycle = 0
        while remaining > 0:
            callee = self.peer_callees[callee_cycle % len(self.peer_callees)]
            # Keep per-callee counts balanced by cycling.
            self._plan(snippets.make_peer_site(self.pool, self.rng, callee))
            callee_cycle += 1
            remaining -= 1

    # -- placement ---------------------------------------------------------

    def _resolve_intro_author(self, construct: Construct, owner: Author) -> Author:
        if construct.intro_role == "newcomer":
            return self.rng.choice(self.newcomers)
        if construct.intro_role == "veteran":
            return self.rng.choice(self.veterans)
        return owner

    def _build_file_plans(self) -> list[FilePlan]:
        self.rng.shuffle(self.planned)
        plans: list[FilePlan] = []
        per_file = 5
        for start in range(0, len(self.planned), per_file):
            group = self.planned[start : start + per_file]
            domain = group[0].domain
            if domain not in self.base_profile.domains:
                domain = self.rng.choice(self.base_profile.domains)
            path = self.pool.file_name(domain)
            owner = self.rng.choice(self.owners)
            intro_days = [
                self.profile.detection_day - planned.age for planned in group
            ]
            creation_day = max(0, min(intro_days) - self.rng.randrange(100, 900))
            plan = FilePlan(path=path, owner=owner, creation_day=creation_day)
            for planned, intro_day in zip(group, intro_days):
                construct = planned.construct
                intro_author = self._resolve_intro_author(construct, owner)
                plan.add_construct(construct, intro_author, intro_day)
                if construct.truth is not None:
                    entry = construct.truth
                    self.ledger.add(
                        GroundTruthEntry(
                            category=entry.category,
                            file=path,
                            function=entry.function,
                            var=entry.var,
                            is_bug=entry.is_bug,
                            expected_cross_scope=entry.expected_cross_scope,
                            expected_pruner=entry.expected_pruner,
                            bug_type=entry.bug_type,
                            component=entry.component,
                            severity=entry.severity,
                            introduced_day=(
                                entry.introduced_day
                                if entry.introduced_day >= 0
                                else intro_day
                            ),
                        )
                    )
            plans.append(plan)
        plans.extend(self._build_support_plans())
        return plans

    def _build_support_plans(self) -> list[FilePlan]:
        plans: list[FilePlan] = []
        regular = [s for s in self.support_functions if s.author_role == "support"]
        logging = [s for s in self.support_functions if s.author_role == "logging"]
        per_file = 12
        for index in range(0, len(regular), per_file):
            group = regular[index : index + per_file]
            author = self.support_authors[(index // per_file) % len(self.support_authors)]
            path = f"lib/support_{index // per_file}.c"
            plan = FilePlan(path=path, owner=author, creation_day=self.rng.randrange(0, 400))
            for support_index, support in enumerate(group):
                construct = Construct(
                    category="support",
                    function=f"support_{index}_{support_index}",
                    var="",
                    prelude=list(support.prelude),
                    lines=[_as_tagged(line) for line in support.lines],
                )
                plan.add_construct(construct, author, plan.creation_day)
            plans.append(plan)
        if logging:
            plan = FilePlan(
                path="lib/logging.c",
                owner=self.logging_author,
                creation_day=self.rng.randrange(0, 400),
            )
            for support_index, support in enumerate(logging):
                construct = Construct(
                    category="support",
                    function=f"logging_{support_index}",
                    var="",
                    prelude=list(support.prelude),
                    lines=[_as_tagged(line) for line in support.lines],
                )
                plan.add_construct(construct, self.logging_author, plan.creation_day)
            plans.append(plan)
        return plans

    # -- driver ------------------------------------------------------------

    def generate(self) -> SyntheticApp:
        self._plan_bugs()
        self._plan_semantic()
        self._plan_benign()
        plans = self._build_file_plans()
        extra: dict[str, tuple[Author, int, str]] = {}
        if self.base_profile.is_kernel:
            extra["include/kbuild.c"] = (
                self.owners[0],
                0,
                '#define KBUILD_MODNAME "core"\nint kbuild_marker_present = 1;\n',
            )
        repo = assemble_repository(self.base_profile.name, plans, self.rng, extra)
        # A final no-op-ish commit stamps the detection day so blame ages
        # and DOK history cut off where the paper's analysis ran.
        repo.commit(
            self.owners[0],
            "release snapshot",
            {"RELEASE": f"{self.base_profile.display} {self.base_profile.version}\n"},
            day=self.profile.detection_day,
        )
        return SyntheticApp(
            profile=self.base_profile,
            scale=self.scale,
            repo=repo,
            ledger=self.ledger,
        )


def _as_tagged(line: str):
    from repro.corpus.assembly import TaggedLine

    return TaggedLine(text=line, round=0)


def generate_app(name: str, scale: float = 1.0, seed: int = 7) -> SyntheticApp:
    """Generate one application corpus by profile name."""
    if name not in PROFILES:
        raise CorpusError(f"unknown application profile {name!r}")
    return _AppGenerator(PROFILES[name], scale, seed).generate()


def generate_all(scale: float = 1.0, seed: int = 7) -> dict[str, SyntheticApp]:
    """Generate every evaluated application at the given scale."""
    return {name: generate_app(name, scale=scale, seed=seed) for name in PROFILES}


def generate_rules_corpus(scale: float = 1.0, seed: int = 7) -> SyntheticApp:
    """The semantic-rules evaluation corpus: planted use-after-free and
    resource-leak bugs (plus benign look-alikes) with ground-truth
    labels.  Lives outside ``PROFILES`` so the paper-table corpora stay
    untouched; ``repro.eval`` scores per-rule precision/recall on it."""
    from repro.corpus.profiles import RULES_EVAL_PROFILE

    return _AppGenerator(RULES_EVAL_PROFILE, scale, seed).generate()
