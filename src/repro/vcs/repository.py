"""The MiniGit repository: a linear commit history with git-log queries.

Provides exactly the metadata ValueCheck pulls from git:

* per-file commit logs (who delivered to a file, and when),
* file creation commits (first authorship for the DOK FA factor),
* snapshots at arbitrary revisions (the §3.1 preliminary study runs the
  analysis on the 2019 and 2021 snapshots of each project),
* JSON (de)serialisation so corpora can live on disk next to their
  sources.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import VcsError
from repro.vcs.objects import Author, Commit


@dataclass(frozen=True)
class FileStats:
    """The DOK model inputs for (author, file) — paper §6."""

    first_authorship: bool  # FA: author created the file
    deliveries: int  # DL: commits by this author touching the file
    acceptances: int  # AC: commits touching the file by other authors


class Repository:
    """An append-only, linear commit history."""

    def __init__(self, name: str = "repo"):
        self.name = name
        self.commits: list[Commit] = []
        self._log_cache: dict[str, list[int]] | None = None

    # -- writing ---------------------------------------------------------

    def commit(
        self,
        author: Author,
        message: str,
        changes: dict[str, str | None],
        day: int,
    ) -> Commit:
        """Apply ``changes`` (path → new content, or None to delete) on top
        of HEAD and append the resulting commit."""
        if self.commits and day < self.commits[-1].day:
            raise VcsError(
                f"non-monotonic commit day {day} (HEAD is at {self.commits[-1].day})"
            )
        snapshot = dict(self.commits[-1].snapshot) if self.commits else {}
        touched: list[str] = []
        for path, content in changes.items():
            if content is None:
                if path in snapshot:
                    del snapshot[path]
                    touched.append(path)
            elif snapshot.get(path) != content:
                snapshot[path] = content
                touched.append(path)
        parent_id = self.commits[-1].commit_id if self.commits else None
        digest = hashlib.sha1(
            f"{parent_id}|{author.name}|{day}|{message}|{sorted(touched)}".encode()
        ).hexdigest()[:12]
        commit = Commit(
            commit_id=digest,
            author=author,
            day=day,
            message=message,
            snapshot=snapshot,
            touched=tuple(sorted(touched)),
            parent_id=parent_id,
        )
        self.commits.append(commit)
        self._log_cache = None
        return commit

    # -- reading -----------------------------------------------------------

    @property
    def head(self) -> Commit:
        if not self.commits:
            raise VcsError("empty repository")
        return self.commits[-1]

    def commit_by_id(self, commit_id: str) -> Commit:
        for commit in self.commits:
            if commit.commit_id == commit_id:
                return commit
        raise VcsError(f"unknown commit {commit_id}")

    def rev_index(self, rev: int | str | None) -> int:
        """Normalise a revision (index, negative index, commit id, or None
        for HEAD) to a commit index."""
        if rev is None:
            rev = -1
        if isinstance(rev, str):
            for index, commit in enumerate(self.commits):
                if commit.commit_id == rev:
                    return index
            raise VcsError(f"unknown commit {rev}")
        if rev < 0:
            rev += len(self.commits)
        if not 0 <= rev < len(self.commits):
            raise VcsError(f"revision {rev} out of range")
        return rev

    def snapshot_at(self, rev: int | str | None = None) -> dict[str, str]:
        return dict(self.commits[self.rev_index(rev)].snapshot)

    def file_at(self, path: str, rev: int | str | None = None) -> str:
        snapshot = self.commits[self.rev_index(rev)].snapshot
        if path not in snapshot:
            raise VcsError(f"{path} not present at revision {rev}")
        return snapshot[path]

    def files(self, rev: int | str | None = None) -> list[str]:
        return sorted(self.commits[self.rev_index(rev)].snapshot)

    def rev_at_day(self, day: int) -> int:
        """Index of the last commit on or before ``day``."""
        chosen = -1
        for index, commit in enumerate(self.commits):
            if commit.day <= day:
                chosen = index
            else:
                break
        if chosen < 0:
            raise VcsError(f"no commits on or before day {day}")
        return chosen

    def snapshot_at_day(self, day: int) -> dict[str, str]:
        """The last snapshot with commit day ≤ ``day`` (for the 2019/2021
        snapshot differential of §3.1)."""
        chosen: Commit | None = None
        for commit in self.commits:
            if commit.day <= day:
                chosen = commit
            else:
                break
        if chosen is None:
            raise VcsError(f"no commits on or before day {day}")
        return dict(chosen.snapshot)

    # -- logs and stats --------------------------------------------------

    def _file_log_indices(self, path: str) -> list[int]:
        if self._log_cache is None:
            cache: dict[str, list[int]] = {}
            for index, commit in enumerate(self.commits):
                for touched in commit.touched:
                    cache.setdefault(touched, []).append(index)
            self._log_cache = cache
        return self._log_cache.get(path, [])

    def file_log(self, path: str, until_rev: int | str | None = None) -> list[Commit]:
        """Commits that changed ``path``, oldest first."""
        limit = self.rev_index(until_rev) if until_rev is not None else len(self.commits) - 1
        return [self.commits[i] for i in self._file_log_indices(path) if i <= limit]

    def creating_commit(self, path: str) -> Commit:
        log = self.file_log(path)
        if not log:
            raise VcsError(f"{path} never committed")
        return log[0]

    def file_stats(self, path: str, author: Author, until_rev: int | str | None = None) -> FileStats:
        """FA/DL/AC for (author, file) — the DOK model inputs."""
        log = self.file_log(path, until_rev)
        if not log:
            return FileStats(first_authorship=False, deliveries=0, acceptances=0)
        deliveries = sum(1 for commit in log if commit.author == author)
        acceptances = len(log) - deliveries
        return FileStats(
            first_authorship=log[0].author == author,
            deliveries=deliveries,
            acceptances=acceptances,
        )

    def authors(self) -> list[Author]:
        seen: dict[str, Author] = {}
        for commit in self.commits:
            seen.setdefault(commit.author.name, commit.author)
        return [seen[name] for name in sorted(seen)]

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name, "commits": [commit.to_dict() for commit in self.commits]}

    @classmethod
    def from_dict(cls, data: dict) -> "Repository":
        repo = cls(name=data.get("name", "repo"))
        repo.commits = [Commit.from_dict(entry) for entry in data["commits"]]
        return repo

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "Repository":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def checkout_to(self, directory: str | Path, rev: int | str | None = None) -> None:
        """Materialise a snapshot onto disk (used by examples/CLI)."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        for path, content in self.snapshot_at(rev).items():
            target = base / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
