"""MiniGit — the version-control substrate.

The real ValueCheck reads git metadata through GitPython: line-level blame
for the authorship lookup (§4.2) and per-file commit logs for the DOK
familiarity factors (§6).  MiniGit supplies the same two queries over
synthetic histories:

* :func:`repro.vcs.blame.blame` — line → (author, commit, day), computed
  by carrying attributions across Myers diffs of consecutive versions;
* :meth:`repro.vcs.repository.Repository.file_stats` — the FA/DL/AC
  counters the DOK model consumes.

Histories are linear (the corpus generator synthesises them); commits
store full file snapshots, which is simple and plenty fast at our scale.
"""

from repro.vcs.diff import OpCode, myers_diff
from repro.vcs.objects import Author, Commit, day_to_iso, iso_to_day
from repro.vcs.repository import FileStats, Repository
from repro.vcs.blame import BlameIndex, LineBlame, blame

__all__ = [
    "BlameIndex",
    "OpCode",
    "myers_diff",
    "Author",
    "Commit",
    "day_to_iso",
    "iso_to_day",
    "FileStats",
    "Repository",
    "LineBlame",
    "blame",
]
