"""Authors, commits, and date helpers for MiniGit.

Timestamps are integer *day numbers* (days since 2000-01-01).  Day
arithmetic is all the evaluation needs (Figure 7c buckets bugs by "days
before detected"); :func:`day_to_iso`/:func:`iso_to_day` convert to
calendar dates for reports.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

_EPOCH = datetime.date(2000, 1, 1)


def day_to_iso(day: int) -> str:
    """Day number → 'YYYY-MM-DD'."""
    return (_EPOCH + datetime.timedelta(days=day)).isoformat()


def iso_to_day(date_string: str) -> int:
    """'YYYY-MM-DD' → day number."""
    return (datetime.date.fromisoformat(date_string) - _EPOCH).days


@dataclass(frozen=True)
class Author:
    """A committer identity."""

    name: str
    email: str = ""

    def __str__(self) -> str:
        return self.name

    def to_dict(self) -> dict:
        return {"name": self.name, "email": self.email}

    @classmethod
    def from_dict(cls, data: dict) -> "Author":
        return cls(name=data["name"], email=data.get("email", ""))


@dataclass
class Commit:
    """One commit: author, day, message and the *full* post-commit snapshot
    (dict of path → text).  ``touched`` lists paths whose content changed
    relative to the parent commit."""

    commit_id: str
    author: Author
    day: int
    message: str
    snapshot: dict[str, str] = field(default_factory=dict)
    touched: tuple[str, ...] = ()
    parent_id: str | None = None

    @property
    def date(self) -> str:
        return day_to_iso(self.day)

    def is_bugfix(self) -> bool:
        """Heuristic the §3.1 preliminary study uses on commit messages."""
        lowered = self.message.lower()
        return any(marker in lowered for marker in ("fix", "bug", "cve", "fault", "corrupt"))

    def to_dict(self) -> dict:
        return {
            "commit_id": self.commit_id,
            "author": self.author.to_dict(),
            "day": self.day,
            "message": self.message,
            "snapshot": self.snapshot,
            "touched": list(self.touched),
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Commit":
        return cls(
            commit_id=data["commit_id"],
            author=Author.from_dict(data["author"]),
            day=data["day"],
            message=data["message"],
            snapshot=dict(data["snapshot"]),
            touched=tuple(data.get("touched", ())),
            parent_id=data.get("parent_id"),
        )
