"""Myers O(ND) line diff.

Implemented from the greedy algorithm in Myers' "An O(ND) Difference
Algorithm and Its Variations" (1986): find the length D of the shortest
edit script by walking diagonals, keeping a trace of furthest-reaching
paths, then backtrack to recover the script.  Output is difflib-style
opcodes so callers (blame) can walk aligned regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class OpCode:
    """One edit region: ``tag`` ∈ {'equal', 'insert', 'delete', 'replace'},
    covering ``a[i1:i2]`` and ``b[j1:j2]``."""

    tag: str
    i1: int
    i2: int
    j1: int
    j2: int


def _shortest_edit_trace(a: Sequence[str], b: Sequence[str]) -> list[dict[int, int]]:
    """Forward phase: return the V-array trace per edit distance D."""
    n, m = len(a), len(b)
    v: dict[int, int] = {1: 0}
    trace: list[dict[int, int]] = []
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)  # move down (insert from b)
            else:
                x = v.get(k - 1, 0) + 1  # move right (delete from a)
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                return trace  # trace[i] = V before round i; len = D + 1
    return trace  # pragma: no cover - loop always returns


def _backtrack(trace: list[dict[int, int]], a: Sequence[str], b: Sequence[str]) -> list[tuple[int, int, int, int]]:
    """Recover the path as (prev_x, prev_y, x, y) single-step moves,
    earliest first.  ``trace[d]`` is the V-array *before* round d (i.e.
    the furthest-reaching endpoints of all (d-1)-paths), which is exactly
    the state needed to step a d-path back to its (d-1)-predecessor."""
    moves: list[tuple[int, int, int, int]] = []
    x, y = len(a), len(b)
    for d in range(len(trace) - 1, -1, -1):
        v = trace[d]
        k = x - y
        if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v.get(prev_k, 0)
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:  # snake (equal run)
            moves.append((x - 1, y - 1, x, y))
            x, y = x - 1, y - 1
        if d > 0:
            moves.append((prev_x, prev_y, x, y))
        x, y = prev_x, prev_y
    moves.reverse()
    return moves


def myers_diff(a: Sequence[str], b: Sequence[str]) -> list[OpCode]:
    """Compute opcodes transforming ``a`` into ``b``.

    Adjacent delete+insert runs are merged into 'replace' regions,
    matching difflib's get_opcodes contract.
    """
    if not a and not b:
        return []
    if not a:
        return [OpCode("insert", 0, 0, 0, len(b))]
    if not b:
        return [OpCode("delete", 0, len(a), 0, 0)]

    trace = _shortest_edit_trace(a, b)
    moves = _backtrack(trace, a, b)

    # Convert moves into raw single-step ops.
    raw: list[tuple[str, int, int]] = []  # (tag, a_index, b_index)
    for prev_x, prev_y, x, y in moves:
        if x - prev_x == 1 and y - prev_y == 1:
            raw.append(("equal", prev_x, prev_y))
        elif x - prev_x == 1:
            raw.append(("delete", prev_x, prev_y))
        else:
            raw.append(("insert", prev_x, prev_y))

    # Group into regions.
    opcodes: list[OpCode] = []
    index = 0
    ai = bi = 0
    while index < len(raw):
        tag = raw[index][0]
        start = index
        while index < len(raw) and raw[index][0] == tag:
            index += 1
        count = index - start
        if tag == "equal":
            opcodes.append(OpCode("equal", ai, ai + count, bi, bi + count))
            ai += count
            bi += count
        elif tag == "delete":
            # Peek: a delete run followed by an insert run is a replace.
            if index < len(raw) and raw[index][0] == "insert":
                insert_start = index
                while index < len(raw) and raw[index][0] == "insert":
                    index += 1
                insert_count = index - insert_start
                opcodes.append(OpCode("replace", ai, ai + count, bi, bi + insert_count))
                ai += count
                bi += insert_count
            else:
                opcodes.append(OpCode("delete", ai, ai + count, bi, bi))
                ai += count
        else:  # insert
            if index < len(raw) and raw[index][0] == "delete":
                delete_start = index
                while index < len(raw) and raw[index][0] == "delete":
                    index += 1
                delete_count = index - delete_start
                opcodes.append(OpCode("replace", ai, ai + delete_count, bi, bi + count))
                ai += delete_count
                bi += count
            else:
                opcodes.append(OpCode("insert", ai, ai, bi, bi + count))
                bi += count
    return opcodes


def apply_opcodes(a: Sequence[str], b: Sequence[str], opcodes: list[OpCode]) -> list[str]:
    """Replay ``opcodes`` against ``a`` (sanity utility used in tests)."""
    out: list[str] = []
    for op in opcodes:
        if op.tag == "equal":
            out.extend(a[op.i1 : op.i2])
        elif op.tag in ("insert", "replace"):
            out.extend(b[op.j1 : op.j2])
    return out
