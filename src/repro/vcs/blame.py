"""Line-level blame, computed by carrying attributions across diffs.

The first version of a file attributes every line to its creating commit;
each subsequent commit's diff preserves attributions over 'equal' regions
and assigns inserted/replaced lines to that commit.  This is how git blame
behaves for linear histories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VcsError
from repro.vcs.diff import myers_diff
from repro.vcs.objects import Author, Commit
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class LineBlame:
    """Attribution of one line (1-based ``line``)."""

    line: int
    author: Author
    commit_id: str
    day: int


class BlameIndex:
    """Blame for every file of a repository at a given revision, with a
    cache — authorship lookup hits the same files repeatedly."""

    def __init__(self, repo: Repository, rev: int | str | None = None):
        self.repo = repo
        self.rev = repo.rev_index(rev)
        self._cache: dict[str, list[LineBlame]] = {}

    def file_blame(self, path: str) -> list[LineBlame]:
        if path not in self._cache:
            self._cache[path] = blame(self.repo, path, self.rev)
        return self._cache[path]

    def author_of(self, path: str, line: int) -> Author | None:
        """Author of the 1-based ``line`` of ``path`` (None if out of range)."""
        entries = self.file_blame(path)
        if 1 <= line <= len(entries):
            return entries[line - 1].author
        return None

    def line_info(self, path: str, line: int) -> LineBlame | None:
        entries = self.file_blame(path)
        if 1 <= line <= len(entries):
            return entries[line - 1]
        return None


def blame(repo: Repository, path: str, rev: int | str | None = None) -> list[LineBlame]:
    """Blame ``path`` at ``rev`` (default HEAD)."""
    limit = repo.rev_index(rev)
    versions: list[tuple[Commit, str | None]] = []
    for commit in repo.commits[: limit + 1]:
        if path in commit.touched:
            versions.append((commit, commit.snapshot.get(path)))  # None = deleted
    if not versions:
        raise VcsError(f"{path} has no history at revision {rev}")

    first_commit, first_text = versions[0]
    # Convention: same as str.split("\n") — an empty file still has one
    # (empty) line; only a *deleted* file has zero.
    current_lines = first_text.split("\n") if first_text is not None else []
    attributions: list[tuple[Author, str, int]] = [
        (first_commit.author, first_commit.commit_id, first_commit.day) for _ in current_lines
    ]

    for commit, text in versions[1:]:
        new_lines = text.split("\n") if text is not None else []
        new_attr: list[tuple[Author, str, int]] = []
        for op in myers_diff(current_lines, new_lines):
            if op.tag == "equal":
                new_attr.extend(attributions[op.i1 : op.i2])
            elif op.tag in ("insert", "replace"):
                new_attr.extend(
                    (commit.author, commit.commit_id, commit.day) for _ in range(op.j2 - op.j1)
                )
            # 'delete': nothing carried over
        current_lines = new_lines
        attributions = new_attr

    return [
        LineBlame(line=index + 1, author=author, commit_id=commit_id, day=day)
        for index, (author, commit_id, day) in enumerate(attributions)
    ]
