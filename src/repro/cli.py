"""Command-line interface.

Subcommands::

    valuecheck analyze <dir> [--repo repo.json] [--config MACRO ...]
        Analyze a directory of MiniC sources.  With --repo (a MiniGit
        JSON file) the full cross-scope + DOK pipeline runs; without it
        only detection + pruning (no authorship) is possible.

    valuecheck generate-corpus <app> [--scale S] [--seed N] --out DIR
        Materialise one synthetic application: sources + repo.json.

    valuecheck evaluate [--scale S] [--seed N] [--out DIR]
        Run every table/figure experiment and write the result bundle
        (the equivalent of the artifact's run.sh → result/).

    valuecheck stats <run_stats.jsonl>
        Summarise runs recorded with ``analyze --stats-out``: per-stage
        wall-time and per-pruner kill counts per run.

    valuecheck snapshot <dir> --store findings.db [--rev LABEL]
        Analyze and record the findings in the persistent store
        (docs/STORE.md) as the new baseline snapshot.

    valuecheck gate <dir> --store findings.db [--baseline FILE]
        Analyze and compare against the last snapshot: exits non-zero
        only on new (or reopened) findings not accepted in the
        ``.valuecheck-baseline.json`` baseline file.

    valuecheck triage <store> [--accept FP --justification ... --author ...]
        Inspect the store's lifecycle state and record accept decisions
        into the baseline file.

    valuecheck serve [--port P] [--stdio] [--workers N] ...
        Run the warm-state analysis daemon (docs/SERVICE.md): projects
        stay parsed between requests and ``analyze_diff`` re-analyses
        only changed modules.

    valuecheck route [--port P] [--workers N] [--probe-interval S] ...
        Run the sharded front end (docs/OPERATIONS.md): consistent-hash
        project shards across N worker processes, health-check and
        respawn them, migrate sessions off dead workers.

    valuecheck client <request-type> [--port P] [--params JSON] [--trace-id T]
        Send one request to a running daemon and print the response.

    valuecheck profile <dir> [--runs N] [--interval S] [--out FILE]
        Run the analysis under the sampling profiler and print per-phase
        CPU attribution; --out writes flamegraph folded stacks.

    valuecheck events [--follow] [--since N] [--kind K]
        Stream a running daemon's lifecycle event journal.

    valuecheck top [--interval S] [--iterations N]
        Live dashboard over a running daemon's health/stats.
"""

from __future__ import annotations

import argparse
import csv as csv_module
import json
import sys
from pathlib import Path

from repro import obs
from repro.core.project import Project
from repro.core.valuecheck import ValueCheck, ValueCheckConfig
from repro.corpus.generator import generate_app
from repro.corpus.profiles import PROFILES
from repro.rules import UnknownRuleError, normalize_rules
from repro.vcs.repository import Repository


def _parse_rules(raw: str | None) -> tuple[str, ...] | None:
    """``--rules a,b`` → validated name tuple (None passes through).
    Raises :class:`UnknownRuleError` naming the registered packs."""
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    return normalize_rules(names)


def _baseline_keys(path: str) -> set[tuple[str, str, str, str]]:
    """Finding keys from an earlier report CSV.  Line numbers shift as
    files evolve, so the key is (file, function, variable, kind)."""
    keys: set[tuple[str, str, str, str]] = set()
    with open(path, newline="") as handle:
        for row in csv_module.DictReader(handle):
            keys.add(
                (
                    row.get("file", ""),
                    row.get("function", ""),
                    row.get("variable", ""),
                    row.get("kind", ""),
                )
            )
    return keys


def _finding_key(finding) -> tuple[str, str, str, str]:
    candidate = finding.candidate
    return (candidate.file, candidate.function, candidate.var, candidate.kind.value)


def _cmd_analyze(args: argparse.Namespace) -> int:
    source_dir = Path(args.directory)
    if not source_dir.is_dir():
        print(f"error: {source_dir} is not a directory", file=sys.stderr)
        return 2
    repo = Repository.load(args.repo) if args.repo else None
    sources = {
        str(path.relative_to(source_dir)): path.read_text()
        for path in sorted(source_dir.rglob("*.c"))
    }
    if not sources:
        print("error: no .c files found", file=sys.stderr)
        return 2
    try:
        rules = _parse_rules(getattr(args, "rules", None))
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # One ambient telemetry covers parsing AND analysis, so the exported
    # trace is a single parse→rank span tree.
    telemetry = obs.Telemetry.fresh()
    profiler = None
    if args.profile_out:
        profiler = obs.SamplingProfiler(
            interval=args.profile_interval,
            phase_resolver=telemetry.tracer.active_name,
        ).start()
    try:
        with obs.use(telemetry):
            project = Project.from_sources(
                sources, name=source_dir.name, repo=repo, build_config=set(args.config or ())
            )
            config = ValueCheckConfig(
                use_authorship=repo is not None,
                executor=args.executor,
                workers=args.workers,
                module_cache=not args.no_module_cache,
                rules=rules,
            )
            report = ValueCheck(config).analyze(project)
    finally:
        if profiler is not None:
            profiler.stop()
    print(report.summary())
    print()
    reported = report.reported()
    if args.baseline:
        known = _baseline_keys(args.baseline)
        before = len(reported)
        reported = [finding for finding in reported if _finding_key(finding) not in known]
        print(f"baseline suppressed {before - len(reported)} known finding(s); {len(reported)} new")
        print()
    for finding in reported[: args.top]:
        candidate = finding.candidate
        familiarity = (
            f"  familiarity={finding.familiarity:.2f}" if finding.familiarity is not None else ""
        )
        print(
            f"#{finding.rank:<3} {candidate.file}:{candidate.line} "
            f"[{candidate.kind.value}] {candidate.function}/{candidate.var}{familiarity}"
        )
    if args.explain is not None:
        fragment = args.explain if args.explain != "" else None
        print()
        print(report.explain(fragment), end="")
    if args.explain_json:
        Path(args.explain_json).write_text(report.explain_jsonl())
        print(f"\nwrote provenance JSONL to {args.explain_json}")
    if args.csv:
        report.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    if args.sarif:
        report.to_sarif(args.sarif, include_pruned=args.sarif_include_pruned)
        print(f"wrote SARIF 2.1.0 log to {args.sarif}")
    if args.trace:
        Path(args.trace).write_text(json.dumps(telemetry.tracer.to_chrome(), indent=1) + "\n")
        print(f"wrote Chrome trace to {args.trace} (load in chrome://tracing or ui.perfetto.dev)")
    if args.trace_tree:
        print()
        print(telemetry.tracer.render_tree())
    if profiler is not None:
        Path(args.profile_out).write_text(profiler.render_folded())
        print(
            f"wrote folded stacks to {args.profile_out} "
            f"({profiler.stats()['samples']} samples; feed to flamegraph.pl/speedscope)"
        )
        print(profiler.render_phases(), end="")
    if args.stats_out:
        obs.write_jsonl(args.stats_out, report.stats_record())
        print(f"appended run record to {args.stats_out}")
    if args.prometheus:
        Path(args.prometheus).write_text(obs.to_prometheus(report.metrics))
        print(f"wrote Prometheus exposition to {args.prometheus}")
    if not report.converged:
        print("WARNING: Andersen solver did not converge on every module; "
              "findings may be incomplete", file=sys.stderr)
    return 0


def _project_and_report(args: argparse.Namespace):
    """Shared analyze step for the store subcommands; returns
    ``(project, report)`` or ``(None, exit_code)`` on input errors."""
    source_dir = Path(args.directory)
    if not source_dir.is_dir():
        print(f"error: {source_dir} is not a directory", file=sys.stderr)
        return None, 2
    repo = Repository.load(args.repo) if args.repo else None
    sources = {
        str(path.relative_to(source_dir)): path.read_text()
        for path in sorted(source_dir.rglob("*.c"))
    }
    if not sources:
        print("error: no .c files found", file=sys.stderr)
        return None, 2
    project = Project.from_sources(
        sources, name=source_dir.name, repo=repo, build_config=set(args.config or ())
    )
    try:
        rules = _parse_rules(getattr(args, "rules", None))
    except UnknownRuleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2
    config = ValueCheckConfig(use_authorship=repo is not None, rules=rules)
    return project, ValueCheck(config).analyze(project)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.store import FindingsStore, project_sources

    project, report = _project_and_report(args)
    if project is None:
        return report
    store = FindingsStore.open(args.store)
    rev = args.rev or f"snapshot-{len(store.snapshots()) + 1}"
    diff = store.record_snapshot(report.findings, project_sources(project), rev=rev)
    counts = diff.counts()
    stats = store.stats()
    print(f"recorded snapshot {rev!r} in {args.store}")
    print(
        f"  findings: {counts['new']} new, {counts['persistent']} persistent, "
        f"{counts['fixed']} fixed, {counts['reopened']} reopened"
    )
    print(
        f"  store: {stats['active']} active / {stats['entries']} tracked, "
        f"{stats['snapshots']} snapshot(s)"
    )
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from repro.core.sarif import write_sarif
    from repro.store import (
        BASELINE_FILENAME,
        BaselineFile,
        FindingsStore,
        diff_to_sarif,
        evaluate_gate,
        project_sources,
    )

    project, report = _project_and_report(args)
    if project is None:
        return report
    store = FindingsStore.open(args.store)
    try:
        diff = store.diff(
            report.findings,
            project_sources(project),
            rev="worktree",
            baseline_rev=args.baseline_rev,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline) if args.baseline else (
        Path(args.directory) / BASELINE_FILENAME
    )
    baseline = BaselineFile.load(baseline_path)
    result = evaluate_gate(diff, baseline)
    print(result.summary())
    if args.sarif:
        write_sarif(
            diff_to_sarif(diff, project=project.name, baseline=baseline), args.sarif
        )
        print(f"wrote SARIF 2.1.0 log to {args.sarif}")
    return result.exit_code


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.store import (
        BASELINE_FILENAME,
        BaselineEntry,
        BaselineFile,
        FindingsStore,
    )

    if not Path(args.store).exists():
        print(f"error: store {args.store} not found", file=sys.stderr)
        return 2
    store = FindingsStore.open(args.store)
    baseline_path = Path(args.baseline) if args.baseline else Path(BASELINE_FILENAME)
    baseline = BaselineFile.load(baseline_path)

    if args.accept:
        matches = store.find(args.accept)
        if not matches:
            # A finding the gate just reported as new is not stored yet;
            # a full fingerprint (as printed by `gate`) is accepted as-is
            # so the fail → review → accept loop needs no snapshot.
            if len(args.accept) == 32:
                baseline.add(
                    BaselineEntry(
                        fingerprint=args.accept,
                        justification=args.justification,
                        author=args.author,
                    )
                )
                baseline.save(baseline_path)
                print(f"accepted {args.accept[:12]} into {baseline_path}")
                return 0
            print(f"error: no stored finding matches {args.accept!r}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(
                f"error: {args.accept!r} is ambiguous "
                f"({len(matches)} matches); use more fingerprint digits",
                file=sys.stderr,
            )
            return 2
        row = matches[0]
        baseline.add(
            BaselineEntry(
                fingerprint=row.fingerprint,
                justification=args.justification,
                author=args.author,
                accepted_rev=row.last_seen,
                kind=row.kind,
                file=row.file,
                function=row.function,
                var=row.var,
            )
        )
        baseline.save(baseline_path)
        print(
            f"accepted {row.fingerprint[:12]} ({row.file} {row.function}/{row.var} "
            f"[{row.kind}]) into {baseline_path}"
        )
        return 0

    accepted = {entry.fingerprint for entry in baseline.entries}
    show = args.show
    rows = [
        row
        for row in sorted(
            store.entries().values(),
            key=lambda r: (r.status, r.file, r.function, r.var, r.fingerprint),
        )
        if show == "all" or row.status == show
    ]
    snapshots = store.snapshots()
    latest = snapshots[-1].rev if snapshots else "<none>"
    print(
        f"store {args.store}: {len(rows)} {show} finding(s), "
        f"latest snapshot {latest!r}, baseline {baseline_path} "
        f"({len(baseline)} accepted)"
    )
    for row in rows:
        mark = "accepted" if row.fingerprint in accepted else row.status
        print(
            f"  {row.fingerprint[:12]}  {row.file}:{row.line} "
            f"[{row.kind}] {row.function}/{row.var}  {mark}"
        )
    return 0


def _cmd_run_stats(args: argparse.Namespace) -> int:
    """Summarise JSONL run records produced by ``analyze --stats-out``."""
    path = Path(args.stats_file)
    if not path.exists():
        print(f"error: {path} not found", file=sys.stderr)
        return 2
    records = obs.read_jsonl(path)
    print(obs.render_stats_table(records), end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    app = generate_app(args.app, scale=args.scale, seed=args.seed)
    out = Path(args.out)
    app.repo.checkout_to(out / "src")
    app.repo.save(out / "repo.json")
    app.ledger.save(out / "ground_truth.json")
    print(
        f"generated {args.app} at scale {args.scale}: "
        f"{len(app.repo.files())} files, {len(app.repo.commits)} commits, "
        f"{len(app.ledger.entries)} planted constructs"
    )
    print(f"sources:      {out / 'src'}")
    print(f"history:      {out / 'repo.json'}")
    print(f"ground truth: {out / 'ground_truth.json'}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    """Score a report CSV against a corpus's ground truth."""
    from repro.corpus.ground_truth import GroundTruthLedger

    ledger = GroundTruthLedger.load(args.truth)
    reported: list[tuple[str, str, str]] = []
    with open(args.report, newline="") as handle:
        for row in csv_module.DictReader(handle):
            reported.append((row["file"], row["function"], row["variable"]))
    matched_bugs: set[tuple[str, str, str]] = set()
    false_positives = 0
    for key in reported:
        entry = ledger.lookup(*key)
        if entry is not None and entry.is_bug:
            matched_bugs.add(entry.join_key)
        else:
            false_positives += 1
    reportable = [
        entry for entry in ledger.bugs() if entry.expected_pruner is None
    ]
    precision = len(matched_bugs) / len(reported) if reported else 0.0
    recall = len(matched_bugs) / len(reportable) if reportable else 0.0
    print(f"report:            {args.report}")
    print(f"findings:          {len(reported)}")
    print(f"real bugs found:   {len(matched_bugs)} of {len(reportable)}")
    print(f"false positives:   {false_positives}")
    print(f"precision:         {precision:.1%}")
    print(f"recall:            {recall:.1%}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.corpus.ground_truth import GroundTruthLedger
    from repro.corpus.stats import collect_stats

    base = Path(args.directory)
    repo_path = base / "repo.json"
    if not repo_path.exists():
        print(f"error: {repo_path} not found", file=sys.stderr)
        return 2
    repo = Repository.load(repo_path)
    ledger = None
    truth_path = base / "ground_truth.json"
    if truth_path.exists():
        ledger = GroundTruthLedger.load(truth_path)
    print(collect_stats(repo, ledger=ledger).render())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.eval.runner import run_all

    run = run_all(scale=args.scale, seed=args.seed)
    print(run.render())
    if args.out:
        run.save(args.out)
        print(f"\nwrote result bundle to {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the pipeline under the sampling profiler and report where the
    CPU goes, per pipeline phase (innermost open span)."""
    if args.runs < 1:
        print("error: --runs must be at least 1", file=sys.stderr)
        return 2
    source_dir = Path(args.directory)
    if not source_dir.is_dir():
        print(f"error: {source_dir} is not a directory", file=sys.stderr)
        return 2
    repo = Repository.load(args.repo) if args.repo else None
    sources = {
        str(path.relative_to(source_dir)): path.read_text()
        for path in sorted(source_dir.rglob("*.c"))
    }
    if not sources:
        print("error: no .c files found", file=sys.stderr)
        return 2
    telemetry = obs.Telemetry.fresh()
    profiler = obs.SamplingProfiler(
        interval=args.interval, phase_resolver=telemetry.tracer.active_name
    )
    config = ValueCheckConfig(
        use_authorship=repo is not None,
        executor=args.executor,
        module_cache=False,  # cached runs sample nothing; profile real work
    )
    with obs.use(telemetry), profiler:
        for _ in range(args.runs):
            project = Project.from_sources(
                sources,
                name=source_dir.name,
                repo=repo,
                build_config=set(args.config or ()),
            )
            ValueCheck(config).analyze(project)
    stats = profiler.stats()
    print(
        f"profiled {args.runs} run(s): {stats['samples']} samples over "
        f"{stats['active_seconds']:.2f}s at {args.interval * 1e3:.1f}ms intervals"
    )
    print()
    print(profiler.render_phases(), end="")
    if args.out:
        Path(args.out).write_text(profiler.render_folded())
        print(f"\nwrote folded stacks to {args.out} (feed to flamegraph.pl/speedscope)")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    """Stream a running daemon's lifecycle event journal."""
    import time

    from repro.service import ServiceClient, ServiceError

    try:
        client = ServiceClient(host=args.host, port=args.port)
    except OSError as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    cursor = args.since
    # A router's merged cluster stream pages with per-source cursors
    # (seqs are per-journal); it returns them on every response and we
    # hand them straight back — `events --follow` is topology-transparent.
    cursors: dict | None = None
    polls = 0
    with client:
        while True:
            try:
                result = client.events(
                    since=cursor, limit=args.limit, kind=args.kind, cursors=cursors
                )
            except ServiceError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            if isinstance(result.get("cursors"), dict):
                cursors = result["cursors"]
            for event in result["events"]:
                cursor = max(cursor, event["seq"]) if cursors is None else cursor
                print(json.dumps(event, sort_keys=True))
            polls += 1
            if not args.follow:
                break
            if args.iterations is not None and polls >= args.iterations:
                break
            try:
                time.sleep(args.poll_interval)
            except KeyboardInterrupt:
                break
    return 0


def _sparkline(series: list, width: int = 24) -> str:
    """Unicode block sparkline of the last ``width`` samples, peak-scaled."""
    blocks = "▁▂▃▄▅▆▇█"
    tail = [max(float(value), 0.0) for value in series[-width:]]
    if not tail:
        return ""
    peak = max(tail)
    if peak <= 0:
        return blocks[0] * len(tail)
    return "".join(
        blocks[min(int(value / peak * (len(blocks) - 1) + 0.5), len(blocks) - 1)]
        for value in tail
    )


def _render_cluster_top(stats: dict) -> str:
    """The cluster mode of `valuecheck top`: per-shard rows + heatmaps
    from the router's scrape-loop time series."""
    health = stats.get("health") or {}
    timeseries = (stats.get("timeseries") or {}).get("sources", {})
    lines = [
        f"valuecheck cluster  status={health.get('status', '?')}  "
        f"workers={health.get('alive_workers', 0)}/{len(health.get('workers', ()))}  "
        f"sessions={stats.get('sessions_total', 0)}  "
        f"migrations={stats.get('migrations', 0)}  "
        f"uptime={health.get('uptime_seconds', 0.0):.1f}s",
        "",
        "router slo       status     p99        burn   window",
    ]
    for slo in health.get("slos", ()):
        p99 = slo.get("p99_seconds")
        lines.append(
            f"  {slo.get('name', '?'):<15}{slo.get('status', '?'):<9}"
            f"{(f'{p99 * 1e3:8.1f}ms' if p99 is not None else '       --'):>10}"
            f"{slo.get('burn_rate', 0.0):>8.2f}  {slo.get('window_count', 0)}"
        )
    lines.append("")
    lines.append("slot  gen  status        sess  queue  forwarded   req/s    burn")
    for worker in health.get("workers", ()):
        slot = worker.get("slot", "?")
        source = timeseries.get(f"worker-{slot}", {})
        rates = source.get("rates", {})
        lines.append(
            f"  {slot!s:<4}{worker.get('generation', 0):>3}  "
            f"{worker.get('status', '?'):<12}"
            f"{worker.get('sessions', 0) or 0:>6}"
            f"{worker.get('queue_depth', 0) or 0:>7}"
            f"{worker.get('requests_forwarded', 0):>11}"
            f"{rates.get('service.requests', 0.0):>8.2f}"
            f"{worker.get('burn_rate', 0.0):>8.2f}"
        )
    # Per-shard request-rate heatmap over the scrape window, plus the
    # session heatmap: how warm state is spread across the shards.
    heat = [
        (worker.get("slot", 0), timeseries.get(f"worker-{worker.get('slot')}", {}))
        for worker in health.get("workers", ())
    ]
    if any(source.get("series") for _slot, source in heat):
        lines.append("")
        lines.append("shard req/s heatmap (oldest → newest scrape):")
        for slot, source in heat:
            series = source.get("series") or []
            rate = series[-1] if series else 0.0
            lines.append(f"  {slot!s:<4}{_sparkline(series):<26}{rate:>8.2f}/s")
    sessions = [
        (worker.get("slot", 0), int(worker.get("sessions") or 0))
        for worker in health.get("workers", ())
    ]
    if sessions:
        peak = max((count for _slot, count in sessions), default=0)
        lines.append("")
        lines.append("session heatmap (warm sessions per shard):")
        for slot, count in sessions:
            bar = "█" * count if peak <= 24 else "█" * max(int(count / peak * 24), 1)
            lines.append(f"  {slot!s:<4}{bar:<26}{count}")
    journal = health.get("journal", {})
    traces = health.get("traces", {})
    lines.append("")
    lines.append(
        f"journal {journal.get('retained', 0)}/{journal.get('capacity', 0)} "
        f"(dropped {journal.get('dropped', 0)})   "
        f"router traces {traces.get('retained', 0)}/{traces.get('capacity', 0)}"
        + (
            f" ({traces.get('pinned', 0)} pinned)"
            if "pinned" in traces
            else ""
        )
    )
    return "\n".join(lines) + "\n"


def _render_top(stats: dict) -> str:
    """One refresh of the `valuecheck top` dashboard from a stats response."""
    if stats.get("role") == "router":
        return _render_cluster_top(stats)
    health = stats.get("health", {})
    lines = [
        f"valuecheck service  status={health.get('status', '?')}  "
        f"uptime={health.get('uptime_seconds', 0.0):.1f}s  "
        f"protocol={health.get('protocol', '?')}",
        f"queue {health.get('queue_depth', 0)}/{health.get('queue_capacity', 0)}  "
        f"inflight={health.get('inflight', 0)}  workers={health.get('workers', 0)}  "
        f"sessions={health.get('sessions', 0)}",
        "",
        "slo              status     p99        burn   window",
    ]
    for slo in health.get("slos", ()):
        p99 = slo.get("p99_seconds")
        lines.append(
            f"  {slo.get('name', '?'):<15}{slo.get('status', '?'):<9}"
            f"{(f'{p99 * 1e3:8.1f}ms' if p99 is not None else '       --'):>10}"
            f"{slo.get('burn_rate', 0.0):>8.2f}  {slo.get('window_count', 0)}"
        )
    journal = health.get("journal", {})
    traces = health.get("traces", {})
    profiler = health.get("profiler", {})
    lines.append("")
    lines.append(
        f"journal {journal.get('retained', 0)}/{journal.get('capacity', 0)} "
        f"(dropped {journal.get('dropped', 0)})   "
        f"traces {traces.get('retained', 0)}/{traces.get('capacity', 0)}   "
        f"profiler {'on' if profiler.get('running') else 'off'} "
        f"({profiler.get('samples', 0)} samples)"
    )
    phases = stats.get("profile_phases") or {}
    if phases:
        lines.append("")
        lines.append("phase seconds (sampled):")
        for phase, seconds in sorted(phases.items(), key=lambda kv: -kv[1])[:8]:
            lines.append(f"  {phase:<24}{seconds:>9.3f}")
    sessions = stats.get("sessions") or []
    if sessions:
        lines.append("")
        lines.append("session          modules    loc  analyses  diffs  idle")
        for row in sessions:
            lines.append(
                f"  {row.get('project_id', '?'):<15}{row.get('modules', 0):>7}"
                f"{row.get('loc', 0):>7}{row.get('analyze_count', 0):>10}"
                f"{row.get('diff_count', 0):>7}  {row.get('idle_seconds', 0.0):.1f}s"
            )
    return "\n".join(lines) + "\n"


def _cmd_top(args: argparse.Namespace) -> int:
    """Refreshing terminal dashboard over a running daemon."""
    import time

    from repro.service import ServiceClient, ServiceError

    shown = 0
    while True:
        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                stats = client.stats()
        except OSError as error:
            print(
                f"error: cannot reach {args.host}:{args.port}: {error}",
                file=sys.stderr,
            )
            return 2
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if shown and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")  # clear + home between refreshes
        print(_render_top(stats), end="")
        shown += 1
        if args.iterations is not None and shown >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve_stdio

    from repro.obs import DEFAULT_SLOS, SloConfig

    slos = DEFAULT_SLOS
    if args.slo_target is not None or args.slo_error_budget is not None:
        base = DEFAULT_SLOS[0]
        slos = (
            SloConfig(
                name=base.name,
                target_seconds=(
                    args.slo_target if args.slo_target is not None else base.target_seconds
                ),
                error_budget=(
                    args.slo_error_budget
                    if args.slo_error_budget is not None
                    else base.error_budget
                ),
                window_seconds=base.window_seconds,
            ),
        ) + DEFAULT_SLOS[1:]
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        request_timeout=args.request_timeout,
        max_sessions=args.max_sessions,
        max_session_loc=args.max_session_loc,
        executor=args.executor,
        journal_path=args.journal,
        slos=slos,
        profiler=not args.no_profiler,
        profile_interval=args.profile_interval,
    )
    if args.stdio:
        service = serve_stdio(config)
    else:
        from repro.service import AnalysisService, ServiceServer
        from repro.service.server import install_signal_handlers

        service = AnalysisService(config).start()
        server = ServiceServer(service, host=args.host, port=args.port)
        install_signal_handlers(service)  # SIGTERM drains like Ctrl-C
        host, port = server.address  # the actual port, even when --port 0
        print(
            f"valuecheck service listening on {host}:{port} "
            f"({config.workers} workers, queue depth {config.queue_capacity}; "
            "Ctrl-C, SIGTERM, or a shutdown request stops it)",
            file=sys.stderr,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            service.shutdown()
        finally:
            server.server_close()
    if args.stats_out:
        obs.write_jsonl(args.stats_out, service.stats_record())
        print(f"appended service record to {args.stats_out}", file=sys.stderr)
    if args.prometheus:
        Path(args.prometheus).write_text(obs.to_prometheus(service.metrics.snapshot()))
        print(f"wrote Prometheus exposition to {args.prometheus}", file=sys.stderr)
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service import Router, RouterConfig, ServiceServer, WorkerSpec
    from repro.service.server import install_signal_handlers

    spec = WorkerSpec(
        threads=args.worker_threads,
        queue_capacity=args.queue_capacity,
        request_timeout=args.request_timeout,
        max_sessions=args.max_sessions,
        max_session_loc=args.max_session_loc,
        executor=args.executor,
    )
    config = RouterConfig(
        workers=args.workers,
        spec=spec,
        vnodes=args.vnodes,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        journal_path=args.journal,
        telemetry=not args.no_telemetry,
        scrape_interval=args.scrape_interval,
        trace_capacity=args.trace_capacity,
    )
    router = Router(config).start()
    install_signal_handlers(router)  # SIGTERM drains workers, then exits
    server = ServiceServer(router, host=args.host, port=args.port)
    host, port = server.address
    print(
        f"valuecheck router listening on {host}:{port} "
        f"({config.workers} worker processes, probe every {config.probe_interval}s; "
        "Ctrl-C, SIGTERM, or a shutdown request stops it)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        router.shutdown()
    finally:
        server.server_close()
        if not router.stopped:
            router.shutdown()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    raw = args.params or ""
    if raw.startswith("@"):  # large payloads (e.g. a repo snapshot) via file
        try:
            raw = Path(raw[1:]).read_text()
        except OSError as error:
            print(f"error: cannot read params file: {error}", file=sys.stderr)
            return 2
    try:
        params = json.loads(raw) if raw else {}
    except ValueError as error:
        print(f"error: --params is not valid JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("error: --params must be a JSON object", file=sys.stderr)
        return 2
    try:
        client = ServiceClient(host=args.host, port=args.port)
    except OSError as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    with client:
        try:
            result = client.request(
                args.type, params, retries=args.retries, trace_id=args.trace_id
            )
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.trace_id and client.last_trace_id == args.trace_id:
            print(f"trace_id: {args.trace_id}", file=sys.stderr)
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="valuecheck",
        description="ValueCheck reproduction: bug detection from cross-scope unused definitions",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyze a MiniC source tree")
    analyze.add_argument("directory")
    analyze.add_argument("--repo", help="MiniGit repo.json for authorship + ranking")
    analyze.add_argument("--config", nargs="*", help="enabled build macros")
    analyze.add_argument("--csv", help="write the report as CSV")
    analyze.add_argument(
        "--sarif",
        help="write the report as a SARIF 2.1.0 log (GitHub code scanning etc.)",
    )
    analyze.add_argument(
        "--sarif-include-pruned",
        action="store_true",
        help="also export pruned candidates as suppressed SARIF results",
    )
    analyze.add_argument(
        "--explain",
        nargs="?",
        const="",
        default=None,
        metavar="FINDING",
        help="print each candidate's decision trail (detection, cross-scope "
        "evidence, pruner verdicts, DOK breakdown); optionally filter by a "
        "finding id / file / file:line fragment",
    )
    analyze.add_argument(
        "--explain-json",
        metavar="PATH",
        help="write the provenance records as JSONL (one candidate per line, "
        "byte-identical across executors)",
    )
    analyze.add_argument(
        "--baseline",
        help="an earlier report CSV; only findings not present in it are shown",
    )
    analyze.add_argument("--top", type=int, default=20, help="findings to print")
    analyze.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="how per-module analysis is scheduled (default: serial)",
    )
    analyze.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for thread/process executors (default: all cores)",
    )
    analyze.add_argument(
        "--no-module-cache",
        action="store_true",
        help="disable the content-addressed per-module result cache",
    )
    analyze.add_argument(
        "--rules",
        metavar="PACK[,PACK...]",
        help="comma-separated rule packs to run (default: all registered; "
        "see docs/RULES.md)",
    )
    analyze.add_argument(
        "--trace",
        help="write the run's span tree as Chrome trace-event JSON",
    )
    analyze.add_argument(
        "--trace-tree",
        action="store_true",
        help="print the span tree (human-readable) after the report",
    )
    analyze.add_argument(
        "--stats-out",
        help="append this run's metrics record to a JSONL stats file",
    )
    analyze.add_argument(
        "--prometheus",
        help="write the run's metrics in Prometheus text exposition format",
    )
    analyze.add_argument(
        "--profile-out",
        help="run under the sampling profiler and write flamegraph folded stacks here",
    )
    analyze.add_argument(
        "--profile-interval",
        type=float,
        default=0.005,
        help="profiler sampling interval in seconds (default: 0.005)",
    )
    analyze.set_defaults(func=_cmd_analyze)

    profile = subparsers.add_parser(
        "profile",
        help="run the analysis under the sampling profiler (per-phase CPU attribution)",
    )
    profile.add_argument("directory")
    profile.add_argument("--repo", help="MiniGit repo.json for authorship + ranking")
    profile.add_argument("--config", nargs="*", help="enabled build macros")
    profile.add_argument(
        "--runs", type=int, default=3, help="analysis passes to sample (default: 3)"
    )
    profile.add_argument(
        "--interval",
        type=float,
        default=0.005,
        help="sampling interval in seconds (default: 0.005)",
    )
    profile.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="how per-module analysis is scheduled (default: serial)",
    )
    profile.add_argument("--out", help="write flamegraph folded stacks to this file")
    profile.set_defaults(func=_cmd_profile)

    snapshot = subparsers.add_parser(
        "snapshot", help="analyze and record a baseline snapshot in the findings store"
    )
    snapshot.add_argument("directory")
    snapshot.add_argument("--repo", help="MiniGit repo.json for authorship + ranking")
    snapshot.add_argument("--config", nargs="*", help="enabled build macros")
    snapshot.add_argument(
        "--store", required=True, help="the SQLite findings store (created on first use)"
    )
    snapshot.add_argument(
        "--rev", help="snapshot label (default: snapshot-<n>)"
    )
    snapshot.add_argument(
        "--rules",
        metavar="PACK[,PACK...]",
        help="comma-separated rule packs to run (default: all registered)",
    )
    snapshot.set_defaults(func=_cmd_snapshot)

    gate = subparsers.add_parser(
        "gate",
        help="analyze and fail (exit 1) only on new findings vs the last snapshot",
    )
    gate.add_argument("directory")
    gate.add_argument("--repo", help="MiniGit repo.json for authorship + ranking")
    gate.add_argument("--config", nargs="*", help="enabled build macros")
    gate.add_argument("--store", required=True, help="the SQLite findings store")
    gate.add_argument(
        "--baseline-rev",
        help="gate against this snapshot instead of the latest one",
    )
    gate.add_argument(
        "--baseline",
        help="accepted-findings file (default: <dir>/.valuecheck-baseline.json)",
    )
    gate.add_argument(
        "--sarif",
        help="write the lifecycle diff as a SARIF 2.1.0 log with baselineState",
    )
    gate.add_argument(
        "--rules",
        metavar="PACK[,PACK...]",
        help="comma-separated rule packs to run (default: all registered)",
    )
    gate.set_defaults(func=_cmd_gate)

    triage = subparsers.add_parser(
        "triage", help="inspect the findings store and record accept decisions"
    )
    triage.add_argument("store", help="the SQLite findings store")
    triage.add_argument(
        "--show",
        choices=("active", "fixed", "all"),
        default="active",
        help="which stored findings to list (default: active)",
    )
    triage.add_argument(
        "--accept",
        metavar="FINGERPRINT",
        help="accept the finding with this (unique prefix of a) fingerprint",
    )
    triage.add_argument(
        "--justification",
        default="",
        help="why the accepted finding is acceptable (recorded in the baseline)",
    )
    triage.add_argument(
        "--author", default="", help="who signed off on the accept decision"
    )
    triage.add_argument(
        "--baseline",
        help="accepted-findings file (default: ./.valuecheck-baseline.json)",
    )
    triage.set_defaults(func=_cmd_triage)

    run_stats = subparsers.add_parser(
        "stats", help="summarise runs recorded with `analyze --stats-out`"
    )
    run_stats.add_argument("stats_file", help="a JSONL file of run records")
    run_stats.set_defaults(func=_cmd_run_stats)

    generate = subparsers.add_parser("generate-corpus", help="materialise a synthetic app")
    generate.add_argument("app", choices=sorted(PROFILES))
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    stats = subparsers.add_parser(
        "corpus-stats", help="summarise a generated corpus directory"
    )
    stats.add_argument("directory", help="directory containing repo.json")
    stats.set_defaults(func=_cmd_stats)

    score = subparsers.add_parser(
        "score", help="score a report CSV against a corpus's ground truth"
    )
    score.add_argument("report", help="a detected.csv produced by `analyze --csv`")
    score.add_argument("--truth", required=True, help="ground_truth.json of the corpus")
    score.set_defaults(func=_cmd_score)

    serve = subparsers.add_parser(
        "serve", help="run the warm-state analysis service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7432, help="TCP port (0 = pick free)")
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve one request stream over stdin/stdout instead of TCP",
    )
    serve.add_argument("--workers", type=int, default=2, help="request worker threads")
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=16,
        help="bounded request queue depth (overflow → queue_full + retry_after)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=120.0,
        help="per-request deadline in seconds (queue wait + execution)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8, help="LRU cap on warm projects"
    )
    serve.add_argument(
        "--max-session-loc",
        type=int,
        default=None,
        help="approximate memory cap: total warm LOC before LRU eviction",
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="engine executor used inside each request",
    )
    serve.add_argument(
        "--stats-out",
        help="append the service's lifetime metrics record to a JSONL file on exit",
    )
    serve.add_argument(
        "--prometheus",
        help="write the service's metrics in Prometheus text format on exit",
    )
    serve.add_argument(
        "--journal",
        help="mirror the lifecycle event journal to this JSONL file",
    )
    serve.add_argument(
        "--no-profiler",
        action="store_true",
        help="disable the always-on sampling profiler",
    )
    serve.add_argument(
        "--profile-interval",
        type=float,
        default=0.01,
        help="profiler sampling interval in seconds (default: 0.01)",
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=None,
        help="override the 'requests' SLO latency target in seconds",
    )
    serve.add_argument(
        "--slo-error-budget",
        type=float,
        default=None,
        help="override the 'requests' SLO error budget fraction",
    )
    serve.set_defaults(func=_cmd_serve)

    route = subparsers.add_parser(
        "route",
        help="run the sharded front-end router over a pool of worker processes",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7432, help="TCP port (0 = pick free)")
    route.add_argument(
        "--workers", type=int, default=4, help="worker processes in the pool"
    )
    route.add_argument(
        "--worker-threads", type=int, default=2, help="request threads per worker"
    )
    route.add_argument(
        "--queue-capacity", type=int, default=16, help="request queue depth per worker"
    )
    route.add_argument("--request-timeout", type=float, default=120.0)
    route.add_argument(
        "--max-sessions", type=int, default=8, help="LRU warm-project cap per worker"
    )
    route.add_argument("--max-session-loc", type=int, default=None)
    route.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="engine executor inside each worker",
    )
    route.add_argument(
        "--vnodes", type=int, default=64, help="virtual nodes per ring slot"
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        help="seconds between worker health probes (0 disables probing)",
    )
    route.add_argument(
        "--probe-timeout", type=float, default=5.0, help="health probe deadline"
    )
    route.add_argument(
        "--journal", help="mirror the router's event journal to this JSONL file"
    )
    route.add_argument(
        "--scrape-interval",
        type=float,
        default=2.0,
        help="seconds between per-worker metrics scrapes into the "
        "time-series ring (0 disables the scrape loop)",
    )
    route.add_argument(
        "--trace-capacity",
        type=int,
        default=256,
        help="router-side trace ring size (forward-hop spans)",
    )
    route.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable per-request router spans and span-context propagation",
    )
    route.set_defaults(func=_cmd_route)

    client = subparsers.add_parser(
        "client", help="send one request to a running analysis service"
    )
    client.add_argument(
        "type",
        choices=(
            "open_project",
            "analyze",
            "analyze_diff",
            "explain",
            "baseline",
            "diff_findings",
            "gate",
            "stats",
            "health",
            "trace",
            "events",
            "shutdown",
        ),
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7432)
    client.add_argument(
        "--params",
        help="request params as a JSON object, or @path to read them from a file",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=3,
        help="how many queue_full rejections to retry (honouring retry_after)",
    )
    client.add_argument(
        "--trace-id",
        default=None,
        help="propagate this trace id; fetch the trace later with "
        "`client trace --params '{\"trace_id\": ...}'`",
    )
    client.set_defaults(func=_cmd_client)

    events = subparsers.add_parser(
        "events", help="stream a running daemon's lifecycle event journal"
    )
    events.add_argument("--host", default="127.0.0.1")
    events.add_argument("--port", type=int, default=7432)
    events.add_argument(
        "--since", type=int, default=0, help="only events with seq > N (default: 0)"
    )
    events.add_argument("--limit", type=int, default=None, help="events per poll")
    events.add_argument(
        "--kind", default=None, help="filter by kind prefix (e.g. 'session')"
    )
    events.add_argument(
        "--follow", action="store_true", help="keep polling for new events (Ctrl-C stops)"
    )
    events.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        help="seconds between polls with --follow (default: 1)",
    )
    events.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop --follow after N polls (default: until interrupted)",
    )
    events.set_defaults(func=_cmd_events)

    top = subparsers.add_parser(
        "top", help="live dashboard over a running daemon's health and stats"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7432)
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N refreshes (default: until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    evaluate = subparsers.add_parser("evaluate", help="run the full evaluation")
    evaluate.add_argument("--scale", type=float, default=None)
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.add_argument("--out", help="directory for the result bundle")
    evaluate.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
