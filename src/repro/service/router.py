"""The front-end router: one address, N worker processes, shared nothing.

The router speaks the exact same line-delimited JSON protocol as a
single ``valuecheck serve`` daemon — :class:`~repro.service.client.ServiceClient`
works against it unchanged — but instead of analysing anything itself
it consistent-hashes ``project_id`` across a :class:`~repro.service.pool.WorkerPool`
and forwards each request to the worker owning that shard.  Every
worker is a full analysis service with its own sessions and engine
cache, so the fleet's warm capacity is the *sum* of the workers', and a
crashed worker takes down only its shard's warm state, not the service.

Routing rules:

* **Data plane** (``open_project``, ``analyze``, ``analyze_diff``,
  ``explain``, ``baseline``, ``diff_findings``, ``gate``) — hash the
  ``project_id``, forward the envelope verbatim (the worker echoes the
  client's ``id``), relay the response line back.  ``trace_id``
  propagates end-to-end: the router assigns ``rtr-<n>`` when the client
  sent none, so a trace taken on the worker is addressable from the
  client side.
* **Control plane** (``health``, ``stats``, ``events``, ``shutdown``)
  — answered by the router itself.  ``health``/``stats`` fan out to the
  live workers and aggregate: per-worker metric registries are folded
  with :meth:`MetricsRegistry.merged` into one deterministic view, and
  both carry a ``shard_map`` block showing which slot owns which share
  of the ring.  ``events`` serves the router's own journal (spawns,
  deaths, respawns, migrations).  ``trace`` is forwarded to whichever
  worker holds the trace.

**Migration.**  The router remembers every successful ``open_project``'s
serialized recipe (``ProjectSession.open_params``).  When a shard's
owner changes — its worker died and the ring routed around it, or a
respawn brought a fresh (empty) generation up — the router transparently
replays the recipe on the new owner before forwarding, emits a
``session.migrated`` journal event, and carries on.  Analysis state is
deterministic, so findings from a re-opened session are
fingerprint-identical to the originals; in-session diff overlays
(``analyze_diff``) reset to the recipe's base state, same as an LRU
eviction.
"""

from __future__ import annotations

import json
import socket
import threading
from dataclasses import dataclass, field

from repro.obs import EventJournal, MetricsRegistry
from repro.obs.clock import monotonic
from repro.service.pool import WorkerHandle, WorkerPool, WorkerSpec
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

#: Request types the router forwards to a shard owner (all carry — or,
#: for open_project, establish — a ``project_id``).
DATA_PLANE = (
    "open_project",
    "analyze",
    "analyze_diff",
    "explain",
    "baseline",
    "diff_findings",
    "gate",
)


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs: pool size, worker shape, probing, forwarding."""

    workers: int = 4
    spec: WorkerSpec = field(default_factory=WorkerSpec)
    vnodes: int = 64
    probe_interval: float = 2.0
    probe_timeout: float = 5.0
    probe_failures: int = 2
    forward_timeout: float = 300.0  # socket deadline per forwarded request
    max_request_bytes: int = MAX_REQUEST_BYTES
    journal_capacity: int = 2048
    journal_path: str | None = None


@dataclass
class _Placement:
    """Where one project's session lives and how to recreate it."""

    open_params: dict
    slot: int
    generation: int
    migrations: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class _WorkerConn:
    """One blocking line-protocol connection to one worker process."""

    def __init__(self, handle: WorkerHandle, timeout: float):
        self.slot = handle.slot
        self.generation = handle.generation
        self._sock = socket.create_connection(
            (handle.host, handle.port), timeout=timeout
        )
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def roundtrip(self, envelope: dict) -> dict:
        """Forward one envelope, return the worker's response dict."""
        self._sock.sendall(encode(envelope).encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()


class Router:
    """Protocol-compatible front end multiplexing a worker pool.

    Presents the same surface :class:`~repro.service.server.ServiceServer`
    expects of a service core (``config.max_request_bytes``,
    ``submit_line``, ``stopped``, ``add_shutdown_listener``), so the
    existing TCP frontend hosts a router exactly as it hosts a single
    service.
    """

    def __init__(self, config: RouterConfig | None = None):
        self.config = config or RouterConfig()
        self.journal = EventJournal(
            capacity=self.config.journal_capacity,
            sink_path=self.config.journal_path,
        )
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(
            count=self.config.workers,
            spec=self.config.spec,
            vnodes=self.config.vnodes,
            probe_interval=self.config.probe_interval,
            probe_timeout=self.config.probe_timeout,
            probe_failures=self.config.probe_failures,
            journal=self.journal,
            metrics=self.metrics,
        )
        self.started_at = monotonic()
        self._placements: dict[str, _Placement] = {}
        self._placements_lock = threading.Lock()
        self._local = threading.local()
        self._state_lock = threading.Lock()
        self._accepting = False
        self._stopped = threading.Event()
        self._shutdown_listeners: list = []
        self._trace_seq = 0
        self.migrations = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Router":
        self.pool.start()
        with self._state_lock:
            self._accepting = True
        self.journal.emit(
            "router.start",
            workers=self.config.workers,
            vnodes=self.config.vnodes,
            probe_interval=self.config.probe_interval,
        )
        return self

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_listener(self, callback) -> None:
        self._shutdown_listeners.append(callback)

    def shutdown(self, drain: bool = True) -> dict:
        """Stop accepting, SIGTERM the workers (they drain), stop."""
        with self._state_lock:
            already = self._stopped.is_set()
            self._accepting = False
        if not already:
            self.pool.stop()
            self._stopped.set()
            self.journal.emit(
                "router.shutdown",
                drained=bool(drain),
                uptime_seconds=round(monotonic() - self.started_at, 6),
            )
            self.journal.close()
            for callback in self._shutdown_listeners:
                callback()
        return {
            "stopped": True,
            "drained": bool(drain),
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "workers": self.config.workers,
            "migrations": self.migrations,
            "respawns": self.pool.respawns,
        }

    # -- submission ------------------------------------------------------

    def submit_line(self, line: str | bytes) -> str:
        try:
            request = decode_request(line, max_bytes=self.config.max_request_bytes)
        except ProtocolError as error:
            self.metrics.inc("router.requests", type="invalid", outcome=error.code)
            return encode(error_response(None, error.code, error.message))
        return encode(self.submit(request))

    def submit(self, request: dict) -> dict:
        kind = request["type"]
        request_id = request.get("id")
        if kind == "health":
            return ok_response(request_id, self._health())
        if kind == "stats":
            return ok_response(request_id, self._stats(request.get("params", {})))
        if kind == "events":
            return self._events(request)
        if kind == "shutdown":
            params = request.get("params", {})
            summary = self.shutdown(drain=params.get("drain", True))
            self.metrics.inc("router.requests", type=kind, outcome="ok")
            return ok_response(request_id, summary)
        if kind == "trace":
            return self._forward_trace(request)

        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        if not accepting:
            self.metrics.inc("router.requests", type=kind, outcome="shutting_down")
            return error_response(
                request_id, "shutting_down", "router is draining; no new work accepted"
            )
        return self._route(request)

    # -- data plane ------------------------------------------------------

    def _route(self, request: dict) -> dict:
        kind = request["type"]
        request_id = request.get("id")
        params = request.get("params", {})
        project_id = params.get("project_id")
        if kind != "open_project" and not isinstance(project_id, str):
            self.metrics.inc("router.requests", type=kind, outcome="invalid_params")
            return error_response(
                request_id, "invalid_params", "'project_id' must be a string"
            )
        if "trace_id" not in request:
            with self._state_lock:
                self._trace_seq += 1
                request = dict(request, trace_id=f"rtr-{self._trace_seq}")

        last_error: dict | None = None
        for _attempt in range(3):
            try:
                handle = self._owner(kind, project_id)
            except LookupError:
                break  # no live workers at all right now
            placement = self._placement_for(project_id)
            if placement is not None and (
                (placement.slot, placement.generation)
                != (handle.slot, handle.generation)
            ):
                if not self._migrate(project_id, placement, handle):
                    last_error = None
                    continue  # owner changed under us; re-resolve
            try:
                response = self._forward(handle, request)
            except (OSError, ValueError):
                self.pool.report_failure(handle.slot, handle.generation)
                self.metrics.inc("router.forward.errors", slot=handle.slot)
                continue
            handle.requests_forwarded += 1
            if kind == "open_project" and response.get("ok"):
                self._record_open(params, response["result"], handle)
            if (
                not response.get("ok")
                and response.get("error", {}).get("code") == "unknown_project"
                and placement is not None
            ):
                # The worker lost the session (LRU eviction or a respawn
                # the ring didn't move) — replay the recipe and retry.
                if self._migrate(project_id, placement, handle, reason="evicted"):
                    try:
                        response = self._forward(handle, request)
                    except (OSError, ValueError):
                        self.pool.report_failure(handle.slot, handle.generation)
                        continue
            outcome = "ok" if response.get("ok") else response.get("error", {}).get(
                "code", "error"
            )
            self.metrics.inc("router.requests", type=kind, outcome=outcome)
            self.metrics.inc("router.forwarded", slot=handle.slot)
            return response
        self.metrics.inc("router.requests", type=kind, outcome="worker_unavailable")
        if last_error is not None:  # pragma: no cover - defensive
            return last_error
        return error_response(
            request_id,
            "worker_unavailable",
            "no live worker can serve this shard right now; retry",
            retry_after=max(self.config.probe_interval, 0.5),
            trace_id=request.get("trace_id"),
        )

    def _owner(self, kind: str, project_id: str | None) -> WorkerHandle:
        if project_id is None:
            # open_project without an explicit id: any worker may mint
            # one; spread these round-robin-ish by hashing the trace seq.
            with self._state_lock:
                key = f"anon-{self._trace_seq}"
            return self.pool.owner(key)
        return self.pool.owner(project_id)

    def _forward(self, handle: WorkerHandle, request: dict) -> dict:
        conn = self._connection(handle)
        try:
            return conn.roundtrip(request)
        except (OSError, ValueError):
            self._drop_connection(handle)
            raise

    def _connection(self, handle: WorkerHandle) -> _WorkerConn:
        cache = getattr(self._local, "conns", None)
        if cache is None:
            cache = self._local.conns = {}
        key = (handle.slot, handle.generation)
        conn = cache.get(key)
        if conn is None:
            # A new generation in this slot obsoletes the old connection.
            stale = [k for k in cache if k[0] == handle.slot and k != key]
            for old in stale:
                try:
                    cache.pop(old).close()
                except OSError:  # pragma: no cover
                    pass
            conn = cache[key] = _WorkerConn(handle, self.config.forward_timeout)
        return conn

    def _drop_connection(self, handle: WorkerHandle) -> None:
        cache = getattr(self._local, "conns", None)
        if cache is None:
            return
        conn = cache.pop((handle.slot, handle.generation), None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- migration -------------------------------------------------------

    def _placement_for(self, project_id: str | None) -> _Placement | None:
        if project_id is None:
            return None
        with self._placements_lock:
            return self._placements.get(project_id)

    def _record_open(self, params: dict, result: dict, handle: WorkerHandle) -> None:
        project_id = result.get("project_id")
        if not isinstance(project_id, str):  # pragma: no cover - protocol guard
            return
        open_params = {
            key: params[key]
            for key in ("sources", "root", "repo", "rev", "build_config", "options")
            if key in params
        }
        open_params["project_id"] = project_id
        with self._placements_lock:
            existing = self._placements.get(project_id)
            if existing is not None:
                existing.open_params = open_params
                existing.slot = handle.slot
                existing.generation = handle.generation
            else:
                self._placements[project_id] = _Placement(
                    open_params=open_params,
                    slot=handle.slot,
                    generation=handle.generation,
                )

    def _migrate(
        self,
        project_id: str | None,
        placement: _Placement,
        handle: WorkerHandle,
        reason: str = "reassigned",
    ) -> bool:
        """Replay the open recipe on ``handle``; True when the session is
        (now) live there."""
        with placement.lock:
            if (placement.slot, placement.generation) == (
                handle.slot,
                handle.generation,
            ) and reason != "evicted":
                return True  # another thread already migrated it
            replay = {
                "id": None,
                "type": "open_project",
                "params": placement.open_params,
            }
            try:
                response = self._forward(handle, replay)
            except (OSError, ValueError):
                self.pool.report_failure(handle.slot, handle.generation)
                return False
            if not response.get("ok"):
                return False
            from_slot, from_generation = placement.slot, placement.generation
            placement.slot = handle.slot
            placement.generation = handle.generation
            placement.migrations += 1
            self.migrations += 1
            self.metrics.inc("router.migrations", reason=reason)
            self.journal.emit(
                "session.migrated",
                project_id=project_id,
                from_slot=from_slot,
                from_generation=from_generation,
                to_slot=handle.slot,
                to_generation=handle.generation,
                reason=reason,
            )
            return True

    # -- control plane ---------------------------------------------------

    def _worker_request(
        self, handle: WorkerHandle, kind: str, params: dict | None = None
    ) -> dict | None:
        """One control-plane round trip; None when the worker is unreachable."""
        envelope = {"id": None, "type": kind, "params": params or {}}
        try:
            response = self._forward(handle, envelope)
        except (OSError, ValueError):
            self.pool.report_failure(handle.slot, handle.generation)
            return None
        return response

    def _health(self) -> dict:
        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        workers = []
        alive = 0
        for handle in self.pool.handles():
            entry = dict(handle.as_dict())
            if handle.alive:
                response = self._worker_request(handle, "health")
                if response is not None and response.get("ok"):
                    alive += 1
                    result = response["result"]
                    entry["status"] = result["status"]
                    entry["sessions"] = result["sessions"]
                    entry["queue_depth"] = result["queue_depth"]
                else:
                    entry["status"] = "unreachable"
            else:
                entry["status"] = "dead"
            workers.append(entry)
        if not accepting:
            status = "draining"
        elif alive == self.pool.count:
            status = "ok"
        elif alive:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "workers": workers,
            "alive_workers": alive,
            "shard_map": self.pool.shard_map(),
            "pool": self.pool.stats(),
            "migrations": self.migrations,
            "journal": self.journal.stats(),
        }

    def _stats(self, params: dict | None = None) -> dict:
        from repro import obs

        worker_stats = []
        snapshots = []
        sessions_total = 0
        for handle in self.pool.handles():
            if not handle.alive:
                worker_stats.append({"slot": handle.slot, "status": "dead"})
                continue
            response = self._worker_request(
                handle, "stats", {"raw_metrics": True}
            )
            if response is None or not response.get("ok"):
                worker_stats.append({"slot": handle.slot, "status": "unreachable"})
                continue
            result = response["result"]
            snapshot = result.pop("metrics_snapshot", None)
            if snapshot is not None:
                snapshots.append(snapshot)
            sessions_total += len(result.get("sessions") or [])
            worker_stats.append(
                {
                    "slot": handle.slot,
                    "generation": handle.generation,
                    "status": "ok",
                    "sessions": result.get("sessions"),
                    "engine_cache": result.get("engine_cache"),
                }
            )
        snapshots.append(self.metrics.snapshot())
        merged = MetricsRegistry.merged(snapshots)
        return {
            "role": "router",
            "health": self._health() if params is None or not params.get("shallow") else None,
            "workers": worker_stats,
            "sessions_total": sessions_total,
            "shard_map": self.pool.shard_map(),
            "migrations": self.migrations,
            # One fleet-wide deterministic metrics view: counters summed,
            # gauges maxed, histogram populations pooled across workers.
            "metrics": obs.summarize_snapshot(merged.snapshot()),
        }

    def _events(self, request: dict) -> dict:
        params = request.get("params", {})
        request_id = request.get("id")
        since = params.get("since", 0)
        limit = params.get("limit")
        kind = params.get("kind")
        if not isinstance(since, int) or since < 0:
            return error_response(
                request_id, "invalid_params", "'since' must be a non-negative integer"
            )
        rows = self.journal.events(since=since, limit=limit, kind=kind)
        return ok_response(
            request_id,
            {
                "events": [event.as_dict() for event in rows],
                "journal": self.journal.stats(),
            },
        )

    def _forward_trace(self, request: dict) -> dict:
        """Traces live on whichever worker served the request — ask each
        live worker in turn and relay the first hit."""
        request_id = request.get("id")
        last: dict | None = None
        for handle in self.pool.handles():
            if not handle.alive:
                continue
            envelope = dict(request, id=request_id)
            try:
                response = self._forward(handle, envelope)
            except (OSError, ValueError):
                self.pool.report_failure(handle.slot, handle.generation)
                continue
            if response.get("ok"):
                return response
            last = response
        if last is not None:
            return last
        return error_response(
            request_id, "unknown_trace", "no worker holds this trace"
        )
