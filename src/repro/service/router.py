"""The front-end router: one address, N worker processes, shared nothing.

The router speaks the exact same line-delimited JSON protocol as a
single ``valuecheck serve`` daemon — :class:`~repro.service.client.ServiceClient`
works against it unchanged — but instead of analysing anything itself
it consistent-hashes ``project_id`` across a :class:`~repro.service.pool.WorkerPool`
and forwards each request to the worker owning that shard.  Every
worker is a full analysis service with its own sessions and engine
cache, so the fleet's warm capacity is the *sum* of the workers', and a
crashed worker takes down only its shard's warm state, not the service.

Routing rules:

* **Data plane** (``open_project``, ``analyze``, ``analyze_diff``,
  ``explain``, ``baseline``, ``diff_findings``, ``gate``) — hash the
  ``project_id``, forward the envelope (the worker echoes the client's
  ``id``), relay the response line back.  ``trace_id`` propagates
  end-to-end: the router assigns ``rtr-<n>`` when the client sent none.
  Each forwarded request runs under the router's own per-request tracer
  — a ``router.request`` root span with ``router.forward`` /
  ``router.migrate`` children — and the router attaches ``span_ctx``
  (parent span id + its wall-clock accept epoch) to the envelope, so
  the worker's trace record can be stitched under the forward hop.
* **Control plane** (``health``, ``stats``, ``events``, ``shutdown``)
  — answered by the router itself.  ``health``/``stats`` fan out to the
  live workers and aggregate: per-worker metric registries are folded
  with :meth:`MetricsRegistry.merged` into one deterministic view, both
  carry a ``shard_map`` block, ``health`` adds router-level SLOs over
  forwarded requests with per-worker burn rates, and ``stats`` adds the
  scrape loop's time-series view (per-shard request rates and deltas).
  ``events`` is a **stable merge** of the router's journal with every
  live worker's journal — ordered on ``(timestamp, slot, seq)``, with
  per-source cursors (``worker-<slot>.g<generation>``) so paging stays
  gap-free across worker respawns.  ``trace`` collects every fragment
  of the trace — the router's own record plus hits from *all* live
  workers — and returns one stitched cross-process timeline
  (:mod:`repro.obs.stitch`).

**Migration.**  The router remembers every successful ``open_project``'s
serialized recipe (``ProjectSession.open_params``).  When a shard's
owner changes — its worker died and the ring routed around it, or a
respawn brought a fresh (empty) generation up — the router transparently
replays the recipe on the new owner before forwarding, emits a
``session.migrated`` journal event, and carries on.  The replay carries
the triggering request's trace id, so a migrated request's stitched
trace shows the replay hop too.  Analysis state is deterministic, so
findings from a re-opened session are fingerprint-identical to the
originals; in-session diff overlays (``analyze_diff``) reset to the
recipe's base state, same as an LRU eviction.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from dataclasses import dataclass, field

from repro.obs import (
    DEFAULT_SLOS,
    EventJournal,
    MetricsHistory,
    MetricsRegistry,
    SloConfig,
    TraceRecord,
    TraceStore,
    Tracer,
    build_trackers,
    make_part,
    stitch,
)
from repro.obs.clock import monotonic
from repro.service.pool import WorkerHandle, WorkerPool, WorkerSpec
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

#: Request types the router forwards to a shard owner (all carry — or,
#: for open_project, establish — a ``project_id``).
DATA_PLANE = (
    "open_project",
    "analyze",
    "analyze_diff",
    "explain",
    "baseline",
    "diff_findings",
    "gate",
)


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs: pool size, worker shape, probing, forwarding,
    and the cluster observability plane (tracing, scraping, SLOs)."""

    workers: int = 4
    spec: WorkerSpec = field(default_factory=WorkerSpec)
    vnodes: int = 64
    probe_interval: float = 2.0
    probe_timeout: float = 5.0
    probe_failures: int = 2
    forward_timeout: float = 300.0  # socket deadline per forwarded request
    max_request_bytes: int = MAX_REQUEST_BYTES
    journal_capacity: int = 2048
    journal_path: str | None = None
    # Cluster observability plane (see docs/OBSERVABILITY.md):
    telemetry: bool = True  # per-request router spans + span_ctx propagation
    trace_capacity: int = 256  # router-side trace ring
    trace_pin_slow_seconds: float | None = 5.0  # tail-based retention
    scrape_interval: float = 2.0  # metrics scrape loop; <= 0 disables
    history_capacity: int = 240  # time-series samples retained per source
    slos: tuple[SloConfig, ...] = DEFAULT_SLOS  # over forwarded requests


@dataclass
class _Placement:
    """Where one project's session lives and how to recreate it."""

    open_params: dict
    slot: int
    generation: int
    migrations: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class _WorkerConn:
    """One blocking line-protocol connection to one worker process."""

    def __init__(self, handle: WorkerHandle, timeout: float):
        self.slot = handle.slot
        self.generation = handle.generation
        self._sock = socket.create_connection(
            (handle.host, handle.port), timeout=timeout
        )
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def roundtrip(self, envelope: dict) -> dict:
        """Forward one envelope, return the worker's response dict."""
        self._sock.sendall(encode(envelope).encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("worker closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()


class Router:
    """Protocol-compatible front end multiplexing a worker pool.

    Presents the same surface :class:`~repro.service.server.ServiceServer`
    expects of a service core (``config.max_request_bytes``,
    ``submit_line``, ``stopped``, ``add_shutdown_listener``), so the
    existing TCP frontend hosts a router exactly as it hosts a single
    service.
    """

    def __init__(self, config: RouterConfig | None = None):
        self.config = config or RouterConfig()
        self.journal = EventJournal(
            capacity=self.config.journal_capacity,
            sink_path=self.config.journal_path,
        )
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(
            count=self.config.workers,
            spec=self.config.spec,
            vnodes=self.config.vnodes,
            probe_interval=self.config.probe_interval,
            probe_timeout=self.config.probe_timeout,
            probe_failures=self.config.probe_failures,
            journal=self.journal,
            metrics=self.metrics,
        )
        self.started_at = monotonic()
        # Router-side observability: the forward hop's own trace ring
        # (tail-retained like the workers'), router-level SLO trackers
        # over forwarded requests plus per-slot trackers for burn-rate
        # attribution, and the scrape loop's metrics time series.
        self.traces = TraceStore(
            capacity=self.config.trace_capacity,
            pin_slow_seconds=self.config.trace_pin_slow_seconds,
            pin_errors=True,
        )
        self.slos = build_trackers(tuple(self.config.slos))
        self._slot_slos: dict[int, tuple] = {}
        self._slo_lock = threading.Lock()
        self.history = MetricsHistory(capacity=self.config.history_capacity)
        self._placements: dict[str, _Placement] = {}
        self._placements_lock = threading.Lock()
        self._local = threading.local()
        self._state_lock = threading.Lock()
        self._accepting = False
        self._stopped = threading.Event()
        self._shutdown_listeners: list = []
        self._trace_seq = 0
        self._request_seq = 0
        self._scrape_thread: threading.Thread | None = None
        self.migrations = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Router":
        self.pool.start()
        with self._state_lock:
            self._accepting = True
        if self.config.scrape_interval > 0:
            self._scrape_thread = threading.Thread(
                target=self._scrape_loop, name="router-scrape", daemon=True
            )
            self._scrape_thread.start()
        self.journal.emit(
            "router.start",
            workers=self.config.workers,
            vnodes=self.config.vnodes,
            probe_interval=self.config.probe_interval,
            scrape_interval=self.config.scrape_interval,
            telemetry=self.config.telemetry,
        )
        return self

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_listener(self, callback) -> None:
        self._shutdown_listeners.append(callback)

    def shutdown(self, drain: bool = True) -> dict:
        """Stop accepting, SIGTERM the workers (they drain), stop."""
        with self._state_lock:
            already = self._stopped.is_set()
            self._accepting = False
        if not already:
            self.pool.stop()
            self._stopped.set()
            if self._scrape_thread is not None:
                self._scrape_thread.join(timeout=5.0)
            self.journal.emit(
                "router.shutdown",
                drained=bool(drain),
                uptime_seconds=round(monotonic() - self.started_at, 6),
            )
            self.journal.close()
            for callback in self._shutdown_listeners:
                callback()
        return {
            "stopped": True,
            "drained": bool(drain),
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "workers": self.config.workers,
            "migrations": self.migrations,
            "respawns": self.pool.respawns,
        }

    # -- submission ------------------------------------------------------

    def submit_line(self, line: str | bytes) -> str:
        try:
            request = decode_request(line, max_bytes=self.config.max_request_bytes)
        except ProtocolError as error:
            self.metrics.inc("router.requests", type="invalid", outcome=error.code)
            return encode(error_response(None, error.code, error.message))
        return encode(self.submit(request))

    def submit(self, request: dict) -> dict:
        kind = request["type"]
        request_id = request.get("id")
        if kind == "health":
            return ok_response(request_id, self._health())
        if kind == "stats":
            return ok_response(request_id, self._stats(request.get("params", {})))
        if kind == "events":
            return self._events(request)
        if kind == "shutdown":
            params = request.get("params", {})
            summary = self.shutdown(drain=params.get("drain", True))
            self.metrics.inc("router.requests", type=kind, outcome="ok")
            return ok_response(request_id, summary)
        if kind == "trace":
            return self._stitched_trace(request)

        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        if not accepting:
            self.metrics.inc("router.requests", type=kind, outcome="shutting_down")
            return error_response(
                request_id, "shutting_down", "router is draining; no new work accepted"
            )
        return self._route(request)

    # -- data plane ------------------------------------------------------

    def _route(self, request: dict) -> dict:
        kind = request["type"]
        request_id = request.get("id")
        params = request.get("params", {})
        project_id = params.get("project_id")
        if kind != "open_project" and not isinstance(project_id, str):
            self.metrics.inc("router.requests", type=kind, outcome="invalid_params")
            return error_response(
                request_id, "invalid_params", "'project_id' must be a string"
            )
        with self._state_lock:
            self._request_seq += 1
            seq = self._request_seq
            if "trace_id" not in request:
                self._trace_seq += 1
                request = dict(request, trace_id=f"rtr-{self._trace_seq}")
        trace_id = request["trace_id"]

        # The forward hop runs under the router's own per-request tracer;
        # its record lands in the router's trace ring under the same
        # trace id the worker records under, so a later ``trace`` request
        # stitches both processes onto one timeline.
        tracer = Tracer(enabled=self.config.telemetry)
        started = monotonic()
        served: list[WorkerHandle] = []
        with tracer.span(
            "router.request", type=kind, trace_id=trace_id, id=str(request_id)
        ):
            response = self._route_attempts(request, tracer, trace_id, served)
        seconds = monotonic() - started
        ok = bool(response.get("ok"))
        self.metrics.observe("router.request_seconds", seconds, type=kind)
        if tracer.enabled:
            self.traces.put(
                TraceRecord(
                    request_id=seq,
                    trace_id=trace_id,
                    kind=kind,
                    ok=ok,
                    seconds=seconds,
                    spans=tuple(tracer.spans()),
                    epoch_ts=tracer.wall_epoch,
                )
            )
        for tracker in self.slos:
            tracker.record(kind, seconds, ok=ok)
        if served:
            for tracker in self._slot_trackers(served[-1].slot):
                tracker.record(kind, seconds, ok=ok)
        return response

    def _route_attempts(
        self,
        request: dict,
        tracer: Tracer,
        trace_id: str,
        served: list[WorkerHandle],
    ) -> dict:
        kind = request["type"]
        request_id = request.get("id")
        params = request.get("params", {})
        project_id = params.get("project_id")
        last_error: dict | None = None
        for attempt in range(3):
            try:
                handle = self._owner(kind, project_id)
            except LookupError:
                break  # no live workers at all right now
            placement = self._placement_for(project_id)
            if placement is not None and (
                (placement.slot, placement.generation)
                != (handle.slot, handle.generation)
            ):
                if not self._migrate(
                    project_id, placement, handle, tracer=tracer, trace_id=trace_id
                ):
                    last_error = None
                    continue  # owner changed under us; re-resolve
            try:
                response = self._forward_traced(
                    handle, request, tracer, attempt=attempt
                )
            except (OSError, ValueError):
                self.pool.report_failure(handle.slot, handle.generation)
                self.metrics.inc("router.forward.errors", slot=handle.slot)
                continue
            handle.requests_forwarded += 1
            if kind == "open_project" and response.get("ok"):
                self._record_open(params, response["result"], handle)
            if (
                not response.get("ok")
                and response.get("error", {}).get("code") == "unknown_project"
                and placement is not None
            ):
                # The worker lost the session (LRU eviction or a respawn
                # the ring didn't move) — replay the recipe and retry.
                if self._migrate(
                    project_id,
                    placement,
                    handle,
                    reason="evicted",
                    tracer=tracer,
                    trace_id=trace_id,
                ):
                    try:
                        response = self._forward_traced(
                            handle, request, tracer, attempt=attempt
                        )
                    except (OSError, ValueError):
                        self.pool.report_failure(handle.slot, handle.generation)
                        continue
            outcome = "ok" if response.get("ok") else response.get("error", {}).get(
                "code", "error"
            )
            self.metrics.inc("router.requests", type=kind, outcome=outcome)
            self.metrics.inc("router.forwarded", slot=handle.slot)
            served.append(handle)
            return response
        self.metrics.inc("router.requests", type=kind, outcome="worker_unavailable")
        if last_error is not None:  # pragma: no cover - defensive
            return last_error
        return error_response(
            request_id,
            "worker_unavailable",
            "no live worker can serve this shard right now; retry",
            retry_after=max(self.config.probe_interval, 0.5),
            trace_id=trace_id,
        )

    def _forward_traced(
        self, handle: WorkerHandle, request: dict, tracer: Tracer, attempt: int
    ) -> dict:
        """One forward hop under a ``router.forward`` span, with the
        span context propagated in the worker envelope."""
        with tracer.span(
            "router.forward",
            slot=handle.slot,
            generation=handle.generation,
            attempt=attempt,
        ) as span:
            envelope = request
            if span is not None:
                envelope = dict(request, span_ctx=self._span_ctx(tracer, span))
            return self._forward(handle, envelope)

    def _span_ctx(self, tracer: Tracer, span) -> dict:
        return {
            "parent_span": span.span_id,
            "root_ts": round(tracer.wall_epoch, 6),
            "origin": "router",
        }

    def _slot_trackers(self, slot: int) -> tuple:
        with self._slo_lock:
            trackers = self._slot_slos.get(slot)
            if trackers is None:
                trackers = self._slot_slos[slot] = tuple(
                    build_trackers(tuple(self.config.slos))
                )
            return trackers

    def _owner(self, kind: str, project_id: str | None) -> WorkerHandle:
        if project_id is None:
            # open_project without an explicit id: any worker may mint
            # one; spread these round-robin-ish by hashing the trace seq.
            with self._state_lock:
                key = f"anon-{self._trace_seq}"
            return self.pool.owner(key)
        return self.pool.owner(project_id)

    def _forward(self, handle: WorkerHandle, request: dict) -> dict:
        conn = self._connection(handle)
        try:
            return conn.roundtrip(request)
        except (OSError, ValueError):
            self._drop_connection(handle)
            raise

    def _connection(self, handle: WorkerHandle) -> _WorkerConn:
        cache = getattr(self._local, "conns", None)
        if cache is None:
            cache = self._local.conns = {}
        key = (handle.slot, handle.generation)
        conn = cache.get(key)
        if conn is None:
            # A new generation in this slot obsoletes the old connection.
            stale = [k for k in cache if k[0] == handle.slot and k != key]
            for old in stale:
                try:
                    cache.pop(old).close()
                except OSError:  # pragma: no cover
                    pass
            conn = cache[key] = _WorkerConn(handle, self.config.forward_timeout)
        return conn

    def _drop_connection(self, handle: WorkerHandle) -> None:
        cache = getattr(self._local, "conns", None)
        if cache is None:
            return
        conn = cache.pop((handle.slot, handle.generation), None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- migration -------------------------------------------------------

    def _placement_for(self, project_id: str | None) -> _Placement | None:
        if project_id is None:
            return None
        with self._placements_lock:
            return self._placements.get(project_id)

    def _record_open(self, params: dict, result: dict, handle: WorkerHandle) -> None:
        project_id = result.get("project_id")
        if not isinstance(project_id, str):  # pragma: no cover - protocol guard
            return
        open_params = {
            key: params[key]
            for key in ("sources", "root", "repo", "rev", "build_config", "options", "rules")
            if key in params
        }
        open_params["project_id"] = project_id
        with self._placements_lock:
            existing = self._placements.get(project_id)
            if existing is not None:
                existing.open_params = open_params
                existing.slot = handle.slot
                existing.generation = handle.generation
            else:
                self._placements[project_id] = _Placement(
                    open_params=open_params,
                    slot=handle.slot,
                    generation=handle.generation,
                )

    def _migrate(
        self,
        project_id: str | None,
        placement: _Placement,
        handle: WorkerHandle,
        reason: str = "reassigned",
        tracer: Tracer | None = None,
        trace_id: str | None = None,
    ) -> bool:
        """Replay the open recipe on ``handle``; True when the session is
        (now) live there.  The replay carries the triggering request's
        trace id (and span context), so the migrated request's stitched
        trace includes the replay hop on the new owner."""
        with placement.lock:
            if (placement.slot, placement.generation) == (
                handle.slot,
                handle.generation,
            ) and reason != "evicted":
                return True  # another thread already migrated it
            replay = {
                "id": None,
                "type": "open_project",
                "params": placement.open_params,
            }
            if trace_id is not None:
                replay["trace_id"] = trace_id
            span_cm = (
                tracer.span(
                    "router.migrate",
                    slot=handle.slot,
                    generation=handle.generation,
                    reason=reason,
                    project_id=str(project_id),
                )
                if tracer is not None
                else _NULL_SPAN_CM
            )
            with span_cm as span:
                if span is not None and tracer is not None:
                    replay["span_ctx"] = self._span_ctx(tracer, span)
                try:
                    response = self._forward(handle, replay)
                except (OSError, ValueError):
                    self.pool.report_failure(handle.slot, handle.generation)
                    return False
            if not response.get("ok"):
                return False
            from_slot, from_generation = placement.slot, placement.generation
            placement.slot = handle.slot
            placement.generation = handle.generation
            placement.migrations += 1
            self.migrations += 1
            self.metrics.inc("router.migrations", reason=reason)
            self.journal.emit(
                "session.migrated",
                project_id=project_id,
                from_slot=from_slot,
                from_generation=from_generation,
                to_slot=handle.slot,
                to_generation=handle.generation,
                reason=reason,
            )
            return True

    # -- scrape loop ------------------------------------------------------

    def _scrape_loop(self) -> None:
        while not self._stopped.wait(self.config.scrape_interval):
            try:
                self.scrape_once()
            except Exception:  # noqa: BLE001 — the scraper must not die
                self.metrics.inc("router.scrape.errors")

    def scrape_once(self) -> int:
        """Sample every live worker's metrics into the time-series ring;
        returns the number of sources sampled.  Runs on the scrape
        thread, but callable inline (tests, `stats {scrape: true}`)."""
        sampled = 0
        for handle in self.pool.handles():
            if not handle.alive:
                continue
            response = self._worker_request(handle, "stats", {"raw_metrics": True})
            if response is None or not response.get("ok"):
                continue
            result = response["result"]
            snapshot = result.get("metrics_snapshot") or {}
            health = result.get("health") or {}
            gauges = dict(snapshot.get("gauges", {}))
            gauges["worker.sessions"] = float(health.get("sessions", 0) or 0)
            gauges["worker.queue_depth"] = float(health.get("queue_depth", 0) or 0)
            self.history.record(
                f"worker-{handle.slot}", snapshot.get("counters", {}), gauges
            )
            sampled += 1
        own = self.metrics.snapshot()
        self.history.record("router", own.get("counters", {}), own.get("gauges", {}))
        self.metrics.inc("router.scrapes")
        return sampled

    # -- control plane ---------------------------------------------------

    def _worker_request(
        self, handle: WorkerHandle, kind: str, params: dict | None = None
    ) -> dict | None:
        """One control-plane round trip; None when the worker is unreachable."""
        envelope = {"id": None, "type": kind, "params": params or {}}
        try:
            response = self._forward(handle, envelope)
        except (OSError, ValueError):
            self.pool.report_failure(handle.slot, handle.generation)
            return None
        return response

    def _health(self) -> dict:
        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        workers = []
        alive = 0
        for handle in self.pool.handles():
            entry = dict(handle.as_dict())
            if handle.alive:
                response = self._worker_request(handle, "health")
                if response is not None and response.get("ok"):
                    alive += 1
                    result = response["result"]
                    entry["status"] = result["status"]
                    entry["sessions"] = result["sessions"]
                    entry["queue_depth"] = result["queue_depth"]
                else:
                    entry["status"] = "unreachable"
            else:
                entry["status"] = "dead"
            # Burn rate of this shard's forwarded requests against the
            # router-level SLOs (the worst tracker names the pressure).
            trackers = self._slot_trackers(handle.slot)
            statuses = [tracker.status() for tracker in trackers]
            entry["slos"] = statuses
            entry["burn_rate"] = max(
                (status["burn_rate"] for status in statuses), default=0.0
            )
            workers.append(entry)
        slos = [tracker.status() for tracker in self.slos]
        breached = [status["name"] for status in slos if status["status"] == "breached"]
        if not accepting:
            status = "draining"
        elif alive == self.pool.count:
            status = "ok"
        elif alive:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "role": "router",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "workers": workers,
            "alive_workers": alive,
            "shard_map": self.pool.shard_map(),
            "pool": self.pool.stats(),
            "migrations": self.migrations,
            "slos": slos,
            "breached_slos": breached,
            "journal": self.journal.stats(),
            "traces": self.traces.stats(),
        }

    def _stats(self, params: dict | None = None) -> dict:
        from repro import obs

        worker_stats = []
        snapshots = []
        sessions_total = 0
        for handle in self.pool.handles():
            if not handle.alive:
                worker_stats.append({"slot": handle.slot, "status": "dead"})
                continue
            response = self._worker_request(
                handle, "stats", {"raw_metrics": True}
            )
            if response is None or not response.get("ok"):
                worker_stats.append({"slot": handle.slot, "status": "unreachable"})
                continue
            result = response["result"]
            snapshot = result.pop("metrics_snapshot", None)
            if snapshot is not None:
                snapshots.append(snapshot)
            sessions_total += len(result.get("sessions") or [])
            worker_stats.append(
                {
                    "slot": handle.slot,
                    "generation": handle.generation,
                    "status": "ok",
                    "sessions": result.get("sessions"),
                    "engine_cache": result.get("engine_cache"),
                }
            )
        snapshots.append(self.metrics.snapshot())
        merged = MetricsRegistry.merged(snapshots)
        return {
            "role": "router",
            "health": self._health() if params is None or not params.get("shallow") else None,
            "workers": worker_stats,
            "sessions_total": sessions_total,
            "shard_map": self.pool.shard_map(),
            "migrations": self.migrations,
            # One fleet-wide deterministic metrics view: counters summed,
            # gauges maxed, histogram populations pooled across workers.
            "metrics": obs.summarize_snapshot(merged.snapshot()),
            # The scrape loop's bounded history: per-shard request rates
            # (the `valuecheck top` heatmap feed) and windowed deltas.
            "timeseries": self.history.summary(series_base="service.requests"),
            "traces": self.traces.stats(),
        }

    def _events(self, request: dict) -> dict:
        """Merged cluster event stream: the router's journal stably
        merged with every live worker's, ordered on ``(timestamp, slot,
        seq)``.  Paging uses per-source cursors — ``router`` plus
        ``worker-<slot>.g<generation>`` — so a follower stays gap-free
        even when a slot respawns into a fresh journal (the new
        generation is a new source starting at 0)."""
        params = request.get("params", {})
        request_id = request.get("id")
        since = params.get("since", 0)
        limit = params.get("limit")
        kind = params.get("kind")
        cursors = params.get("cursors")
        if not isinstance(since, int) or isinstance(since, bool) or since < 0:
            return error_response(
                request_id, "invalid_params", "'since' must be a non-negative integer"
            )
        if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
            return error_response(request_id, "invalid_params", "'limit' must be an integer")
        if cursors is not None and (
            not isinstance(cursors, dict)
            or not all(
                isinstance(key, str) and isinstance(value, int) and value >= 0
                for key, value in cursors.items()
            )
        ):
            return error_response(
                request_id,
                "invalid_params",
                "'cursors' must map source -> non-negative integer",
            )
        cursors = dict(cursors or {})
        next_cursors = dict(cursors)

        # (ts, slot-order, seq) sorts the merge: the router sorts ahead
        # of workers at equal timestamps (slot order -1), workers by slot.
        merged: list[tuple[float, int, int, dict]] = []
        router_since = cursors.get("router", since)
        next_cursors.setdefault("router", router_since)
        for event in self.journal.events(since=router_since, kind=kind):
            row = dict(event.as_dict(), source="router")
            merged.append((event.ts, -1, event.seq, row))
        worker_params: dict = {}
        if kind is not None:
            worker_params["kind"] = kind
        for handle in self.pool.handles():
            if not handle.alive:
                continue
            source = f"worker-{handle.slot}.g{handle.generation}"
            worker_since = cursors.get(source, 0)
            next_cursors.setdefault(source, worker_since)
            response = self._worker_request(
                handle, "events", dict(worker_params, since=worker_since)
            )
            if response is None or not response.get("ok"):
                continue
            for event in response["result"].get("events", []):
                row = dict(event)
                row["source"] = source
                row.setdefault("slot", handle.slot)
                merged.append(
                    (float(event.get("ts", 0.0)), handle.slot, int(event["seq"]), row)
                )
        merged.sort(key=lambda item: (item[0], item[1], item[2]))
        if limit is not None and limit >= 0:
            merged = merged[:limit]
        # Cursors advance only over *returned* rows: anything cut by the
        # limit is re-fetched on the next page — no gaps.
        for _ts, _order, seq, row in merged:
            source = row["source"]
            next_cursors[source] = max(next_cursors.get(source, 0), seq)
        return ok_response(
            request_id,
            {
                "events": [row for _ts, _order, _seq, row in merged],
                "cursors": next_cursors,
                "journal": self.journal.stats(),
            },
        )

    def _stitched_trace(self, request: dict) -> dict:
        """The ``trace`` request against the cluster: collect every
        fragment of the trace — the router's own forward-hop record plus
        hits from **all** live workers (a migrated session leaves halves
        on two workers) — and stitch them into one cross-process
        timeline with clock-offset-corrected timestamps."""
        request_id = request.get("id")
        params = request.get("params", {})
        request_seq = params.get("request_id")
        trace_id = params.get("trace_id")
        chrome = bool(params.get("chrome"))
        if (request_seq is None) == (trace_id is None):
            return error_response(
                request_id,
                "invalid_params",
                "trace takes exactly one of 'request_id'/'trace_id'",
            )
        if request_seq is not None and (
            not isinstance(request_seq, int) or isinstance(request_seq, bool)
        ):
            return error_response(
                request_id, "invalid_params", "'request_id' must be an integer"
            )
        if trace_id is not None and not isinstance(trace_id, str):
            return error_response(
                request_id, "invalid_params", "'trace_id' must be a string"
            )

        router_records = []
        if request_seq is not None:
            # `request_id` is the *router's* request number; resolve it to
            # the trace id so the worker fragments can be collected too.
            record = self.traces.get(request_seq)
            if record is not None:
                router_records = [record]
                trace_id = record.trace_id
        else:
            router_records = self.traces.records_by_trace_id(trace_id)

        parts = []
        if router_records:
            parts.append(make_part("router", os.getpid(), router_records))
        worker_params: dict = {"all": True}
        if trace_id is not None:
            worker_params["trace_id"] = trace_id
        else:
            # Unresolvable router seq (pre-telemetry record or evicted):
            # fall back to broadcasting the worker-local request number.
            worker_params["request_id"] = request_seq
        for handle in sorted(self.pool.handles(), key=lambda h: h.slot):
            if not handle.alive:
                continue
            response = self._worker_request(handle, "trace", worker_params)
            if response is None or not response.get("ok"):
                continue
            result = response["result"]
            records = result.get("records") or [result]
            parts.append(make_part(f"worker-{handle.slot}", handle.pid, records))
        if not any(part.records for part in parts):
            return error_response(
                request_id, "unknown_trace", "no process holds this trace"
            )
        return ok_response(request_id, stitch(parts, trace_id=trace_id, chrome=chrome))


class _NullSpanCM:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN_CM = _NullSpanCM()
