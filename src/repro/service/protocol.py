"""The analysis service wire protocol: line-delimited JSON.

One request per line, one response line per request, over TCP or stdio.
A request is an envelope::

    {"id": 7, "type": "analyze", "params": {"project_id": "openssl"}}

``id`` is echoed verbatim in the response (any JSON scalar; optional —
fire-and-forget clients may omit it).  ``params`` is optional and
type-specific.  An optional ``trace_id`` string propagates the caller's
trace context: every span the request causes (queue wait, session
lookup, engine stages) is recorded under it, and the completed trace is
retrievable afterwards with a ``trace`` request.  Responses are
either::

    {"id": 7, "ok": true,  "result": {...}, "trace_id": "ci-run-42/3"}
    {"id": 7, "ok": false, "error": {"code": "queue_full",
                                     "message": "...",
                                     "retry_after": 0.5}}

``trace_id`` appears on data-plane responses whether the client set one
or the server assigned one — it is the key the client hands back to
``trace``.

A router forwarding a request additionally attaches ``span_ctx`` — an
object carrying the cross-process span context (``parent_span``: the
router span id the worker's trace hangs under, ``root_ts``: the
router's wall-clock accept epoch, ``origin``: the forwarding process's
label).  Workers store it with the request's trace record so the
router's trace stitcher (:mod:`repro.obs.stitch`) can parent and
clock-align worker spans on the cross-process timeline.  Ordinary
clients never send it.

Error codes are part of the protocol contract (clients dispatch on
them); see :data:`ERROR_CODES`.  Backpressure is explicit: a full queue
yields ``queue_full`` with a ``retry_after`` hint in seconds — the
server never silently drops an accepted request.
"""

from __future__ import annotations

import json
from typing import Any

PROTOCOL_VERSION = 1

#: Hard cap on one request line; oversized requests are rejected before
#: JSON parsing (a malicious or confused client cannot balloon memory).
MAX_REQUEST_BYTES = 4 << 20

REQUEST_TYPES = (
    "open_project",
    "analyze",
    "analyze_diff",
    "explain",
    "baseline",
    "diff_findings",
    "gate",
    "stats",
    "health",
    "trace",
    "events",
    "shutdown",
)

#: Every error code a response may carry.
ERROR_CODES = (
    "bad_json",  # line is not valid JSON
    "bad_request",  # envelope malformed (wrong shapes/fields)
    "unknown_type",  # type not in REQUEST_TYPES
    "too_large",  # request line exceeds the byte cap
    "queue_full",  # backpressure: retry after `retry_after` seconds
    "timeout",  # deadline elapsed before a worker finished it
    "shutting_down",  # server is draining; no new work accepted
    "unknown_project",  # project_id not open (possibly evicted — re-open)
    "unknown_trace",  # trace/request id not in the (bounded) trace store
    "invalid_params",  # params failed type-specific validation
    "internal",  # handler raised; message carries the summary
    "worker_unavailable",  # router: no live worker can serve the shard; retry
)


class ProtocolError(Exception):
    """A request that cannot be accepted, with its wire error code."""

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after


def decode_request(line: str | bytes, max_bytes: int = MAX_REQUEST_BYTES) -> dict:
    """Parse and validate one request line into its envelope dict."""
    raw = line if isinstance(line, bytes) else line.encode()
    if len(raw) > max_bytes:
        raise ProtocolError(
            "too_large", f"request is {len(raw)} bytes (cap {max_bytes})"
        )
    try:
        payload = json.loads(raw)
    except ValueError as error:
        raise ProtocolError("bad_json", f"invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    kind = payload.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("bad_request", "request needs a string 'type'")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(
            "unknown_type",
            f"unknown request type {kind!r} (expected one of {', '.join(REQUEST_TYPES)})",
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad_request", "'params' must be a JSON object")
    request_id = payload.get("id")
    if isinstance(request_id, (dict, list)):
        raise ProtocolError("bad_request", "'id' must be a JSON scalar")
    trace_id = payload.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError("bad_request", "'trace_id' must be a string")
    span_ctx = payload.get("span_ctx")
    if span_ctx is not None and not isinstance(span_ctx, dict):
        raise ProtocolError("bad_request", "'span_ctx' must be a JSON object")
    envelope = {"id": request_id, "type": kind, "params": params}
    if trace_id is not None:
        envelope["trace_id"] = trace_id
    if span_ctx is not None:
        envelope["span_ctx"] = span_ctx
    return envelope


def ok_response(request_id: Any, result: dict, trace_id: str | None = None) -> dict:
    response = {"id": request_id, "ok": True, "result": result}
    if trace_id is not None:
        response["trace_id"] = trace_id
    return response


def error_response(
    request_id: Any,
    code: str,
    message: str,
    retry_after: float | None = None,
    trace_id: str | None = None,
) -> dict:
    assert code in ERROR_CODES, code
    error: dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(retry_after, 3)
    response = {"id": request_id, "ok": False, "error": error}
    if trace_id is not None:
        response["trace_id"] = trace_id
    return response


def encode(payload: dict) -> str:
    """One response/request dict as one wire line (newline-terminated)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
