"""Transports for the analysis service: TCP socket and stdio.

Both speak the same line-delimited JSON protocol and drive the same
:class:`~repro.service.core.AnalysisService`.  The TCP server handles
each connection on its own thread (the service's bounded queue — not
the connection count — is what limits concurrent analysis work); the
stdio loop serves one request stream, which is what editor integrations
spawn.
"""

from __future__ import annotations

import signal
import socket
import socketserver
import sys
import threading
from typing import TextIO

from repro.service.core import AnalysisService, ServiceConfig


class _Connection(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(service.config.max_request_bytes + 2)
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the stream
            if not line.strip():
                continue
            response = service.submit_line(line)
            try:
                self.wfile.write(response.encode())
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if service.stopped:
                return


class ServiceServer(socketserver.ThreadingTCPServer):
    """TCP frontend: one thread per connection, shared service core."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Connection)
        self.service = service
        # A shutdown request must stop the accept loop too, from *inside*
        # a handler thread — BaseServer.shutdown() deadlocks there, so a
        # helper thread performs it.
        service.add_shutdown_listener(
            lambda: threading.Thread(target=self.shutdown, daemon=True).start()
        )

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port

    def serve_background(self) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve_forever, name="svc-accept", daemon=True
        )
        thread.start()
        return thread


def install_signal_handlers(service, signals=(signal.SIGTERM, signal.SIGINT)) -> bool:
    """Make SIGTERM (and SIGINT) trigger the draining shutdown path.

    Without this, only ``KeyboardInterrupt`` drains: an orchestrator
    (worker pool, systemd, Docker) sending SIGTERM would kill the
    process mid-request, dropping accepted work the protocol promised to
    answer.  The handler runs ``shutdown(drain=True)`` — stop accepting,
    answer everything already accepted, then stop — which also fires the
    shutdown listeners that stop a TCP accept loop.

    ``service`` is anything with an idempotent ``shutdown()`` (the
    :class:`AnalysisService` core or a router).  Returns ``False`` when
    handlers cannot be registered (not on the main thread, e.g. under a
    test runner); callers may ignore the result — the Ctrl-C path still
    works regardless.
    """

    def _drain(signum: int, frame) -> None:  # pragma: no cover - signal path
        service.shutdown()

    try:
        for signum in signals:
            signal.signal(signum, _drain)
    except ValueError:  # not the main thread of the main interpreter
        return False
    return True


def serve_tcp(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    block: bool = True,
) -> tuple[AnalysisService, ServiceServer]:
    """Start the daemon on a TCP port; ``port=0`` picks a free one."""
    service = AnalysisService(config).start()
    server = ServiceServer(service, host=host, port=port)
    if block:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            service.shutdown()
        finally:
            server.server_close()
    else:
        server.serve_background()
    return service, server


def serve_stdio(
    config: ServiceConfig | None = None,
    stdin: TextIO | None = None,
    stdout: TextIO | None = None,
) -> AnalysisService:
    """Serve one request stream over stdin/stdout (editor integration).

    Runs until EOF or a ``shutdown`` request; returns the (stopped)
    service so callers can inspect its final stats.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    service = AnalysisService(config).start()
    try:
        for line in stdin:
            if not line.strip():
                continue
            stdout.write(service.submit_line(line))
            stdout.flush()
            if service.stopped:
                break
    finally:
        if not service.stopped:
            service.shutdown()
    return service


def wait_for_port(host: str, port: int, timeout: float = 5.0) -> bool:
    """Poll until the daemon accepts connections (test/tooling helper)."""
    from repro.obs.clock import monotonic

    deadline = monotonic() + timeout
    while monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            continue
    return False
