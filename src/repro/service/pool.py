"""The worker pool: N analysis-service processes behind one router.

Each worker is a real OS process running the existing server loop
(:mod:`repro.service.worker`) with its own :class:`SessionManager` and
engine cache — its own CPU, its own GIL, its own failure domain.  The
pool owns their lifecycle:

* **Spawn** — workers bind port 0 and report the chosen port on stdout
  as a single JSON ready line; the pool refuses to come up until every
  worker reported ready.
* **Health** — a probe thread sends each worker a ``health`` request
  every ``probe_interval`` seconds with a hard deadline.  A worker that
  misses ``probe_failures`` consecutive probes (or whose process exits)
  is declared dead.
* **Respawn** — dead workers are killed and restarted in the same slot
  with a bumped *generation*.  The generation is how the router knows a
  slot's warm state is gone: a session last opened on (slot 2, gen 1)
  must be re-opened before (slot 2, gen 2) can serve it.

Shard placement is a consistent-hash ring over the worker *slots*
(:class:`HashRing`): ``project_id`` hashes to a point, the owner is the
first **alive** slot clockwise.  While a slot is down (respawn in
flight) its range is served by the next slot on the ring; when it comes
back the range returns.  Virtual nodes keep the ranges balanced.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import select
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import EventJournal, MetricsRegistry
from repro.obs.clock import monotonic
from repro.service.client import ServiceClient


class HashRing:
    """Consistent hashing of string keys onto integer slots.

    Deterministic (sha1, fixed virtual-node labels): the same keys map
    to the same slots on every host and every run, which the tests and
    the load generator rely on.
    """

    def __init__(self, slots: int, vnodes: int = 64):
        if slots < 1:
            raise ValueError("need at least one slot")
        self.slots = slots
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for slot in range(slots):
            for vnode in range(vnodes):
                points.append((self._hash(f"slot-{slot}#{vnode}"), slot))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")

    def owner(self, key: str, alive: set[int] | None = None) -> int:
        """The slot owning ``key``: first alive slot clockwise from the
        key's point.  ``alive=None`` means every slot is alive."""
        if alive is not None and not alive:
            raise LookupError("no alive slots")
        index = bisect.bisect_right(self._keys, self._hash(key)) % len(self._points)
        for step in range(len(self._points)):
            slot = self._points[(index + step) % len(self._points)][1]
            if alive is None or slot in alive:
                return slot
        raise LookupError("no alive slots")  # pragma: no cover - guarded above

    def shares(self) -> dict[int, float]:
        """Fraction of the hash space each slot owns (all slots alive)."""
        space = 1 << 64
        shares = {slot: 0 for slot in range(self.slots)}
        previous = self._points[-1][0] - space  # wrap-around arc
        for point, slot in self._points:
            shares[slot] += point - previous
            previous = point
        return {slot: arc / space for slot, arc in shares.items()}


@dataclass(frozen=True)
class WorkerSpec:
    """The ServiceConfig knobs forwarded to every worker process."""

    threads: int = 2  # request worker threads inside each process
    queue_capacity: int = 16
    request_timeout: float = 120.0
    max_sessions: int = 8
    max_session_loc: int | None = None
    executor: str = "serial"
    profiler: bool = False  # per-process sampling profiler (off: N procs sampling is noise)

    def argv(self) -> list[str]:
        args = [
            "--workers", str(self.threads),
            "--queue-capacity", str(self.queue_capacity),
            "--request-timeout", str(self.request_timeout),
            "--max-sessions", str(self.max_sessions),
            "--executor", self.executor,
        ]
        if self.max_session_loc is not None:
            args += ["--max-session-loc", str(self.max_session_loc)]
        if self.profiler:
            args += ["--profiler"]
        return args


@dataclass
class WorkerHandle:
    """One live worker process in one ring slot."""

    slot: int
    generation: int
    process: subprocess.Popen
    host: str
    port: int
    started_at: float = field(default_factory=monotonic)
    alive: bool = True
    consecutive_failures: int = 0
    requests_forwarded: int = 0

    @property
    def pid(self) -> int:
        return self.process.pid

    def process_exited(self) -> bool:
        return self.process.poll() is not None

    def as_dict(self) -> dict:
        return {
            "slot": self.slot,
            "generation": self.generation,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive,
            "uptime_seconds": round(monotonic() - self.started_at, 3),
            "requests_forwarded": self.requests_forwarded,
        }


def spawn_worker(
    host: str = "127.0.0.1",
    spec: WorkerSpec | None = None,
    ready_timeout: float = 30.0,
) -> tuple[subprocess.Popen, int]:
    """Start one worker process; returns (process, bound port).

    The worker binds port 0 and prints one JSON ready line on stdout;
    everything it logs goes to stderr (inherited).  Raises
    ``RuntimeError`` when the worker dies or stays silent past
    ``ready_timeout``.
    """
    spec = spec or WorkerSpec()
    src_root = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_root}:{env.get('PYTHONPATH', '')}".rstrip(":")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.worker", "--host", host, "--port", "0"]
        + spec.argv(),
        stdout=subprocess.PIPE,
        env=env,
    )
    deadline = monotonic() + ready_timeout
    line = b""
    while monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"worker exited with code {process.returncode} before reporting ready"
            )
        readable, _, _ = select.select([process.stdout], [], [], 0.1)
        if readable:
            line = process.stdout.readline()
            break
    if not line:
        process.kill()
        raise RuntimeError(f"worker did not report ready within {ready_timeout}s")
    try:
        ready = json.loads(line)
        port = int(ready["port"])
    except (ValueError, KeyError, TypeError) as error:
        process.kill()
        raise RuntimeError(f"bad worker ready line {line!r}: {error}") from error
    return process, port


class WorkerPool:
    """N worker processes, health-checked, respawned, consistently hashed."""

    def __init__(
        self,
        count: int,
        spec: WorkerSpec | None = None,
        host: str = "127.0.0.1",
        vnodes: int = 64,
        probe_interval: float = 2.0,
        probe_timeout: float = 5.0,
        probe_failures: int = 2,
        journal: EventJournal | None = None,
        metrics: MetricsRegistry | None = None,
        auto_respawn: bool = True,
    ):
        if count < 1:
            raise ValueError("need at least one worker")
        self.count = count
        self.spec = spec or WorkerSpec()
        self.host = host
        self.ring = HashRing(count, vnodes=vnodes)
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_failures = probe_failures
        self.journal = journal
        self.metrics = metrics
        self.auto_respawn = auto_respawn
        self._lock = threading.Lock()
        self._handles: dict[int, WorkerHandle] = {}
        self._respawning: set[int] = set()
        self._stopped = threading.Event()
        self._probe_thread: threading.Thread | None = None
        self.respawns = 0
        self.probes = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerPool":
        for slot in range(self.count):
            self._handles[slot] = self._spawn(slot, generation=1)
        if self.probe_interval > 0:
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="pool-probe", daemon=True
            )
            self._probe_thread.start()
        return self

    def _spawn(self, slot: int, generation: int) -> WorkerHandle:
        process, port = spawn_worker(host=self.host, spec=self.spec)
        handle = WorkerHandle(
            slot=slot, generation=generation, process=process, host=self.host, port=port
        )
        self._emit(
            "worker.spawned",
            slot=slot,
            generation=generation,
            pid=handle.pid,
            port=port,
        )
        return handle

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every worker (they drain — see install_signal_handlers),
        escalate to SIGKILL past the timeout."""
        self._stopped.set()
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            if not handle.process_exited():
                handle.process.terminate()
        deadline = monotonic() + timeout
        for handle in handles:
            remaining = max(0.1, deadline - monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait(timeout=5.0)
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=self.probe_interval + 1.0)

    # -- placement -------------------------------------------------------

    def handle(self, slot: int) -> WorkerHandle:
        with self._lock:
            return self._handles[slot]

    def handles(self) -> list[WorkerHandle]:
        with self._lock:
            return [self._handles[slot] for slot in sorted(self._handles)]

    def alive_slots(self) -> set[int]:
        with self._lock:
            return {slot for slot, h in self._handles.items() if h.alive}

    def owner(self, project_id: str) -> WorkerHandle:
        """The live worker owning ``project_id``'s hash range right now."""
        alive = self.alive_slots()
        if not alive:
            raise LookupError("no alive workers")
        return self.handle(self.ring.owner(project_id, alive))

    def shard_map(self) -> dict:
        """The routing table as reported in ``health``/``stats``."""
        shares = self.ring.shares()
        return {
            "vnodes": self.ring.vnodes,
            "slots": [
                dict(handle.as_dict(), ring_share=round(shares[handle.slot], 4))
                for handle in self.handles()
            ],
        }

    # -- failure handling ------------------------------------------------

    def report_failure(self, slot: int, generation: int) -> None:
        """The router saw a connection to this worker die.  Declare the
        worker dead if its process exited; a live process with one broken
        connection is left to the health probe's verdict."""
        with self._lock:
            handle = self._handles.get(slot)
            if handle is None or handle.generation != generation:
                return  # stale report about an already-replaced worker
            if handle.process_exited():
                self._declare_dead_locked(handle, reason="process_exited")

    def _declare_dead_locked(self, handle: WorkerHandle, reason: str) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self._emit(
            "worker.died",
            slot=handle.slot,
            generation=handle.generation,
            pid=handle.pid,
            reason=reason,
        )
        if self.metrics is not None:
            self.metrics.inc("router.worker.deaths")
        if self.auto_respawn and not self._stopped.is_set():
            if handle.slot not in self._respawning:
                self._respawning.add(handle.slot)
                threading.Thread(
                    target=self._respawn,
                    args=(handle.slot, handle.generation),
                    name=f"pool-respawn-{handle.slot}",
                    daemon=True,
                ).start()

    def _respawn(self, slot: int, dead_generation: int) -> None:
        try:
            old = self.handle(slot)
            if not old.process_exited():
                old.process.kill()
                try:
                    old.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            if self._stopped.is_set():
                return
            fresh = self._spawn(slot, generation=dead_generation + 1)
            # Install under the lock, re-checking the stop flag: stop()
            # sets it *before* snapshotting handles, so a fresh worker
            # spawned while stop() was running would escape its SIGTERM
            # sweep and leak — reap it here instead of installing it.
            with self._lock:
                installed = not self._stopped.is_set()
                if installed:
                    self._handles[slot] = fresh
            if not installed:
                fresh.process.terminate()
                try:
                    fresh.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    fresh.process.kill()
                self._emit(
                    "worker.respawn_aborted", slot=slot, reason="pool_stopping"
                )
                return
            self.respawns += 1
            if self.metrics is not None:
                self.metrics.inc("router.worker.respawns")
            self._emit(
                "worker.respawned",
                slot=slot,
                generation=fresh.generation,
                pid=fresh.pid,
                port=fresh.port,
            )
        except Exception as error:  # pragma: no cover - spawn env failures
            self._emit("worker.respawn_failed", slot=slot, error=str(error))
        finally:
            with self._lock:
                self._respawning.discard(slot)

    # -- health probing --------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stopped.wait(self.probe_interval):
            for handle in self.handles():
                if self._stopped.is_set():
                    return
                if not handle.alive:
                    continue
                self.probes += 1
                if self._probe(handle):
                    handle.consecutive_failures = 0
                    continue
                handle.consecutive_failures += 1
                with self._lock:
                    if handle.process_exited():
                        self._declare_dead_locked(handle, reason="process_exited")
                    elif handle.consecutive_failures >= self.probe_failures:
                        self._declare_dead_locked(handle, reason="probe_timeout")

    def _probe(self, handle: WorkerHandle) -> bool:
        """One ``health`` round-trip under the probe deadline."""
        try:
            client = ServiceClient(
                host=handle.host, port=handle.port, timeout=self.probe_timeout
            )
        except OSError:
            return False
        try:
            response = client.request_raw("health")
            return bool(response.get("ok"))
        except (OSError, ValueError):
            return False
        finally:
            try:
                client.close()
            except OSError:  # pragma: no cover
                pass

    # -- misc ------------------------------------------------------------

    def _emit(self, kind: str, **attrs) -> None:
        if self.journal is not None:
            self.journal.emit(kind, **attrs)

    def stats(self) -> dict:
        handles = self.handles()
        return {
            "workers": self.count,
            "alive": sum(handle.alive for handle in handles),
            "respawns": self.respawns,
            "probes": self.probes,
            "probe_interval": self.probe_interval,
        }
