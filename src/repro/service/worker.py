"""Worker process entry point: ``python -m repro.service.worker``.

One worker is one ordinary analysis service — its own
:class:`AnalysisService` core, :class:`SessionManager`, and engine
cache — bound to a private TCP port.  The only additions over
``valuecheck serve`` are the **ready line** and the signal contract:

* After binding (``--port 0`` picks a free port) the worker prints one
  JSON line on stdout — ``{"ready": true, "port": N, "pid": P}`` — and
  nothing else ever goes to stdout.  The pool parses this line to learn
  where the worker landed.
* SIGTERM triggers the draining shutdown (answer accepted work, then
  exit 0), so the pool's ``stop()`` never drops accepted requests.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.service.core import AnalysisService, ServiceConfig
from repro.service.server import ServiceServer, install_signal_handlers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="One analysis-service worker process (used by the router pool).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--workers", type=int, default=2, help="request threads")
    parser.add_argument("--queue-capacity", type=int, default=16)
    parser.add_argument("--request-timeout", type=float, default=120.0)
    parser.add_argument("--max-sessions", type=int, default=8)
    parser.add_argument("--max-session-loc", type=int, default=None)
    parser.add_argument("--executor", default="serial")
    parser.add_argument("--profiler", action="store_true", default=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        request_timeout=args.request_timeout,
        max_sessions=args.max_sessions,
        max_session_loc=args.max_session_loc,
        executor=args.executor,
        profiler=args.profiler,
    )
    service = AnalysisService(config).start()
    server = ServiceServer(service, host=args.host, port=args.port)
    install_signal_handlers(service)
    host, port = server.address
    sys.stdout.write(
        json.dumps({"ready": True, "host": host, "port": port, "pid": os.getpid()})
        + "\n"
    )
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        service.shutdown()
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
