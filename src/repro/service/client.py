"""A minimal blocking client for the analysis service.

Used by ``valuecheck client``, the load generator, the service
benchmark, and the end-to-end tests.  One socket, synchronous
request/response; honours the protocol's backpressure contract by
retrying ``queue_full`` responses with decorrelated-jitter pacing
(seeded by the server's ``retry_after`` hint) under a total-retry-time
budget — so hundreds of clients backing off a saturated server spread
out instead of thundering back in lockstep.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable

from repro.obs.clock import monotonic
from repro.service.protocol import encode


class ServiceError(RuntimeError):
    """A response with ``ok: false`` surfaced as an exception."""

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class Backoff:
    """Decorrelated-jitter retry pacing with a total-time budget.

    One instance paces the retries of one logical request.  Each call to
    :meth:`next_delay` returns how long to sleep before the next
    attempt, or ``None`` once the cumulative budget is spent (give up).

    The delay is the classic decorrelated jitter: uniformly random
    between ``base`` and three times the *previous* delay, clamped to
    ``cap``.  The first delay is seeded from the server's ``retry_after``
    hint, so the server still steers the floor of the first retry — but
    no two clients sleep the same amount, and repeated rejections spread
    the herd exponentially wider instead of re-synchronizing it.  The
    budget is wall-clock from the first rejection: a recovering server
    is never hammered forever, and a caller blocked on retries has a
    hard bound on how long the call can take.
    """

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 5.0,
        budget_seconds: float = 30.0,
        rng: random.Random | None = None,
        clock: Callable[[], float] = monotonic,
    ):
        if base <= 0 or cap < base:
            raise ValueError("need 0 < base <= cap")
        self.base = base
        self.cap = cap
        self.budget_seconds = budget_seconds
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._started: float | None = None
        self._previous: float | None = None

    def next_delay(self, hint: float | None = None) -> float | None:
        """The next sleep in seconds, or ``None`` when the budget is spent."""
        now = self._clock()
        if self._started is None:
            self._started = now
        remaining = self.budget_seconds - (now - self._started)
        if remaining <= 0:
            return None
        if self._previous is None:
            # First rejection: seed from the server hint (floored at our
            # own base so a zero/absent hint still spaces retries out).
            seed = max(hint or 0.0, self.base)
        else:
            seed = self._previous
        delay = min(self.cap, self._rng.uniform(self.base, max(self.base, 3.0 * seed)))
        delay = min(delay, remaining)
        self._previous = delay
        return delay


class ServiceClient:
    """Blocking line-protocol client over one TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 300.0,
        retry_base: float = 0.05,
        retry_cap: float = 5.0,
        retry_budget_seconds: float = 30.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = monotonic,
    ):
        self.host = host
        self.port = port
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retry_budget_seconds = retry_budget_seconds
        self._rng = rng
        self._sleep = sleep
        self._clock = clock
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._next_id = 0
        #: The ``trace_id`` of the last data-plane response — the key to
        #: hand to :meth:`trace` to fetch that request's full trace.
        self.last_trace_id: str | None = None

    # -- low level -------------------------------------------------------

    def request_raw(
        self, kind: str, params: dict | None = None, trace_id: str | None = None
    ) -> dict:
        """Send one request, return the raw response envelope."""
        self._next_id += 1
        payload = {"id": self._next_id, "type": kind, "params": params or {}}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        self._sock.sendall(encode(payload).encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        import json

        response = json.loads(line)
        if response.get("trace_id"):
            self.last_trace_id = response["trace_id"]
        return response

    def request(
        self,
        kind: str,
        params: dict | None = None,
        retries: int = 0,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Send one request, unwrap the result, raise on error.

        ``retries`` bounds how many ``queue_full`` rejections are retried.
        Retry pacing is decorrelated jitter seeded by the server's
        ``retry_after`` hint, under the client's total retry-time budget
        (``retry_budget_seconds``) — once the budget is spent the
        ``queue_full`` error is raised even if attempts remain.
        ``trace_id`` propagates the caller's trace context; the server
        records every span of the request under it.
        """
        attempt = 0
        backoff: Backoff | None = None
        while True:
            response = self.request_raw(kind, params, trace_id=trace_id)
            if response.get("ok"):
                return response["result"]
            error = response.get("error", {})
            code = error.get("code", "internal")
            if code == "queue_full" and attempt < retries:
                if backoff is None:
                    backoff = Backoff(
                        base=self.retry_base,
                        cap=self.retry_cap,
                        budget_seconds=self.retry_budget_seconds,
                        rng=self._rng,
                        clock=self._clock,
                    )
                delay = backoff.next_delay(error.get("retry_after"))
                if delay is not None:
                    attempt += 1
                    self._sleep(delay)
                    continue
            raise ServiceError(code, error.get("message", ""), error.get("retry_after"))

    # -- typed helpers ---------------------------------------------------

    def open_project(self, trace_id: str | None = None, **params) -> dict:
        return self.request("open_project", params, trace_id=trace_id)

    def analyze(self, project_id: str, trace_id: str | None = None, **params) -> dict:
        return self.request(
            "analyze", {"project_id": project_id, **params}, trace_id=trace_id
        )

    def analyze_diff(
        self, project_id: str, trace_id: str | None = None, **params
    ) -> dict:
        return self.request(
            "analyze_diff", {"project_id": project_id, **params}, trace_id=trace_id
        )

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        return self.request("health")

    def trace(
        self,
        request_id: int | None = None,
        trace_id: str | None = None,
        chrome: bool = False,
        all_records: bool = False,
    ) -> dict:
        """Fetch a completed request's trace (defaults to the last traced
        response this client saw).  Against a router the result is a
        stitched cross-process timeline; ``all_records`` asks a single
        service for every retained record under the trace id instead of
        just the newest."""
        if request_id is None and trace_id is None:
            trace_id = self.last_trace_id
        params: dict = {}
        if request_id is not None:
            params["request_id"] = request_id
        if trace_id is not None:
            params["trace_id"] = trace_id
        if chrome:
            params["chrome"] = True
        if all_records:
            params["all"] = True
        return self.request("trace", params)

    def events(
        self,
        since: int = 0,
        limit: int | None = None,
        kind: str | None = None,
        cursors: dict | None = None,
    ) -> dict:
        """Journal events after a cursor.  Against a router the stream is
        the merged cluster stream; pass back the response's ``cursors``
        dict to page gap-free across every source (the plain ``since``
        covers the router's own journal only)."""
        params: dict = {"since": since}
        if limit is not None:
            params["limit"] = limit
        if kind is not None:
            params["kind"] = kind
        if cursors is not None:
            params["cursors"] = cursors
        return self.request("events", params)

    def shutdown(self, drain: bool = True) -> dict:
        return self.request("shutdown", {"drain": drain})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
