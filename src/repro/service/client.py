"""A minimal blocking client for the analysis service.

Used by ``valuecheck client``, the service benchmark, and the end-to-end
tests.  One socket, synchronous request/response; honours the
protocol's backpressure contract by retrying ``queue_full`` responses
after the server's ``retry_after`` hint.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.service.protocol import encode


class ServiceError(RuntimeError):
    """A response with ``ok: false`` surfaced as an exception."""

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class ServiceClient:
    """Blocking line-protocol client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 300.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._next_id = 0
        #: The ``trace_id`` of the last data-plane response — the key to
        #: hand to :meth:`trace` to fetch that request's full trace.
        self.last_trace_id: str | None = None

    # -- low level -------------------------------------------------------

    def request_raw(
        self, kind: str, params: dict | None = None, trace_id: str | None = None
    ) -> dict:
        """Send one request, return the raw response envelope."""
        self._next_id += 1
        payload = {"id": self._next_id, "type": kind, "params": params or {}}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        self._sock.sendall(encode(payload).encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        import json

        response = json.loads(line)
        if response.get("trace_id"):
            self.last_trace_id = response["trace_id"]
        return response

    def request(
        self,
        kind: str,
        params: dict | None = None,
        retries: int = 0,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """Send one request, unwrap the result, raise on error.

        ``retries`` bounds how many ``queue_full`` rejections are retried
        (sleeping the server-provided ``retry_after`` hint each time).
        ``trace_id`` propagates the caller's trace context; the server
        records every span of the request under it.
        """
        attempt = 0
        while True:
            response = self.request_raw(kind, params, trace_id=trace_id)
            if response.get("ok"):
                return response["result"]
            error = response.get("error", {})
            code = error.get("code", "internal")
            if code == "queue_full" and attempt < retries:
                attempt += 1
                time.sleep(error.get("retry_after", 0.1))
                continue
            raise ServiceError(code, error.get("message", ""), error.get("retry_after"))

    # -- typed helpers ---------------------------------------------------

    def open_project(self, trace_id: str | None = None, **params) -> dict:
        return self.request("open_project", params, trace_id=trace_id)

    def analyze(self, project_id: str, trace_id: str | None = None, **params) -> dict:
        return self.request(
            "analyze", {"project_id": project_id, **params}, trace_id=trace_id
        )

    def analyze_diff(
        self, project_id: str, trace_id: str | None = None, **params
    ) -> dict:
        return self.request(
            "analyze_diff", {"project_id": project_id, **params}, trace_id=trace_id
        )

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        return self.request("health")

    def trace(
        self,
        request_id: int | None = None,
        trace_id: str | None = None,
        chrome: bool = False,
    ) -> dict:
        """Fetch a completed request's trace (defaults to the last traced
        response this client saw)."""
        if request_id is None and trace_id is None:
            trace_id = self.last_trace_id
        params: dict = {}
        if request_id is not None:
            params["request_id"] = request_id
        if trace_id is not None:
            params["trace_id"] = trace_id
        if chrome:
            params["chrome"] = True
        return self.request("trace", params)

    def events(
        self, since: int = 0, limit: int | None = None, kind: str | None = None
    ) -> dict:
        params: dict = {"since": since}
        if limit is not None:
            params["limit"] = limit
        if kind is not None:
            params["kind"] = kind
        return self.request("events", params)

    def shutdown(self, drain: bool = True) -> dict:
        return self.request("shutdown", {"drain": drain})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
