"""The analysis service: a warm-state daemon for incremental requests.

Cold CLI runs re-parse and re-analyse everything; the service keeps
:class:`~repro.core.project.Project` state and the engine's
content-addressed cache resident between requests, so an
``analyze_diff`` after a one-function edit costs one module's
re-analysis instead of a whole-project pass (paper §8.6's incremental
mode, exposed as a server).  See docs/SERVICE.md for the protocol,
backpressure semantics and session eviction policy.

Layers:

* :mod:`repro.service.protocol` — line-delimited JSON envelope, error
  codes, size caps;
* :mod:`repro.service.sessions` — warm :class:`ProjectSession` state and
  the LRU :class:`SessionManager`;
* :mod:`repro.service.core` — :class:`AnalysisService`: bounded queue,
  worker pool, per-request timeouts, handlers, graceful shutdown;
* :mod:`repro.service.server` / :mod:`repro.service.client` — TCP and
  stdio transports, and the blocking client;
* :mod:`repro.service.pool` / :mod:`repro.service.router` /
  :mod:`repro.service.worker` — the sharded multi-process topology: a
  consistent-hashing front-end router over a health-checked pool of
  worker processes (see docs/OPERATIONS.md).
"""

from repro.service.client import Backoff, ServiceClient, ServiceError
from repro.service.core import AnalysisService, ServiceConfig
from repro.service.protocol import (
    ERROR_CODES,
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from repro.service.pool import HashRing, WorkerPool, WorkerSpec
from repro.service.router import Router, RouterConfig
from repro.service.server import (
    ServiceServer,
    install_signal_handlers,
    serve_stdio,
    serve_tcp,
    wait_for_port,
)
from repro.service.sessions import ProjectSession, SessionManager

__all__ = [
    "AnalysisService",
    "Backoff",
    "HashRing",
    "Router",
    "RouterConfig",
    "WorkerPool",
    "WorkerSpec",
    "install_signal_handlers",
    "ERROR_CODES",
    "MAX_REQUEST_BYTES",
    "PROTOCOL_VERSION",
    "ProjectSession",
    "ProtocolError",
    "REQUEST_TYPES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "SessionManager",
    "decode_request",
    "encode",
    "error_response",
    "ok_response",
    "serve_stdio",
    "serve_tcp",
    "wait_for_port",
]
