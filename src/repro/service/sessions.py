"""Warm project sessions and their LRU manager.

A :class:`ProjectSession` is the daemon's unit of warm state: a parsed
:class:`~repro.core.project.Project`, the incremental analyzer bound to
it (whose engine shares the process-wide content-addressed cache), and
the findings of the last full analysis keyed by (file, function).  A
warm ``analyze_diff`` re-analyses only the changed modules, splices the
fresh findings over the stored ones and re-ranks — so the response is a
*full* report at incremental cost.

:class:`SessionManager` bounds the daemon's memory: least-recently-used
sessions are evicted once the entry cap (``max_sessions``) or the
approximate memory cap (``max_total_loc``, lines of warm source) is
exceeded.  Requests against an evicted project get an
``unknown_project`` error and must re-open — eviction is never silent
state corruption.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.findings import Finding
from repro.core.incremental import IncrementalAnalyzer, IncrementalResult
from repro.core.project import Project
from repro.core.ranking import rank_findings
from repro.core.report import Report
from repro.core.valuecheck import ValueCheck, ValueCheckConfig
from repro.obs import EventJournal, MetricsRegistry
from repro.obs.clock import monotonic
from repro.store import BaselineEntry, BaselineFile, FindingsStore, evaluate_gate
from repro.store.fingerprint import project_sources
from repro.vcs.objects import Commit

FunctionKey = tuple[str, str]  # (file, function)


def _group_by_function(findings: list[Finding]) -> dict[FunctionKey, list[Finding]]:
    grouped: dict[FunctionKey, list[Finding]] = {}
    for finding in findings:
        key = (finding.candidate.file, finding.candidate.function)
        grouped.setdefault(key, []).append(finding)
    return grouped


@dataclass
class ProjectSession:
    """One warm project plus everything needed to serve it incrementally."""

    project_id: str
    project: Project
    config: ValueCheckConfig
    analyzer: IncrementalAnalyzer
    #: The serializable recipe this session was opened from: the original
    #: ``open_project`` wire params (source map / root / repo path, rev,
    #: build_config, options) — never live objects.  A router that loses
    #: the worker holding this session replays the recipe on another
    #: worker to re-warm it there (docs/OPERATIONS.md); fingerprints are
    #: deterministic, so the migrated session reports identical findings.
    open_params: dict | None = None
    opened_at: float = field(default_factory=monotonic)
    last_used: float = field(default_factory=monotonic)
    analyze_count: int = 0
    diff_count: int = 0
    # Per-session lock: two workers must not mutate one warm project
    # concurrently (requests for *different* sessions run in parallel).
    lock: threading.Lock = field(default_factory=threading.Lock)
    # Per-session findings store (in-memory): lifecycle state survives
    # analyze_diff, so `baseline`/`diff_findings`/`gate` requests are
    # answered from warm state without re-analysing.
    store: FindingsStore = field(default_factory=FindingsStore.in_memory)
    _findings: dict[FunctionKey, list[Finding]] = field(default_factory=dict)
    _last_report: Report | None = None
    _pending_incrementals: list[IncrementalResult] = field(default_factory=list)

    @classmethod
    def open(
        cls,
        project_id: str,
        project: Project,
        config: ValueCheckConfig,
        rev: int | str | None = None,
        open_params: dict | None = None,
    ) -> "ProjectSession":
        analyzer = IncrementalAnalyzer.from_project(project, config=config, rev=rev)
        return cls(
            project_id=project_id,
            project=project,
            config=config,
            analyzer=analyzer,
            open_params=open_params,
        )

    def describe(self) -> dict:
        """The shard-handoff view: everything another worker needs to
        re-open this session, plus where its warm state currently is."""
        return {
            "project_id": self.project_id,
            "open_params": self.open_params,
            "rev": self.analyzer.current_rev if self.project.repo else None,
        }

    # -- requests --------------------------------------------------------

    def analyze_full(self) -> Report:
        """A full pipeline run over the warm project (modules the engine
        has seen before are content-cache hits, not re-analyses)."""
        with self.lock:
            report = ValueCheck(self.config).analyze(
                self.project, rev=self._rev_for_analysis()
            )
            self._findings = _group_by_function(report.findings)
            self._last_report = report
            self._pending_incrementals.clear()
            self.analyze_count += 1
            self.last_used = monotonic()
            return report

    def analyze_diff(
        self, changes: dict[str, str | None] | None = None, commit: str | None = None
    ) -> tuple[IncrementalResult, Report]:
        """Analyse a change set (or replay one commit) incrementally.

        Returns the raw :class:`IncrementalResult` (what was re-analysed,
        engine cache stats) plus the merged full report: stored findings
        for untouched functions, fresh findings for re-analysed ones,
        everything re-ranked together.
        """
        with self.lock:
            if (changes is None) == (commit is None):
                raise ValueError("analyze_diff takes exactly one of changes/commit")
            rev: int | str | None = None
            if commit is not None:
                resolved = self._resolve_commit(commit)
                changes = {
                    path: resolved.snapshot.get(path)
                    for path in resolved.touched
                    if path.endswith(self.analyzer.suffixes)
                }
                label = resolved.commit_id
                rev = resolved.commit_id
            else:
                label = "edit"
                # Uncommitted edits cannot be blamed: authorship for the
                # *changed* functions would attribute new lines to stale
                # commits.  Sessions without a repo never resolve
                # authorship anyway; sessions with one keep resolving at
                # the current revision (documented approximation).
                rev = self.analyzer.current_rev if self.project.repo else None
            result = self.analyzer.analyze_changes(
                changes, label=label, rev=rev, full_modules=True
            )
            if commit is not None:
                self.analyzer.current_rev = self.project.repo.rev_index(rev)
            merged = self._merge(result, rev)
            self._pending_incrementals.append(result)
            self.diff_count += 1
            self.last_used = monotonic()
            return result, merged

    def explain(self, finding: str | None = None) -> dict:
        """Provenance of the last full analysis, from warm state.

        Merged diff reports carry no provenance (their findings splice
        two runs), so the session falls back to a fresh full analysis —
        warm modules are content-cache hits, so the refresh is cheap.
        """
        report = self._last_report
        if report is None or report.provenance is None:
            report = self.analyze_full()
        with self.lock:
            self.last_used = monotonic()
            if report.provenance is None:
                return {"project_id": self.project_id, "records": [], "rendered": ""}
            records = (
                report.provenance.snapshot()
                if finding is None
                else [
                    record.as_dict()
                    for record in report.provenance.find(finding)
                ]
            )
            rendered = report.explain(finding)
            return {
                "project_id": self.project_id,
                "records": records,
                "rendered": rendered,
            }

    def snapshot_baseline(self, rev: str | None = None) -> dict:
        """Record the session's current findings as a store snapshot.

        After exactly one ``analyze_diff`` since the previous snapshot,
        the store is advanced incrementally — only the fingerprints of
        the re-analysed scope are touched.  Otherwise (cold session, or
        several diffs since the last snapshot) the full merged report is
        re-fingerprinted, which is always correct, just not minimal.
        """
        report = self._current_report()
        with self.lock:
            label = rev or self._next_rev_label()
            if (
                len(self._pending_incrementals) == 1
                and self.store.snapshots()
            ):
                diff = self.store.update_from_incremental(
                    self._pending_incrementals[0], self.project, rev=label
                )
            else:
                diff = self.store.record_snapshot(
                    report.findings, project_sources(self.project), rev=label
                )
            self._pending_incrementals.clear()
            self.last_used = monotonic()
            return {
                "project_id": self.project_id,
                "rev": label,
                "counts": diff.counts(),
                "store": self.store.stats(),
            }

    def diff_findings(self, baseline_rev: str | None = None) -> dict:
        """Classify the current findings against a baseline snapshot,
        read-only — store state is not advanced."""
        report = self._current_report()
        with self.lock:
            diff = self.store.diff(
                report.findings,
                project_sources(self.project),
                rev="worktree",
                baseline_rev=baseline_rev,
            )
            self.last_used = monotonic()
            return dict(diff.as_dict(), project_id=self.project_id)

    def gate(
        self,
        baseline_rev: str | None = None,
        baseline_entries: list[dict] | None = None,
    ) -> dict:
        """The CI gate verdict from warm state: fail only on new or
        reopened findings not covered by the accepted baseline."""
        report = self._current_report()
        with self.lock:
            diff = self.store.diff(
                report.findings,
                project_sources(self.project),
                rev="worktree",
                baseline_rev=baseline_rev,
            )
            baseline = None
            if baseline_entries:
                baseline = BaselineFile(
                    entries=[BaselineEntry.from_dict(row) for row in baseline_entries]
                )
            result = evaluate_gate(diff, baseline)
            self.last_used = monotonic()
            return dict(
                result.as_dict(),
                project_id=self.project_id,
                summary=result.summary(),
            )

    # -- internals -------------------------------------------------------

    def _current_report(self) -> Report:
        """The last analysis (full or merged diff), analysing if cold."""
        with self.lock:
            report = self._last_report
        if report is None:
            report = self.analyze_full()
        return report

    def _next_rev_label(self) -> str:
        return f"snapshot-{len(self.store.snapshots()) + 1}"

    def _rev_for_analysis(self) -> int | None:
        if self.project.repo is None:
            return None
        return self.analyzer.current_rev

    def _resolve_commit(self, commit: str) -> Commit:
        repo = self.project.repo
        if repo is None:
            raise ValueError("session has no repository to replay commits from")
        if commit == "next":
            next_rev = self.analyzer.current_rev + 1
            if next_rev >= len(repo.commits):
                raise ValueError("no commit after the session's current revision")
            return repo.commits[next_rev]
        return repo.commits[repo.rev_index(commit)]

    def _merge(self, result: IncrementalResult, rev: int | str | None) -> Report:
        """Splice incremental findings over the stored full-report view."""
        changed_files = set(result.changed_files)
        deleted = set(result.deleted_files)
        analyzed = set(result.analyzed_functions)
        kept: dict[FunctionKey, list[Finding]] = {
            key: rows
            for key, rows in self._findings.items()
            if key[0] not in changed_files
            and key[0] not in deleted
            and key not in analyzed
        }
        merged_findings: list[Finding] = []
        for rows in kept.values():
            merged_findings.extend(rows)
        merged_findings.extend(result.findings)

        model = None
        if self.project.repo is not None and self.config.use_familiarity:
            from repro.core.familiarity import DokModel

            model = DokModel(self.project.repo, weights=self.config.dok_weights)
        merged_findings = rank_findings(
            merged_findings,
            model=model,
            until_rev=rev,
            use_familiarity=self.config.use_familiarity,
        )

        prune_stats: dict[str, int] = {}
        for finding in merged_findings:
            if finding.pruned_by is not None:
                prune_stats[finding.pruned_by] = prune_stats.get(finding.pruned_by, 0) + 1
        converged = True
        if result.engine_stats is not None:
            converged = not result.engine_stats.non_converged
        report = Report(
            project=self.project.name,
            findings=merged_findings,
            prune_stats=prune_stats,
            seconds=result.seconds,
            engine_stats=result.engine_stats,
            converged=converged,
        )
        self._findings = _group_by_function(merged_findings)
        self._last_report = report
        return report

    # -- introspection ---------------------------------------------------

    def loc(self) -> int:
        return self.project.loc()

    def stats(self) -> dict:
        return {
            "project_id": self.project_id,
            "project": self.project.name,
            "modules": len(self.project.modules),
            "loc": self.loc(),
            "has_repo": self.project.repo is not None,
            "analyze_count": self.analyze_count,
            "diff_count": self.diff_count,
            "idle_seconds": round(monotonic() - self.last_used, 3),
            "reopenable": self.open_params is not None,
        }


class SessionManager:
    """Thread-safe LRU of warm sessions with entry and memory caps."""

    def __init__(
        self,
        max_sessions: int = 8,
        max_total_loc: int | None = None,
        metrics: MetricsRegistry | None = None,
        journal: EventJournal | None = None,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.max_total_loc = max_total_loc
        self.metrics = metrics
        self.journal = journal
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, ProjectSession] = OrderedDict()

    def open(
        self,
        project_id: str,
        project: Project,
        config: ValueCheckConfig,
        rev: int | str | None = None,
        open_params: dict | None = None,
    ) -> tuple[ProjectSession, list[str]]:
        """Create (or replace) a warm session; returns it plus the ids of
        any sessions evicted to make room."""
        session = ProjectSession.open(
            project_id, project, config, rev=rev, open_params=open_params
        )
        with self._lock:
            self._sessions.pop(project_id, None)
            self._sessions[project_id] = session
            evicted = self._evict_locked()
            self._record_gauges_locked()
        if self.journal is not None:
            self.journal.emit(
                "session.opened",
                project_id=project_id,
                modules=len(project.modules),
                loc=session.loc(),
            )
        return session, evicted

    def get(self, project_id: str) -> ProjectSession | None:
        with self._lock:
            session = self._sessions.get(project_id)
            if session is not None:
                self._sessions.move_to_end(project_id)
            return session

    def close(self, project_id: str) -> bool:
        with self._lock:
            found = self._sessions.pop(project_id, None) is not None
            self._record_gauges_locked()
            return found

    def _evict_locked(self) -> list[str]:
        evicted: list[tuple[str, str]] = []  # (project_id, reason)
        while len(self._sessions) > self.max_sessions:
            evicted.append((self._sessions.popitem(last=False)[0], "max_sessions"))
        if self.max_total_loc is not None:
            # Keep at least the most recent session even if it alone
            # exceeds the cap (the daemon must be able to serve it).
            while (
                len(self._sessions) > 1
                and sum(s.loc() for s in self._sessions.values()) > self.max_total_loc
            ):
                evicted.append((self._sessions.popitem(last=False)[0], "max_total_loc"))
        if evicted and self.metrics is not None:
            self.metrics.inc("service.sessions.evicted", len(evicted))
        if self.journal is not None:
            for project_id, reason in evicted:
                self.journal.emit(
                    "session.evicted", project_id=project_id, reason=reason
                )
        return [project_id for project_id, _ in evicted]

    def _record_gauges_locked(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("service.sessions.open", len(self._sessions))

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def stats(self) -> list[dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.stats() for session in sessions]
