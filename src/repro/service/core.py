"""The analysis service core: bounded queue, worker pool, handlers.

Transport-agnostic — the TCP and stdio frontends (``repro.service.server``)
and in-process callers (benchmarks, tests) all drive the same
:meth:`AnalysisService.submit`.  Request lifecycle::

    submit ──▶ bounded queue ──▶ worker pool ──▶ handler ──▶ response
        │ full?                      │ deadline passed?
        ▼                            ▼
    queue_full + retry_after     timeout error (work skipped/dropped)

Guarantees:

* **Explicit backpressure** — a full queue rejects immediately with
  ``retry_after``; an accepted request is always answered.
* **Per-request timeouts** — the deadline covers queue wait plus
  execution; a request whose deadline passes while queued is never
  started, one that overruns while executing has its result dropped and
  a ``timeout`` error returned (threads cannot be killed mid-handler).
* **Graceful shutdown** — new work is rejected with ``shutting_down``,
  every already-accepted request drains through the workers, then the
  pool stops.

``health`` and ``stats`` are answered inline, outside the queue: an
operator must be able to observe a saturated daemon.
"""

from __future__ import annotations

import queue as queue_module
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.core.project import Project
from repro.core.valuecheck import ValueCheckConfig
from repro.engine import DEFAULT_CACHE
from repro.obs.clock import monotonic
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from repro.service.sessions import SessionManager
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs: concurrency, backpressure, session caps."""

    workers: int = 2
    queue_capacity: int = 16
    request_timeout: float = 120.0
    max_request_bytes: int = MAX_REQUEST_BYTES
    max_sessions: int = 8
    max_session_loc: int | None = None  # approximate memory cap, in LOC
    retry_after: float = 0.5  # hint sent with queue_full rejections
    executor: str = "serial"  # engine executor inside each request
    engine_workers: int | None = None


@dataclass
class _Pending:
    """One accepted request travelling from submitter to worker."""

    request: dict
    enqueued_at: float
    deadline: float
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    # Set by the submitter when it gives up waiting: the worker then
    # skips (if not started) or drops the result (if mid-flight).
    abandoned: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class AnalysisService:
    """Long-running analysis daemon core holding warm project state."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.telemetry = obs.Telemetry.fresh()
        self.metrics = self.telemetry.metrics
        self.sessions = SessionManager(
            max_sessions=self.config.max_sessions,
            max_total_loc=self.config.max_session_loc,
            metrics=self.metrics,
        )
        self.started_at = monotonic()
        self._queue: queue_module.Queue[_Pending | None] = queue_module.Queue(
            maxsize=self.config.queue_capacity
        )
        self._state_lock = threading.Lock()
        self._accepting = False
        self._stopped = threading.Event()
        self._inflight = 0
        self._idle = threading.Condition(self._state_lock)
        self._threads: list[threading.Thread] = []
        self._shutdown_listeners: list[Callable[[], None]] = []
        self._project_counter = 0
        self._handlers: dict[str, Callable[[dict], dict]] = {
            "open_project": self._handle_open_project,
            "analyze": self._handle_analyze,
            "analyze_diff": self._handle_analyze_diff,
            "explain": self._handle_explain,
            "baseline": self._handle_baseline,
            "diff_findings": self._handle_diff_findings,
            "gate": self._handle_gate,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnalysisService":
        with self._state_lock:
            if self._threads:
                return self
            self._accepting = True
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        return self

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_listener(self, callback: Callable[[], None]) -> None:
        self._shutdown_listeners.append(callback)

    def shutdown(self, drain: bool = True) -> dict:
        """Stop accepting, drain accepted work, stop the workers."""
        with self._state_lock:
            already = self._stopped.is_set()
            self._accepting = False
        if not already:
            drained = 0
            if drain:
                with self._idle:
                    while self._queue.unfinished_tasks or self._inflight:
                        self._idle.wait(timeout=0.05)
                        drained += 1  # heartbeat only; loop exits when idle
            for _ in self._threads:
                self._queue.put(None)  # wake workers past the (empty) queue
            for thread in self._threads:
                thread.join(timeout=5.0)
            self._stopped.set()
            for callback in self._shutdown_listeners:
                callback()
        return {
            "stopped": True,
            "drained": bool(drain),
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "requests": self.request_counts(),
        }

    # -- submission ------------------------------------------------------

    def submit_line(self, line: str | bytes) -> str:
        """Wire-level entry: one request line in, one response line out."""
        try:
            request = decode_request(line, max_bytes=self.config.max_request_bytes)
        except ProtocolError as error:
            self.metrics.inc("service.requests", type="invalid", outcome=error.code)
            return encode(error_response(None, error.code, error.message))
        return encode(self.submit(request))

    def submit(self, request: dict, timeout: float | None = None) -> dict:
        """Process one decoded request envelope, blocking for the reply."""
        kind = request["type"]
        request_id = request.get("id")
        params = request.get("params", {})

        # Control-plane requests bypass the queue: they must work while
        # the data plane is saturated or draining.
        if kind == "health":
            return ok_response(request_id, self._health())
        if kind == "stats":
            return ok_response(request_id, self._stats())
        if kind == "shutdown":
            summary = self.shutdown(drain=params.get("drain", True))
            self.metrics.inc("service.requests", type=kind, outcome="ok")
            return ok_response(request_id, summary)

        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        if not accepting:
            self.metrics.inc("service.requests", type=kind, outcome="shutting_down")
            return error_response(
                request_id, "shutting_down", "service is draining; no new work accepted"
            )

        budget = timeout if timeout is not None else self.config.request_timeout
        now = monotonic()
        pending = _Pending(request=request, enqueued_at=now, deadline=now + budget)
        try:
            self._queue.put_nowait(pending)
        except queue_module.Full:
            # Shutdown may have flipped _accepting after the check above;
            # a draining queue then looks "full" to late submitters.  A
            # retry_after hint would send the client back to a dying
            # server — tell it the truth instead.
            with self._state_lock:
                accepting = self._accepting and not self._stopped.is_set()
            if not accepting:
                self.metrics.inc(
                    "service.requests", type=kind, outcome="shutting_down"
                )
                return error_response(
                    request_id,
                    "shutting_down",
                    "service is draining; no new work accepted",
                )
            self.metrics.inc("service.requests", type=kind, outcome="rejected")
            self.metrics.inc("service.queue.rejected")
            return error_response(
                request_id,
                "queue_full",
                f"request queue is full ({self.config.queue_capacity} deep); retry",
                retry_after=self.config.retry_after,
            )
        self.metrics.inc("service.requests", type=kind, outcome="accepted")
        self.metrics.set_gauge("service.queue.depth", self._queue.qsize())

        if pending.done.wait(timeout=budget):
            return pending.response  # type: ignore[return-value]
        with pending.lock:
            if pending.done.is_set():  # finished in the race window
                return pending.response  # type: ignore[return-value]
            pending.abandoned = True
        self.metrics.inc("service.requests", type=kind, outcome="timed_out")
        return error_response(
            request_id,
            "timeout",
            f"request exceeded its {budget:.1f}s deadline",
        )

    # -- worker pool -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is None:
                self._queue.task_done()
                return
            try:
                self._process(pending)
            finally:
                self._queue.task_done()
                with self._idle:
                    self._idle.notify_all()

    def _process(self, pending: _Pending) -> None:
        request = pending.request
        kind = request["type"]
        request_id = request.get("id")
        started = monotonic()
        self.metrics.set_gauge("service.queue.depth", self._queue.qsize())
        self.metrics.observe(
            "service.queue.wait_seconds", started - pending.enqueued_at, type=kind
        )
        with pending.lock:
            if pending.abandoned:
                self.metrics.inc("service.requests", type=kind, outcome="expired")
                return
            if started > pending.deadline:
                # Deadline burned entirely in the queue: answer without
                # doing the work (the submitter may still be waiting).
                pending.response = error_response(
                    request_id, "timeout", "deadline expired while queued"
                )
                pending.done.set()
                self.metrics.inc("service.requests", type=kind, outcome="timed_out")
                return
            with self._state_lock:
                self._inflight += 1
        try:
            with self.telemetry.tracer.span(
                "service.request", type=kind, id=str(request_id)
            ):
                handler = self._handlers[kind]
                try:
                    response = ok_response(request_id, handler(request.get("params", {})))
                    outcome = "ok"
                except ProtocolError as error:
                    response = error_response(
                        request_id, error.code, error.message, error.retry_after
                    )
                    outcome = error.code
                except Exception as error:  # noqa: BLE001 — daemon must not die
                    response = error_response(
                        request_id, "internal", f"{type(error).__name__}: {error}"
                    )
                    outcome = "internal"
        finally:
            with self._state_lock:
                self._inflight -= 1
        seconds = monotonic() - started
        self.metrics.observe("service.request_seconds", seconds, type=kind)
        self.metrics.inc("service.requests", type=kind, outcome=outcome)
        with pending.lock:
            if pending.abandoned:
                self.metrics.inc("service.requests", type=kind, outcome="dropped")
                return
            pending.response = response
            pending.done.set()

    # -- handlers --------------------------------------------------------

    def _session_config(self, params: dict) -> ValueCheckConfig:
        options = params.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError("invalid_params", "'options' must be an object")
        return ValueCheckConfig(
            use_authorship=bool(options.get("use_authorship", True)),
            executor=options.get("executor", self.config.executor),
            workers=options.get("workers", self.config.engine_workers),
            module_cache=bool(options.get("module_cache", True)),
        )

    def _handle_open_project(self, params: dict) -> dict:
        sources = params.get("sources")
        root = params.get("root")
        repo = None
        if params.get("repo"):
            repo_path = Path(params["repo"])
            if not repo_path.exists():
                raise ProtocolError("invalid_params", f"repo file {repo_path} not found")
            repo = Repository.load(repo_path)
        from_repo = repo is not None and params.get("rev") is not None
        given = sum(x is not None for x in (sources, root)) + from_repo
        if given != 1:
            raise ProtocolError(
                "invalid_params",
                "open_project needs exactly one of 'sources', 'root', or 'repo'+'rev'",
            )
        if sources is not None:
            if not isinstance(sources, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in sources.items()
            ):
                raise ProtocolError(
                    "invalid_params", "'sources' must map path -> source text"
                )
        elif root is not None:
            root_path = Path(root)
            if not root_path.is_dir():
                raise ProtocolError("invalid_params", f"{root_path} is not a directory")
            sources = {
                str(path.relative_to(root_path)): path.read_text()
                for path in sorted(root_path.rglob("*.c"))
            }
        if not from_repo and not sources:
            raise ProtocolError("invalid_params", "no .c sources to open")

        self._project_counter += 1
        project_id = params.get("project_id") or f"p{self._project_counter}"
        if not isinstance(project_id, str):
            raise ProtocolError("invalid_params", "'project_id' must be a string")
        build_config = set(params.get("build_config", ()) or ())
        config = self._session_config(params)
        if repo is None:
            config = ValueCheckConfig(
                use_authorship=False,
                executor=config.executor,
                workers=config.workers,
                module_cache=config.module_cache,
            )

        warm_started = monotonic()
        if from_repo:
            project = Project.from_repository(
                repo, rev=params["rev"], name=project_id, build_config=build_config
            )
        else:
            project = Project.from_sources(
                sources, name=project_id, repo=repo, build_config=build_config
            )
        session, evicted = self.sessions.open(
            project_id, project, config, rev=params.get("rev") if from_repo else None
        )
        return {
            "project_id": project_id,
            "modules": len(project.modules),
            "loc": project.loc(),
            "has_repo": repo is not None,
            "rev": session.analyzer.current_rev if repo is not None else None,
            "warm_seconds": round(monotonic() - warm_started, 6),
            "evicted": evicted,
        }

    def _session(self, params: dict):
        project_id = params.get("project_id")
        if not isinstance(project_id, str):
            raise ProtocolError("invalid_params", "'project_id' must be a string")
        session = self.sessions.get(project_id)
        if session is None:
            raise ProtocolError(
                "unknown_project",
                f"project {project_id!r} is not open (evicted or never opened); "
                "send open_project again",
            )
        return session

    @staticmethod
    def _finding_rows(report, top: int) -> list[dict]:
        return [finding.to_row() for finding in report.reported()[:top]]

    def _handle_analyze(self, params: dict) -> dict:
        session = self._session(params)
        top = int(params.get("top", 20))
        report = session.analyze_full()
        result = {
            "project_id": session.project_id,
            "counts": report.counts(),
            "prune_stats": dict(report.prune_stats),
            "seconds": round(report.seconds, 6),
            "converged": report.converged,
            "engine": report.engine_stats.as_dict() if report.engine_stats else None,
            "findings": self._finding_rows(report, top),
        }
        if params.get("sarif"):
            result["sarif"] = report.to_sarif(
                include_pruned=bool(params.get("include_pruned", False))
            )
        return result

    def _handle_analyze_diff(self, params: dict) -> dict:
        session = self._session(params)
        changes = params.get("changes")
        commit = params.get("commit")
        if changes is not None and (
            not isinstance(changes, dict)
            or not all(
                isinstance(k, str) and (v is None or isinstance(v, str))
                for k, v in changes.items()
            )
        ):
            raise ProtocolError(
                "invalid_params", "'changes' must map path -> new text (null = delete)"
            )
        top = int(params.get("top", 20))
        try:
            incremental, merged = session.analyze_diff(changes=changes, commit=commit)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error
        result = {
            "project_id": session.project_id,
            "label": incremental.commit_id,
            "changed_files": incremental.changed_files,
            "changed_functions": incremental.changed_functions,
            "analyzed_functions": [list(pair) for pair in incremental.analyzed_functions],
            "deleted_files": incremental.deleted_files,
            "seconds": round(incremental.seconds, 6),
            "engine": (
                incremental.engine_stats.as_dict() if incremental.engine_stats else None
            ),
            "counts": merged.counts(),
            "prune_stats": dict(merged.prune_stats),
            "converged": merged.converged,
            "findings": self._finding_rows(merged, top),
        }
        if params.get("sarif"):
            result["sarif"] = merged.to_sarif(
                include_pruned=bool(params.get("include_pruned", False))
            )
        return result

    def _handle_baseline(self, params: dict) -> dict:
        session = self._session(params)
        rev = params.get("rev")
        if rev is not None and not isinstance(rev, str):
            raise ProtocolError("invalid_params", "'rev' must be a string")
        return session.snapshot_baseline(rev)

    def _handle_diff_findings(self, params: dict) -> dict:
        session = self._session(params)
        baseline_rev = params.get("baseline_rev")
        if baseline_rev is not None and not isinstance(baseline_rev, str):
            raise ProtocolError("invalid_params", "'baseline_rev' must be a string")
        try:
            return session.diff_findings(baseline_rev)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error

    def _handle_gate(self, params: dict) -> dict:
        session = self._session(params)
        baseline_rev = params.get("baseline_rev")
        if baseline_rev is not None and not isinstance(baseline_rev, str):
            raise ProtocolError("invalid_params", "'baseline_rev' must be a string")
        entries = params.get("baseline_entries")
        if entries is not None and (
            not isinstance(entries, list)
            or not all(isinstance(row, dict) for row in entries)
        ):
            raise ProtocolError(
                "invalid_params", "'baseline_entries' must be a list of objects"
            )
        try:
            return session.gate(baseline_rev, entries)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error

    def _handle_explain(self, params: dict) -> dict:
        session = self._session(params)
        finding = params.get("finding")
        if finding is not None and not isinstance(finding, str):
            raise ProtocolError("invalid_params", "'finding' must be a string")
        return session.explain(finding)

    # -- control plane ---------------------------------------------------

    def request_counts(self) -> dict[str, float]:
        return self.metrics.counters_by_name("service.requests")

    def _health(self) -> dict:
        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
            inflight = self._inflight
        return {
            "status": "ok" if accepting else "draining",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_capacity,
            "inflight": inflight,
            "workers": self.config.workers,
            "sessions": len(self.sessions),
        }

    def _stats(self) -> dict:
        cache = DEFAULT_CACHE.stats()
        return {
            "health": self._health(),
            "sessions": self.sessions.stats(),
            "engine_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": cache.entries,
                "hit_rate": round(cache.hit_rate, 4),
            },
            "metrics": obs.summarize_snapshot(self.metrics.snapshot()),
        }

    # -- sinks -----------------------------------------------------------

    def stats_record(self) -> dict:
        """A JSONL record for ``--stats-out`` (``valuecheck stats`` shows
        the service section alongside per-run records)."""
        return {
            "schema": obs.METRICS_SCHEMA_VERSION,
            "project": "<service>",
            "seconds": round(monotonic() - self.started_at, 6),
            "service": {
                "requests": self.request_counts(),
                "sessions": self.sessions.stats(),
                "latency": obs.summarize_snapshot(self.metrics.snapshot())[
                    "histograms"
                ],
            },
        }
