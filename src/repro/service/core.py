"""The analysis service core: bounded queue, worker pool, handlers.

Transport-agnostic — the TCP and stdio frontends (``repro.service.server``)
and in-process callers (benchmarks, tests) all drive the same
:meth:`AnalysisService.submit`.  Request lifecycle::

    submit ──▶ bounded queue ──▶ worker pool ──▶ handler ──▶ response
        │ full?                      │ deadline passed?
        ▼                            ▼
    queue_full + retry_after     timeout error (work skipped/dropped)

Guarantees:

* **Explicit backpressure** — a full queue rejects immediately with
  ``retry_after``; an accepted request is always answered.
* **Per-request timeouts** — the deadline covers queue wait plus
  execution; a request whose deadline passes while queued is never
  started, one that overruns while executing has its result dropped and
  a ``timeout`` error returned (threads cannot be killed mid-handler).
* **Graceful shutdown** — new work is rejected with ``shutting_down``,
  every already-accepted request drains through the workers, then the
  pool stops.

``health`` and ``stats`` are answered inline, outside the queue: an
operator must be able to observe a saturated daemon.
"""

from __future__ import annotations

import queue as queue_module
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.core.project import Project
from repro.core.valuecheck import ValueCheckConfig
from repro.engine import DEFAULT_CACHE
from repro.obs import (
    DEFAULT_SLOS,
    EventJournal,
    SamplingProfiler,
    SloConfig,
    TraceRecord,
    TraceStore,
    Tracer,
    build_trackers,
)
from repro.obs.clock import monotonic
from repro.service.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from repro.service.sessions import SessionManager
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs: concurrency, backpressure, session caps."""

    workers: int = 2
    queue_capacity: int = 16
    request_timeout: float = 120.0
    max_request_bytes: int = MAX_REQUEST_BYTES
    max_sessions: int = 8
    max_session_loc: int | None = None  # approximate memory cap, in LOC
    retry_after: float = 0.5  # hint sent with queue_full rejections
    executor: str = "serial"  # engine executor inside each request
    engine_workers: int | None = None
    # Operational layer (see docs/OBSERVABILITY.md):
    trace_capacity: int = 256  # completed request traces retained
    # Tail-based trace retention: pin slow/errored traces in the ring so
    # load never evicts the traces worth looking at.  None disables the
    # slow pin; errors are pinned by default.
    trace_pin_slow_seconds: float | None = 5.0
    trace_pin_errors: bool = True
    journal_capacity: int = 2048  # lifecycle events retained in the ring
    journal_path: str | None = None  # optional JSONL mirror of the journal
    slos: tuple[SloConfig, ...] = DEFAULT_SLOS
    profiler: bool = True  # always-on sampling profiler
    profile_interval: float = 0.01  # sampler tick, seconds


@dataclass
class _Pending:
    """One accepted request travelling from submitter to worker."""

    request: dict
    enqueued_at: float
    deadline: float
    # Server-assigned monotonically increasing request number and the
    # trace id (client-propagated or server-assigned) all spans of this
    # request are recorded under.
    seq: int = 0
    trace_id: str = ""
    # Cross-process span context attached by a forwarding router
    # (parent span id + the router's wall-clock accept epoch); stored
    # with the trace record so a stitcher can hang this request's spans
    # under the router's forward span.
    span_ctx: dict | None = None
    # The per-request tracer: constructed at accept time, so its epoch
    # is the moment the request entered the queue and queue wait shows
    # up on the request's own timeline.
    tracer: Tracer | None = None
    done: threading.Event = field(default_factory=threading.Event)
    response: dict | None = None
    # Set by the submitter when it gives up waiting: the worker then
    # skips (if not started) or drops the result (if mid-flight).
    abandoned: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class AnalysisService:
    """Long-running analysis daemon core holding warm project state."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.telemetry = obs.Telemetry.fresh()
        self.metrics = self.telemetry.metrics
        self.journal = EventJournal(
            capacity=self.config.journal_capacity,
            sink_path=self.config.journal_path,
        )
        self.traces = TraceStore(
            capacity=self.config.trace_capacity,
            pin_slow_seconds=self.config.trace_pin_slow_seconds,
            pin_errors=self.config.trace_pin_errors,
        )
        self.slos = build_trackers(tuple(self.config.slos))
        # OS thread ident -> the per-request tracer currently running on
        # that worker thread; the profiler resolves samples to pipeline
        # phases through this registry.
        self._tracer_lock = threading.Lock()
        self._request_tracers: dict[int, Tracer] = {}
        self.profiler = SamplingProfiler(
            interval=self.config.profile_interval,
            phase_resolver=self._profiler_phase,
        )
        self.sessions = SessionManager(
            max_sessions=self.config.max_sessions,
            max_total_loc=self.config.max_session_loc,
            metrics=self.metrics,
            journal=self.journal,
        )
        self.started_at = monotonic()
        self._queue: queue_module.Queue[_Pending | None] = queue_module.Queue(
            maxsize=self.config.queue_capacity
        )
        self._state_lock = threading.Lock()
        self._accepting = False
        self._stopped = threading.Event()
        self._inflight = 0
        self._idle = threading.Condition(self._state_lock)
        self._threads: list[threading.Thread] = []
        self._shutdown_listeners: list[Callable[[], None]] = []
        self._project_counter = 0
        self._request_seq = 0
        self._handlers: dict[str, Callable[[dict], dict]] = {
            "open_project": self._handle_open_project,
            "analyze": self._handle_analyze,
            "analyze_diff": self._handle_analyze_diff,
            "explain": self._handle_explain,
            "baseline": self._handle_baseline,
            "diff_findings": self._handle_diff_findings,
            "gate": self._handle_gate,
        }

    # -- lifecycle -------------------------------------------------------

    def _profiler_phase(self, ident: int) -> str | None:
        """Resolve a sampled thread to its current pipeline phase: the
        innermost open span of the request that thread is serving."""
        with self._tracer_lock:
            tracer = self._request_tracers.get(ident)
        if tracer is not None:
            name = tracer.active_name(ident)
            if name is not None:
                return name
        return self.telemetry.tracer.active_name(ident)

    def start(self) -> "AnalysisService":
        with self._state_lock:
            if self._threads:
                return self
            self._accepting = True
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        if self.config.profiler:
            self.profiler.start()
        self.journal.emit(
            "service.start",
            workers=self.config.workers,
            queue_capacity=self.config.queue_capacity,
            profiler=self.config.profiler,
        )
        return self

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_listener(self, callback: Callable[[], None]) -> None:
        self._shutdown_listeners.append(callback)

    def shutdown(self, drain: bool = True) -> dict:
        """Stop accepting, drain accepted work, stop the workers."""
        with self._state_lock:
            already = self._stopped.is_set()
            self._accepting = False
        if not already:
            drained = 0
            if drain:
                with self._idle:
                    while self._queue.unfinished_tasks or self._inflight:
                        self._idle.wait(timeout=0.05)
                        drained += 1  # heartbeat only; loop exits when idle
            for _ in self._threads:
                self._queue.put(None)  # wake workers past the (empty) queue
            for thread in self._threads:
                thread.join(timeout=5.0)
            self._stopped.set()
            self.profiler.stop()
            self.journal.emit(
                "service.shutdown",
                drained=bool(drain),
                uptime_seconds=round(monotonic() - self.started_at, 6),
            )
            self.journal.close()
            for callback in self._shutdown_listeners:
                callback()
        return {
            "stopped": True,
            "drained": bool(drain),
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "requests": self.request_counts(),
        }

    # -- submission ------------------------------------------------------

    def submit_line(self, line: str | bytes) -> str:
        """Wire-level entry: one request line in, one response line out."""
        try:
            request = decode_request(line, max_bytes=self.config.max_request_bytes)
        except ProtocolError as error:
            self.metrics.inc("service.requests", type="invalid", outcome=error.code)
            return encode(error_response(None, error.code, error.message))
        return encode(self.submit(request))

    def submit(self, request: dict, timeout: float | None = None) -> dict:
        """Process one decoded request envelope, blocking for the reply."""
        kind = request["type"]
        request_id = request.get("id")
        params = request.get("params", {})

        # Control-plane requests bypass the queue: they must work while
        # the data plane is saturated or draining.
        if kind == "health":
            return ok_response(request_id, self._health())
        if kind == "stats":
            return ok_response(request_id, self._stats(params))
        if kind == "trace":
            try:
                return ok_response(request_id, self._trace_result(params))
            except ProtocolError as error:
                return error_response(request_id, error.code, error.message)
        if kind == "events":
            try:
                return ok_response(request_id, self._events_result(params))
            except ProtocolError as error:
                return error_response(request_id, error.code, error.message)
        if kind == "shutdown":
            summary = self.shutdown(drain=params.get("drain", True))
            self.metrics.inc("service.requests", type=kind, outcome="ok")
            return ok_response(request_id, summary)

        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
        if not accepting:
            self.metrics.inc("service.requests", type=kind, outcome="shutting_down")
            return error_response(
                request_id, "shutting_down", "service is draining; no new work accepted"
            )

        budget = timeout if timeout is not None else self.config.request_timeout
        now = monotonic()
        with self._state_lock:
            self._request_seq += 1
            seq = self._request_seq
        trace_id = request.get("trace_id") or f"srv-{seq}"
        pending = _Pending(
            request=request,
            enqueued_at=now,
            deadline=now + budget,
            seq=seq,
            trace_id=trace_id,
            span_ctx=request.get("span_ctx"),
            tracer=Tracer(),
        )
        try:
            self._queue.put_nowait(pending)
        except queue_module.Full:
            # Shutdown may have flipped _accepting after the check above;
            # a draining queue then looks "full" to late submitters.  A
            # retry_after hint would send the client back to a dying
            # server — tell it the truth instead.
            with self._state_lock:
                accepting = self._accepting and not self._stopped.is_set()
            if not accepting:
                self.metrics.inc(
                    "service.requests", type=kind, outcome="shutting_down"
                )
                return error_response(
                    request_id,
                    "shutting_down",
                    "service is draining; no new work accepted",
                )
            self.metrics.inc("service.requests", type=kind, outcome="rejected")
            self.metrics.inc("service.queue.rejected")
            self.journal.emit(
                "queue.full",
                request=seq,
                type=kind,
                trace_id=trace_id,
                queue_capacity=self.config.queue_capacity,
            )
            return error_response(
                request_id,
                "queue_full",
                f"request queue is full ({self.config.queue_capacity} deep); retry",
                retry_after=self.config.retry_after,
            )
        self.metrics.inc("service.requests", type=kind, outcome="accepted")
        self.metrics.set_gauge("service.queue.depth", self._queue.qsize())
        self.journal.emit("request.start", request=seq, type=kind, trace_id=trace_id)

        if pending.done.wait(timeout=budget):
            return pending.response  # type: ignore[return-value]
        with pending.lock:
            if pending.done.is_set():  # finished in the race window
                return pending.response  # type: ignore[return-value]
            pending.abandoned = True
        self.metrics.inc("service.requests", type=kind, outcome="timed_out")
        self.journal.emit(
            "deadline.timeout",
            request=seq,
            type=kind,
            trace_id=trace_id,
            budget_seconds=round(budget, 3),
        )
        return error_response(
            request_id,
            "timeout",
            f"request exceeded its {budget:.1f}s deadline",
            trace_id=trace_id,
        )

    # -- worker pool -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is None:
                self._queue.task_done()
                return
            try:
                self._process(pending)
            finally:
                self._queue.task_done()
                with self._idle:
                    self._idle.notify_all()

    def _process(self, pending: _Pending) -> None:
        request = pending.request
        kind = request["type"]
        request_id = request.get("id")
        started = monotonic()
        self.metrics.set_gauge("service.queue.depth", self._queue.qsize())
        self.metrics.observe(
            "service.queue.wait_seconds", started - pending.enqueued_at, type=kind
        )
        with pending.lock:
            if pending.abandoned:
                self.metrics.inc("service.requests", type=kind, outcome="expired")
                self.journal.emit(
                    "request.expired",
                    request=pending.seq,
                    type=kind,
                    trace_id=pending.trace_id,
                )
                return
            if started > pending.deadline:
                # Deadline burned entirely in the queue: answer without
                # doing the work (the submitter may still be waiting).
                pending.response = error_response(
                    request_id,
                    "timeout",
                    "deadline expired while queued",
                    trace_id=pending.trace_id,
                )
                pending.done.set()
                self.metrics.inc("service.requests", type=kind, outcome="timed_out")
                self.journal.emit(
                    "deadline.timeout",
                    request=pending.seq,
                    type=kind,
                    trace_id=pending.trace_id,
                    queued=True,
                )
                return
            with self._state_lock:
                self._inflight += 1

        # The request runs under its own telemetry: a fresh tracer whose
        # epoch is the accept time (queue wait is a span on the same
        # timeline) sharing the service-wide metrics registry.  Pushed as
        # ambient so engine/store spans deep in the pipeline join this
        # request's trace instead of vanishing.
        tracer = pending.tracer or Tracer()
        tracer.add_span(
            "queue.wait", 0.0, tracer.elapsed(), type=kind, trace_id=pending.trace_id
        )
        request_telemetry = obs.Telemetry(tracer=tracer, metrics=self.metrics)
        ident = threading.get_ident()
        with self._tracer_lock:
            self._request_tracers[ident] = tracer
        try:
            with obs.use(request_telemetry):
                with tracer.span(
                    "service.request",
                    type=kind,
                    id=str(request_id),
                    trace_id=pending.trace_id,
                ):
                    handler = self._handlers[kind]
                    try:
                        response = ok_response(
                            request_id,
                            handler(request.get("params", {})),
                            trace_id=pending.trace_id,
                        )
                        outcome = "ok"
                    except ProtocolError as error:
                        response = error_response(
                            request_id,
                            error.code,
                            error.message,
                            error.retry_after,
                            trace_id=pending.trace_id,
                        )
                        outcome = error.code
                    except Exception as error:  # noqa: BLE001 — daemon must not die
                        response = error_response(
                            request_id,
                            "internal",
                            f"{type(error).__name__}: {error}",
                            trace_id=pending.trace_id,
                        )
                        outcome = "internal"
        finally:
            with self._tracer_lock:
                self._request_tracers.pop(ident, None)
            with self._state_lock:
                self._inflight -= 1
        seconds = monotonic() - started
        self.metrics.observe("service.request_seconds", seconds, type=kind)
        self.metrics.inc("service.requests", type=kind, outcome=outcome)
        self.traces.put(
            TraceRecord(
                request_id=pending.seq,
                trace_id=pending.trace_id,
                kind=kind,
                ok=outcome == "ok",
                seconds=seconds,
                spans=tuple(tracer.spans()),
                epoch_ts=tracer.wall_epoch,
                span_ctx=pending.span_ctx,
            )
        )
        for tracker in self.slos:
            tracker.record(kind, seconds, ok=outcome == "ok")
        self.journal.emit(
            "request.end",
            request=pending.seq,
            type=kind,
            trace_id=pending.trace_id,
            outcome=outcome,
            seconds=round(seconds, 6),
        )
        with pending.lock:
            if pending.abandoned:
                self.metrics.inc("service.requests", type=kind, outcome="dropped")
                return
            pending.response = response
            pending.done.set()

    # -- handlers --------------------------------------------------------

    def _session_config(self, params: dict) -> ValueCheckConfig:
        options = params.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError("invalid_params", "'options' must be an object")
        return ValueCheckConfig(
            use_authorship=bool(options.get("use_authorship", True)),
            executor=options.get("executor", self.config.executor),
            workers=options.get("workers", self.config.engine_workers),
            module_cache=bool(options.get("module_cache", True)),
            rules=self._session_rules(params, options),
        )

    @staticmethod
    def _session_rules(params: dict, options: dict) -> tuple[str, ...] | None:
        """Validated rule selection from the wire (top-level ``rules`` or
        ``options.rules``; a list of names or a comma-separated string).
        Unknown names are an invalid_params error naming the registered
        packs, so clients learn the vocabulary from the failure."""
        raw = params.get("rules", options.get("rules"))
        if raw is None:
            return None
        if isinstance(raw, str):
            raw = [name.strip() for name in raw.split(",") if name.strip()]
        if not isinstance(raw, list) or not all(isinstance(n, str) for n in raw):
            raise ProtocolError(
                "invalid_params", "'rules' must be a list of rule-pack names"
            )
        # Imported lazily: repro.rules pulls in repro.core.
        from repro.rules.registry import UnknownRuleError, normalize_rules

        try:
            return normalize_rules(raw)
        except UnknownRuleError as exc:
            raise ProtocolError("invalid_params", str(exc)) from exc

    def _handle_open_project(self, params: dict) -> dict:
        sources = params.get("sources")
        root = params.get("root")
        repo = None
        if params.get("repo"):
            repo_path = Path(params["repo"])
            if not repo_path.exists():
                raise ProtocolError("invalid_params", f"repo file {repo_path} not found")
            repo = Repository.load(repo_path)
        from_repo = repo is not None and params.get("rev") is not None
        given = sum(x is not None for x in (sources, root)) + from_repo
        if given != 1:
            raise ProtocolError(
                "invalid_params",
                "open_project needs exactly one of 'sources', 'root', or 'repo'+'rev'",
            )
        if sources is not None:
            if not isinstance(sources, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in sources.items()
            ):
                raise ProtocolError(
                    "invalid_params", "'sources' must map path -> source text"
                )
        elif root is not None:
            root_path = Path(root)
            if not root_path.is_dir():
                raise ProtocolError("invalid_params", f"{root_path} is not a directory")
            sources = {
                str(path.relative_to(root_path)): path.read_text()
                for path in sorted(root_path.rglob("*.c"))
            }
        if not from_repo and not sources:
            raise ProtocolError("invalid_params", "no .c sources to open")

        self._project_counter += 1
        project_id = params.get("project_id") or f"p{self._project_counter}"
        if not isinstance(project_id, str):
            raise ProtocolError("invalid_params", "'project_id' must be a string")
        build_config = set(params.get("build_config", ()) or ())
        config = self._session_config(params)
        if repo is None:
            config = ValueCheckConfig(
                use_authorship=False,
                executor=config.executor,
                workers=config.workers,
                module_cache=config.module_cache,
                rules=config.rules,
            )

        # The serializable re-open recipe: the wire params that produced
        # this session (already JSON — they arrived on the wire), with
        # the resolved project_id pinned so a replay lands on the same
        # session identity.  A router migrating the session to another
        # worker replays exactly this dict as a fresh open_project.
        open_params = {
            key: params[key]
            for key in ("sources", "root", "repo", "rev", "build_config", "options", "rules")
            if key in params
        }
        open_params["project_id"] = project_id

        warm_started = monotonic()
        if from_repo:
            project = Project.from_repository(
                repo, rev=params["rev"], name=project_id, build_config=build_config
            )
        else:
            project = Project.from_sources(
                sources, name=project_id, repo=repo, build_config=build_config
            )
        session, evicted = self.sessions.open(
            project_id,
            project,
            config,
            rev=params.get("rev") if from_repo else None,
            open_params=open_params,
        )
        return {
            "project_id": project_id,
            "modules": len(project.modules),
            "loc": project.loc(),
            "has_repo": repo is not None,
            "rev": session.analyzer.current_rev if repo is not None else None,
            "warm_seconds": round(monotonic() - warm_started, 6),
            "evicted": evicted,
        }

    def _session(self, params: dict):
        project_id = params.get("project_id")
        if not isinstance(project_id, str):
            raise ProtocolError("invalid_params", "'project_id' must be a string")
        with obs.span("session.lookup", project_id=project_id):
            session = self.sessions.get(project_id)
        if session is None:
            raise ProtocolError(
                "unknown_project",
                f"project {project_id!r} is not open (evicted or never opened); "
                "send open_project again",
            )
        return session

    @staticmethod
    def _finding_rows(report, top: int) -> list[dict]:
        return [finding.to_row() for finding in report.reported()[:top]]

    def _handle_analyze(self, params: dict) -> dict:
        session = self._session(params)
        top = int(params.get("top", 20))
        report = session.analyze_full()
        result = {
            "project_id": session.project_id,
            "counts": report.counts(),
            "prune_stats": dict(report.prune_stats),
            "seconds": round(report.seconds, 6),
            "converged": report.converged,
            "engine": report.engine_stats.as_dict() if report.engine_stats else None,
            "findings": self._finding_rows(report, top),
        }
        if params.get("sarif"):
            result["sarif"] = report.to_sarif(
                include_pruned=bool(params.get("include_pruned", False))
            )
        return result

    def _handle_analyze_diff(self, params: dict) -> dict:
        session = self._session(params)
        changes = params.get("changes")
        commit = params.get("commit")
        if changes is not None and (
            not isinstance(changes, dict)
            or not all(
                isinstance(k, str) and (v is None or isinstance(v, str))
                for k, v in changes.items()
            )
        ):
            raise ProtocolError(
                "invalid_params", "'changes' must map path -> new text (null = delete)"
            )
        top = int(params.get("top", 20))
        try:
            incremental, merged = session.analyze_diff(changes=changes, commit=commit)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error
        result = {
            "project_id": session.project_id,
            "label": incremental.commit_id,
            "changed_files": incremental.changed_files,
            "changed_functions": incremental.changed_functions,
            "analyzed_functions": [list(pair) for pair in incremental.analyzed_functions],
            "deleted_files": incremental.deleted_files,
            "seconds": round(incremental.seconds, 6),
            "engine": (
                incremental.engine_stats.as_dict() if incremental.engine_stats else None
            ),
            "counts": merged.counts(),
            "prune_stats": dict(merged.prune_stats),
            "converged": merged.converged,
            "findings": self._finding_rows(merged, top),
        }
        if params.get("sarif"):
            result["sarif"] = merged.to_sarif(
                include_pruned=bool(params.get("include_pruned", False))
            )
        return result

    def _handle_baseline(self, params: dict) -> dict:
        session = self._session(params)
        rev = params.get("rev")
        if rev is not None and not isinstance(rev, str):
            raise ProtocolError("invalid_params", "'rev' must be a string")
        result = session.snapshot_baseline(rev)
        self.journal.emit(
            "snapshot.recorded",
            project_id=session.project_id,
            rev=result["rev"],
            counts=result["counts"],
        )
        return result

    def _handle_diff_findings(self, params: dict) -> dict:
        session = self._session(params)
        baseline_rev = params.get("baseline_rev")
        if baseline_rev is not None and not isinstance(baseline_rev, str):
            raise ProtocolError("invalid_params", "'baseline_rev' must be a string")
        try:
            return session.diff_findings(baseline_rev)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error

    def _handle_gate(self, params: dict) -> dict:
        session = self._session(params)
        baseline_rev = params.get("baseline_rev")
        if baseline_rev is not None and not isinstance(baseline_rev, str):
            raise ProtocolError("invalid_params", "'baseline_rev' must be a string")
        entries = params.get("baseline_entries")
        if entries is not None and (
            not isinstance(entries, list)
            or not all(isinstance(row, dict) for row in entries)
        ):
            raise ProtocolError(
                "invalid_params", "'baseline_entries' must be a list of objects"
            )
        try:
            result = session.gate(baseline_rev, entries)
        except ValueError as error:
            raise ProtocolError("invalid_params", str(error)) from error
        self.journal.emit(
            "gate.verdict",
            project_id=session.project_id,
            ok=result.get("ok"),
            counts=result.get("counts"),
        )
        return result

    def _handle_explain(self, params: dict) -> dict:
        session = self._session(params)
        finding = params.get("finding")
        if finding is not None and not isinstance(finding, str):
            raise ProtocolError("invalid_params", "'finding' must be a string")
        return session.explain(finding)

    # -- control plane ---------------------------------------------------

    def request_counts(self) -> dict[str, float]:
        return self.metrics.counters_by_name("service.requests")

    def _trace_result(self, params: dict) -> dict:
        """The ``trace`` request: a completed request's spans by server
        request number or (client-propagated) trace id."""
        request_seq = params.get("request_id")
        trace_id = params.get("trace_id")
        if (request_seq is None) == (trace_id is None):
            raise ProtocolError(
                "invalid_params", "trace takes exactly one of 'request_id'/'trace_id'"
            )
        records: list[TraceRecord]
        if request_seq is not None:
            if not isinstance(request_seq, int) or isinstance(request_seq, bool):
                raise ProtocolError("invalid_params", "'request_id' must be an integer")
            record = self.traces.get(request_seq)
            records = [record] if record is not None else []
            wanted = f"request {request_seq}"
        else:
            if not isinstance(trace_id, str):
                raise ProtocolError("invalid_params", "'trace_id' must be a string")
            records = self.traces.records_by_trace_id(trace_id)
            record = records[-1] if records else None
            wanted = f"trace {trace_id!r}"
        if record is None:
            raise ProtocolError(
                "unknown_trace",
                f"{wanted} is not in the trace store "
                f"(still running, never traced, or evicted from the "
                f"{self.traces.capacity}-entry ring)",
            )
        result = record.as_dict()
        if params.get("all"):
            # Every retained record under the trace id, oldest first — a
            # stitching router wants the full set (a migration replay and
            # the forwarded request share one trace id).
            result["records"] = [row.as_dict() for row in records]
        if params.get("chrome"):
            result["chrome"] = self.traces.to_chrome(
                records if params.get("all") else [record]
            )
        return result

    def _events_result(self, params: dict) -> dict:
        """The ``events`` request: journal entries after a cursor."""
        since = params.get("since", 0)
        if not isinstance(since, int) or isinstance(since, bool):
            raise ProtocolError("invalid_params", "'since' must be an integer")
        limit = params.get("limit")
        if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
            raise ProtocolError("invalid_params", "'limit' must be an integer")
        kind = params.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ProtocolError("invalid_params", "'kind' must be a string")
        rows = self.journal.events(since=since, limit=limit, kind=kind)
        return {
            "events": [event.as_dict() for event in rows],
            "journal": self.journal.stats(),
        }

    def _health(self) -> dict:
        with self._state_lock:
            accepting = self._accepting and not self._stopped.is_set()
            inflight = self._inflight
        slos = [tracker.status() for tracker in self.slos]
        breached = [status["name"] for status in slos if status["status"] == "breached"]
        if not accepting:
            status = "draining"
        elif breached:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(monotonic() - self.started_at, 6),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_capacity,
            "inflight": inflight,
            "workers": self.config.workers,
            "sessions": len(self.sessions),
            "slos": slos,
            "breached_slos": breached,
            "journal": self.journal.stats(),
            "traces": self.traces.stats(),
            "profiler": self.profiler.stats(),
        }

    def _stats(self, params: dict | None = None) -> dict:
        cache = DEFAULT_CACHE.stats()
        result = {
            "health": self._health(),
            "sessions": self.sessions.stats(),
            "engine_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": cache.entries,
                "hit_rate": round(cache.hit_rate, 4),
            },
            "metrics": obs.summarize_snapshot(self.metrics.snapshot()),
            "profile_phases": self.profiler.phase_seconds(),
        }
        if params and params.get("raw_metrics"):
            # The un-summarized registry snapshot: what a router needs to
            # fold per-worker metrics into one deterministic view with
            # MetricsRegistry.merged (histogram values, not percentiles).
            result["metrics_snapshot"] = self.metrics.snapshot()
        return result

    # -- sinks -----------------------------------------------------------

    def stats_record(self) -> dict:
        """A JSONL record for ``--stats-out`` (``valuecheck stats`` shows
        the service section alongside per-run records)."""
        return {
            "schema": obs.METRICS_SCHEMA_VERSION,
            "project": "<service>",
            "seconds": round(monotonic() - self.started_at, 6),
            "service": {
                "requests": self.request_counts(),
                "sessions": self.sessions.stats(),
                "latency": obs.summarize_snapshot(self.metrics.snapshot())[
                    "histograms"
                ],
            },
        }
