"""Dominator tree and dominance frontiers.

Implements "A Simple, Fast Dominance Algorithm" (Cooper, Harvey &
Kennedy): iterate ``idom`` over reverse postorder with an intersection
walk, then derive dominance frontiers from join-point predecessors.
Blocks unreachable from entry have no dominator entry (and can host no
phi)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.traversal import reverse_postorder
from repro.ir.module import BasicBlock, Function


@dataclass
class DominatorTree:
    """Immediate-dominator relation keyed by block identity."""

    function: Function
    idom: dict[int, BasicBlock] = field(default_factory=dict)  # block id -> idom block
    _order: dict[int, int] = field(default_factory=dict)  # block id -> RPO index
    _blocks: dict[int, BasicBlock] = field(default_factory=dict)

    def immediate_dominator(self, block: BasicBlock) -> BasicBlock | None:
        if id(block) == id(self.function.entry):
            return None
        return self.idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: BasicBlock | None = b
        seen = 0
        while node is not None and seen <= len(self.function.blocks):
            if node is a:
                return True
            if id(node) == id(self.function.entry):
                return False
            node = self.idom.get(id(node))
            seen += 1
        return False

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        return [
            candidate
            for candidate in self.function.blocks
            if id(candidate) in self.idom and self.idom[id(candidate)] is block
        ]

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._order


def compute_dominators(function: Function) -> DominatorTree:
    """Cooper–Harvey–Kennedy iterative dominance."""
    rpo = reverse_postorder(function)
    tree = DominatorTree(function=function)
    tree._order = {id(block): index for index, block in enumerate(rpo)}
    tree._blocks = {id(block): block for block in rpo}
    if not rpo:
        return tree
    entry = rpo[0]
    idom: dict[int, BasicBlock] = {id(entry): entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while tree._order[id(a)] > tree._order[id(b)]:
                a = idom[id(a)]
            while tree._order[id(b)] > tree._order[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo[1:]:
            processed = [
                predecessor
                for predecessor in block.predecessors
                if id(predecessor) in idom and id(predecessor) in tree._order
            ]
            if not processed:
                continue
            new_idom = processed[0]
            for predecessor in processed[1:]:
                new_idom = intersect(predecessor, new_idom)
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    tree.idom = {bid: dom for bid, dom in idom.items() if bid != id(entry)}
    return tree


def dominance_frontiers(function: Function, tree: DominatorTree | None = None) -> dict[int, list[BasicBlock]]:
    """DF(b) per block id — the classic "runner" derivation."""
    if tree is None:
        tree = compute_dominators(function)
    frontiers: dict[int, list[BasicBlock]] = {id(block): [] for block in function.blocks}
    for block in function.blocks:
        if not tree.is_reachable(block) or len(block.predecessors) < 2:
            continue
        for predecessor in block.predecessors:
            if not tree.is_reachable(predecessor):
                continue
            runner: BasicBlock | None = predecessor
            stop = tree.immediate_dominator(block)
            while runner is not None and runner is not stop:
                bucket = frontiers[id(runner)]
                if block not in bucket:
                    bucket.append(block)
                if id(runner) == id(function.entry):
                    break
                runner = tree.immediate_dominator(runner)
    return frontiers
