"""SSA view of the IR: dominators, dominance frontiers, phi placement.

SVF — the paper's value-flow substrate — builds *sparse* value-flow
graphs on top of SSA form.  This package reproduces that layer:

* :mod:`repro.ssa.dominators` — immediate dominators via the classic
  Cooper–Harvey–Kennedy iterative algorithm, plus dominance frontiers;
* :mod:`repro.ssa.construction` — pruned-SSA phi placement and renaming
  over the load/store IR.  The IR itself is left untouched; SSA is a
  side structure mapping every load to the unique SSA definition (store
  or phi) it observes.

The sparse value-flow graph in :mod:`repro.pointer.sparse_vfg` consumes
this to give the detector exact def→use edges (equivalent to, and
cross-checked against, the reaching-definitions chains)."""

from repro.ssa.dominators import DominatorTree, compute_dominators, dominance_frontiers
from repro.ssa.construction import SsaForm, build_ssa, PhiNode, SsaDef

__all__ = [
    "DominatorTree",
    "compute_dominators",
    "dominance_frontiers",
    "SsaForm",
    "build_ssa",
    "PhiNode",
    "SsaDef",
]
