"""Pruned-SSA construction over the load/store IR.

SSA is built *per tracked variable* as a side structure — the IR is not
rewritten.  Each :class:`SsaDef` is a store, a phi, or the implicit
"undef" entry version; every load of a tracked variable is mapped to the
unique definition it observes.  Whole-struct stores define the aggregate
*and* every known field pseudo-variable (matching the kill semantics of
the liveness analysis).

Phi placement is the standard iterated-dominance-frontier construction;
renaming is a dominator-tree walk with per-variable version stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Load, Store
from repro.ir.module import BasicBlock, Function
from repro.ssa.dominators import DominatorTree, compute_dominators, dominance_frontiers


@dataclass(eq=False)
class SsaDef:
    """One SSA definition of ``var``: a store (store_uid set), a phi
    (phi set), or the entry 'undef' version (neither set)."""

    var: str
    version: int
    store_uid: int | None = None
    phi: "PhiNode | None" = None

    @property
    def is_undef(self) -> bool:
        return self.store_uid is None and self.phi is None

    def __repr__(self) -> str:
        kind = "store" if self.store_uid is not None else ("phi" if self.phi else "undef")
        return f"{self.var}_{self.version}<{kind}>"


@dataclass(eq=False)
class PhiNode:
    var: str
    block_id: int
    operands: list[SsaDef] = field(default_factory=list)
    result: SsaDef | None = None


@dataclass
class SsaForm:
    """The SSA view of one function."""

    function: Function
    tree: DominatorTree
    # load uid -> SSA defs observed (several for whole-struct reads,
    # which consume the aggregate's and every field's current version)
    use_defs: dict[int, list[SsaDef]] = field(default_factory=dict)
    phis: dict[int, list[PhiNode]] = field(default_factory=dict)  # block id -> phis
    defs_by_store: dict[int, list[SsaDef]] = field(default_factory=dict)
    version_counts: dict[str, int] = field(default_factory=dict)

    def defs_of_load(self, load: Load) -> list[SsaDef]:
        return self.use_defs.get(load.uid, [])

    def all_phis(self) -> list[PhiNode]:
        return [phi for bucket in self.phis.values() for phi in bucket]

    def store_has_direct_use(self, store: Store) -> bool:
        """True if some load (possibly through phis) observes this store."""
        targets = {id(d) for d in self.defs_by_store.get(store.uid, [])}
        if not targets:
            return False
        # Transitive closure through phi operands.
        reachable = set(targets)
        changed = True
        while changed:
            changed = False
            for phi in self.all_phis():
                if phi.result is not None and id(phi.result) not in reachable:
                    if any(id(op) in reachable for op in phi.operands):
                        reachable.add(id(phi.result))
                        changed = True
        return any(
            id(ssa_def) in reachable
            for defs in self.use_defs.values()
            for ssa_def in defs
        )


def _field_family(function: Function) -> dict[str, list[str]]:
    """base struct var -> its observed field pseudo-vars."""
    family: dict[str, list[str]] = {}
    for instruction in function.instructions():
        for addr in instruction.addresses():
            tracked = addr.tracked_var()
            if tracked and "#" in tracked:
                base = tracked.split("#", 1)[0]
                bucket = family.setdefault(base, [])
                if tracked not in bucket:
                    bucket.append(tracked)
    return family


def _defined_vars(store: Store, family: dict[str, list[str]]) -> list[str]:
    tracked = store.addr.tracked_var() if store.addr is not None else None
    if tracked is None:
        return []
    defined = [tracked]
    if "#" not in tracked:
        defined.extend(family.get(tracked, ()))
    return defined


def build_ssa(function: Function) -> SsaForm:
    """Construct the SSA view for ``function``."""
    tree = compute_dominators(function)
    frontiers = dominance_frontiers(function, tree)
    family = _field_family(function)
    form = SsaForm(function=function, tree=tree)

    # 1. Collect def sites per variable.
    def_blocks: dict[str, set[int]] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, Store):
                for var in _defined_vars(instruction, family):
                    def_blocks.setdefault(var, set()).add(id(block))

    blocks_by_id = {id(block): block for block in function.blocks}

    # 2. Iterated dominance frontier phi placement.
    phi_sites: dict[tuple[int, str], PhiNode] = {}
    for var, sites in sorted(def_blocks.items()):
        worklist = list(sites)
        placed: set[int] = set()
        while worklist:
            block_id = worklist.pop()
            for frontier_block in frontiers.get(block_id, ()):  # join points
                fid = id(frontier_block)
                if fid in placed:
                    continue
                placed.add(fid)
                phi = PhiNode(var=var, block_id=fid)
                phi_sites[(fid, var)] = phi
                form.phis.setdefault(fid, []).append(phi)
                if fid not in sites:
                    worklist.append(fid)

    # 3. Renaming over the dominator tree.
    stacks: dict[str, list[SsaDef]] = {}

    def new_def(var: str, store_uid: int | None = None, phi: PhiNode | None = None) -> SsaDef:
        version = form.version_counts.get(var, 0)
        form.version_counts[var] = version + 1
        ssa_def = SsaDef(var=var, version=version, store_uid=store_uid, phi=phi)
        stacks.setdefault(var, []).append(ssa_def)
        return ssa_def

    def top(var: str) -> SsaDef:
        stack = stacks.get(var)
        if not stack:
            return new_def(var)  # entry 'undef' version
        return stack[-1]

    def visit(block: BasicBlock) -> None:
        pushed: list[str] = []
        for phi in form.phis.get(id(block), ()):  # phi defs first
            phi.result = new_def(phi.var, phi=phi)
            pushed.append(phi.var)
        for instruction in block.instructions:
            if isinstance(instruction, Load):
                tracked = instruction.addr.tracked_var() if instruction.addr is not None else None
                if tracked is not None and (tracked in def_blocks or tracked in stacks):
                    form.use_defs.setdefault(instruction.uid, []).append(top(tracked))
                # Whole-struct reads also consume the current field versions.
                if tracked is not None and "#" not in tracked:
                    for field_var in family.get(tracked, ()):
                        if field_var in def_blocks or field_var in stacks:
                            form.use_defs.setdefault(instruction.uid, []).append(top(field_var))
            elif isinstance(instruction, Store):
                for var in _defined_vars(instruction, family):
                    ssa_def = new_def(var, store_uid=instruction.uid)
                    form.defs_by_store.setdefault(instruction.uid, []).append(ssa_def)
                    pushed.append(var)
        for successor in block.successors:
            for phi in form.phis.get(id(successor), ()):  # wire operands
                phi.operands.append(top(phi.var))
        for child in tree.children(block):
            visit(child)
        for var in reversed(pushed):
            stacks[var].pop()

    if function.blocks:
        visit(function.entry)
    return form
