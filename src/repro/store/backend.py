"""Persistence backends for the findings store.

Two interchangeable backends behind one small row-oriented interface:

* :class:`MemoryBackend` — dict-based, for tests and per-session warm
  state inside the analysis service;
* :class:`SqliteBackend` — one SQLite file (WAL mode), for the CLI's
  ``snapshot``/``gate``/``triage`` workflow where store state must
  survive between CI runs.

Both are **concurrent-reader safe**: the SQLite backend opens one
connection per thread (WAL lets readers proceed while a writer
commits) and serialises writes behind a lock; the memory backend takes
the same lock around every operation.  The store's lifecycle logic
(``repro.store.store``) is backend-agnostic — backends only move rows.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable

#: Bump when the row layout changes; SQLite files created by a newer
#: schema refuse to open under older code instead of mis-reading rows.
STORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StoredFinding:
    """One tracked finding: identity, last-known location, lifecycle."""

    fingerprint: str  # primary — the row key
    location: str  # secondary, for fuzzy re-matching
    file: str
    function: str
    var: str
    kind: str
    line: int  # last-seen line (display only, never identity)
    status: str = "active"  # 'active' | 'fixed'
    first_seen: str = ""  # rev label of the snapshot that introduced it
    last_seen: str = ""  # rev label it was last present in
    fixed_rev: str | None = None  # rev label of the snapshot that fixed it
    analysis_version: str = ""  # engine version that produced it

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "location": self.location,
            "file": self.file,
            "function": self.function,
            "var": self.var,
            "kind": self.kind,
            "line": self.line,
            "status": self.status,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "fixed_rev": self.fixed_rev,
            "analysis_version": self.analysis_version,
        }


@dataclass(frozen=True)
class SnapshotMeta:
    """One recorded analysis snapshot."""

    rev: str
    seq: int  # monotonically increasing snapshot number
    findings: int  # active findings at this snapshot
    analysis_version: str = ""

    def as_dict(self) -> dict:
        return {
            "rev": self.rev,
            "seq": self.seq,
            "findings": self.findings,
            "analysis_version": self.analysis_version,
        }


class MemoryBackend:
    """In-process store state; the reference backend semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, StoredFinding] = {}
        self._snapshots: list[SnapshotMeta] = []
        self._members: dict[str, tuple[str, ...]] = {}  # rev → fingerprints

    # -- entries ---------------------------------------------------------

    def entries(self) -> dict[str, StoredFinding]:
        with self._lock:
            return dict(self._entries)

    def upsert_entries(self, rows: Iterable[StoredFinding]) -> None:
        with self._lock:
            for row in rows:
                self._entries[row.fingerprint] = row

    def replace_fingerprint(self, old: str, row: StoredFinding) -> None:
        """Re-key an entry after a fuzzy re-match updated its primary."""
        with self._lock:
            self._entries.pop(old, None)
            self._entries[row.fingerprint] = row

    # -- snapshots -------------------------------------------------------

    def snapshots(self) -> list[SnapshotMeta]:
        with self._lock:
            return list(self._snapshots)

    def latest(self) -> SnapshotMeta | None:
        with self._lock:
            return self._snapshots[-1] if self._snapshots else None

    def add_snapshot(self, meta: SnapshotMeta, members: Iterable[str]) -> None:
        with self._lock:
            self._snapshots = [s for s in self._snapshots if s.rev != meta.rev]
            self._snapshots.append(meta)
            self._members[meta.rev] = tuple(members)

    def snapshot_members(self, rev: str) -> tuple[str, ...] | None:
        with self._lock:
            return self._members.get(rev)

    def close(self) -> None:  # symmetry with SqliteBackend
        pass


class SqliteBackend:
    """SQLite-file store state (WAL journal, per-thread connections)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._write_lock = threading.Lock()
        self._local = threading.local()
        self._init_schema()

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self.path)
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            self._local.connection = connection
        return connection

    def _init_schema(self) -> None:
        with self._write_lock:
            connection = self._connect()
            connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta (
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS findings (
                    fingerprint TEXT PRIMARY KEY,
                    location TEXT NOT NULL,
                    file TEXT NOT NULL, function TEXT NOT NULL,
                    var TEXT NOT NULL, kind TEXT NOT NULL,
                    line INTEGER NOT NULL,
                    status TEXT NOT NULL,
                    first_seen TEXT NOT NULL, last_seen TEXT NOT NULL,
                    fixed_rev TEXT, analysis_version TEXT NOT NULL);
                CREATE INDEX IF NOT EXISTS findings_location
                    ON findings (location);
                CREATE TABLE IF NOT EXISTS snapshots (
                    rev TEXT PRIMARY KEY, seq INTEGER NOT NULL,
                    findings INTEGER NOT NULL,
                    analysis_version TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS snapshot_members (
                    rev TEXT NOT NULL, fingerprint TEXT NOT NULL,
                    PRIMARY KEY (rev, fingerprint));
                """
            )
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (json.dumps(STORE_SCHEMA_VERSION),),
                )
            elif json.loads(row["value"]) > STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"store {self.path} was written by a newer schema "
                    f"({row['value']} > {STORE_SCHEMA_VERSION})"
                )
            connection.commit()

    # -- entries ---------------------------------------------------------

    @staticmethod
    def _row_to_finding(row: sqlite3.Row) -> StoredFinding:
        return StoredFinding(
            fingerprint=row["fingerprint"],
            location=row["location"],
            file=row["file"],
            function=row["function"],
            var=row["var"],
            kind=row["kind"],
            line=row["line"],
            status=row["status"],
            first_seen=row["first_seen"],
            last_seen=row["last_seen"],
            fixed_rev=row["fixed_rev"],
            analysis_version=row["analysis_version"],
        )

    def entries(self) -> dict[str, StoredFinding]:
        rows = self._connect().execute("SELECT * FROM findings").fetchall()
        return {row["fingerprint"]: self._row_to_finding(row) for row in rows}

    def upsert_entries(self, rows: Iterable[StoredFinding]) -> None:
        with self._write_lock:
            connection = self._connect()
            connection.executemany(
                """
                INSERT INTO findings (fingerprint, location, file, function,
                    var, kind, line, status, first_seen, last_seen, fixed_rev,
                    analysis_version)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (fingerprint) DO UPDATE SET
                    location=excluded.location, file=excluded.file,
                    function=excluded.function, var=excluded.var,
                    kind=excluded.kind, line=excluded.line,
                    status=excluded.status, first_seen=excluded.first_seen,
                    last_seen=excluded.last_seen, fixed_rev=excluded.fixed_rev,
                    analysis_version=excluded.analysis_version
                """,
                [
                    (
                        row.fingerprint, row.location, row.file, row.function,
                        row.var, row.kind, row.line, row.status,
                        row.first_seen, row.last_seen, row.fixed_rev,
                        row.analysis_version,
                    )
                    for row in rows
                ],
            )
            connection.commit()

    def replace_fingerprint(self, old: str, row: StoredFinding) -> None:
        # Delete + re-insert in ONE transaction: a concurrent reader must
        # never observe the entry missing mid-rekey.
        with self._write_lock:
            connection = self._connect()
            connection.execute("DELETE FROM findings WHERE fingerprint = ?", (old,))
            connection.execute(
                """
                INSERT INTO findings (fingerprint, location, file, function,
                    var, kind, line, status, first_seen, last_seen, fixed_rev,
                    analysis_version)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (fingerprint) DO UPDATE SET
                    location=excluded.location, file=excluded.file,
                    function=excluded.function, var=excluded.var,
                    kind=excluded.kind, line=excluded.line,
                    status=excluded.status, first_seen=excluded.first_seen,
                    last_seen=excluded.last_seen, fixed_rev=excluded.fixed_rev,
                    analysis_version=excluded.analysis_version
                """,
                (
                    row.fingerprint, row.location, row.file, row.function,
                    row.var, row.kind, row.line, row.status,
                    row.first_seen, row.last_seen, row.fixed_rev,
                    row.analysis_version,
                ),
            )
            connection.commit()

    # -- snapshots -------------------------------------------------------

    def snapshots(self) -> list[SnapshotMeta]:
        rows = self._connect().execute(
            "SELECT * FROM snapshots ORDER BY seq"
        ).fetchall()
        return [
            SnapshotMeta(
                rev=row["rev"], seq=row["seq"], findings=row["findings"],
                analysis_version=row["analysis_version"],
            )
            for row in rows
        ]

    def latest(self) -> SnapshotMeta | None:
        snapshots = self.snapshots()
        return snapshots[-1] if snapshots else None

    def add_snapshot(self, meta: SnapshotMeta, members: Iterable[str]) -> None:
        with self._write_lock:
            connection = self._connect()
            connection.execute("DELETE FROM snapshots WHERE rev = ?", (meta.rev,))
            connection.execute(
                "DELETE FROM snapshot_members WHERE rev = ?", (meta.rev,)
            )
            connection.execute(
                "INSERT INTO snapshots (rev, seq, findings, analysis_version) "
                "VALUES (?, ?, ?, ?)",
                (meta.rev, meta.seq, meta.findings, meta.analysis_version),
            )
            connection.executemany(
                "INSERT INTO snapshot_members (rev, fingerprint) VALUES (?, ?)",
                [(meta.rev, fingerprint) for fingerprint in members],
            )
            connection.commit()

    def snapshot_members(self, rev: str) -> tuple[str, ...] | None:
        connection = self._connect()
        if connection.execute(
            "SELECT 1 FROM snapshots WHERE rev = ?", (rev,)
        ).fetchone() is None:
            return None
        rows = connection.execute(
            "SELECT fingerprint FROM snapshot_members WHERE rev = ? "
            "ORDER BY fingerprint",
            (rev,),
        ).fetchall()
        return tuple(row["fingerprint"] for row in rows)

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None


def mark_fixed(row: StoredFinding, rev: str) -> StoredFinding:
    return replace(row, status="fixed", fixed_rev=rev)


def mark_active(row: StoredFinding, rev: str, line: int | None = None) -> StoredFinding:
    return replace(
        row,
        status="active",
        last_seen=rev,
        fixed_rev=None,
        line=row.line if line is None else line,
    )
