"""The persistent findings store: snapshots, lifecycle, revision diffs.

:class:`FindingsStore` tracks every reported finding across analysis
snapshots by its stable fingerprint (see :mod:`repro.store.fingerprint`)
and classifies each one relative to a baseline snapshot:

====================  =================================================
``new``               fingerprint never seen before
``persistent``        present in the baseline (exact primary match, or
                      a fuzzy location re-match after a refactor)
``fixed``             in the baseline, absent now
``reopened``          previously transitioned to fixed, present again
====================  =================================================

The states map onto SARIF 2.1.0 ``baselineState`` (``new`` /
``unchanged`` / ``updated`` / ``absent``) so CI viewers get the
lifecycle for free; the ``gate`` contract — exit non-zero only on new,
unsuppressed findings — is built on the same diff
(:mod:`repro.store.gate`).

Observability: snapshot and diff operations run under a ``store`` span
and record ``store.fingerprints``, ``store.hits`` / ``store.misses``
(baseline matches vs novel fingerprints) and
``store.lifecycle{state=...}`` transition counters into the ambient
telemetry (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro import obs
from repro.store.backend import (
    MemoryBackend,
    SnapshotMeta,
    SqliteBackend,
    StoredFinding,
    mark_active,
    mark_fixed,
)
from repro.store.fingerprint import Fingerprint, fingerprint_findings

if TYPE_CHECKING:
    from repro.core.findings import Finding
    from repro.core.incremental import IncrementalResult


def _analysis_version() -> str:
    # Imported lazily: repro.engine pulls in repro.core, which imports
    # the store for report diffs — a module-level import would cycle.
    from repro.engine.cache import ANALYSIS_VERSION

    return ANALYSIS_VERSION


class Lifecycle(enum.Enum):
    """A finding's state relative to the baseline snapshot."""

    NEW = "new"
    PERSISTENT = "persistent"
    FIXED = "fixed"
    REOPENED = "reopened"


#: Lifecycle → SARIF 2.1.0 ``baselineState``.  A fuzzy re-match
#: (refactored statement, same location identity) maps to ``updated``.
SARIF_BASELINE_STATES = {
    Lifecycle.NEW: "new",
    Lifecycle.PERSISTENT: "unchanged",
    Lifecycle.FIXED: "absent",
    Lifecycle.REOPENED: "new",
}


@dataclass(frozen=True)
class LifecycleRow:
    """One finding's verdict in a revision diff."""

    state: Lifecycle
    fingerprint: str  # primary fingerprint (current for live rows)
    finding: "Finding | None" = None  # None for fixed rows — it is gone
    stored: StoredFinding | None = None  # None for brand-new rows
    rematched: bool = False  # matched via the location fingerprint

    @property
    def file(self) -> str:
        if self.finding is not None:
            return self.finding.candidate.file
        return self.stored.file if self.stored is not None else ""

    @property
    def function(self) -> str:
        if self.finding is not None:
            return self.finding.candidate.function
        return self.stored.function if self.stored is not None else ""

    @property
    def var(self) -> str:
        if self.finding is not None:
            return self.finding.candidate.var
        return self.stored.var if self.stored is not None else ""

    @property
    def kind(self) -> str:
        if self.finding is not None:
            return self.finding.candidate.kind.value
        return self.stored.kind if self.stored is not None else ""

    @property
    def line(self) -> int:
        if self.finding is not None:
            return self.finding.candidate.line
        return self.stored.line if self.stored is not None else 0

    def baseline_state(self) -> str:
        if self.rematched:
            return "updated"
        return SARIF_BASELINE_STATES[self.state]

    def as_dict(self) -> dict:
        return {
            "state": self.state.value,
            "baseline_state": self.baseline_state(),
            "fingerprint": self.fingerprint,
            "file": self.file,
            "function": self.function,
            "var": self.var,
            "kind": self.kind,
            "line": self.line,
            "rematched": self.rematched,
        }


@dataclass
class LifecycleDiff:
    """Everything one snapshot/diff operation decided."""

    rev: str
    baseline_rev: str | None
    rows: list[LifecycleRow] = field(default_factory=list)
    #: finding.key → Fingerprint for every live (non-fixed) row.
    fingerprints: dict[str, Fingerprint] = field(default_factory=dict)
    #: True when the baseline snapshot was produced by a different
    #: ``ANALYSIS_VERSION`` — states are still computed, but drift may be
    #: the analyzer's, not the code's.
    analysis_version_changed: bool = False

    def by_state(self, state: Lifecycle) -> list[LifecycleRow]:
        return [row for row in self.rows if row.state is state]

    def new(self) -> list[LifecycleRow]:
        return self.by_state(Lifecycle.NEW)

    def persistent(self) -> list[LifecycleRow]:
        return self.by_state(Lifecycle.PERSISTENT)

    def fixed(self) -> list[LifecycleRow]:
        return self.by_state(Lifecycle.FIXED)

    def reopened(self) -> list[LifecycleRow]:
        return self.by_state(Lifecycle.REOPENED)

    def counts(self) -> dict[str, int]:
        return {state.value: len(self.by_state(state)) for state in Lifecycle}

    def baseline_states(self) -> dict[str, str]:
        """finding.key → SARIF ``baselineState`` for live rows."""
        return {
            row.finding.key: row.baseline_state()
            for row in self.rows
            if row.finding is not None
        }

    def as_dict(self) -> dict:
        return {
            "rev": self.rev,
            "baseline_rev": self.baseline_rev,
            "counts": self.counts(),
            "analysis_version_changed": self.analysis_version_changed,
            "rows": [row.as_dict() for row in sorted_rows(self.rows)],
        }


_STATE_ORDER = (Lifecycle.NEW, Lifecycle.REOPENED, Lifecycle.FIXED, Lifecycle.PERSISTENT)


def _reported(findings: Iterable["Finding"]) -> list["Finding"]:
    # The store tracks exactly what the reports surface — pruned and
    # non-cross-scope findings never enter the lifecycle or the gate.
    return [finding for finding in findings if finding.is_reported]


def sorted_rows(rows: Iterable[LifecycleRow]) -> list[LifecycleRow]:
    return sorted(
        rows,
        key=lambda row: (
            _STATE_ORDER.index(row.state),
            row.file,
            row.function,
            row.var,
            row.fingerprint,
        ),
    )


class FindingsStore:
    """Fingerprint-keyed findings store over a pluggable backend."""

    def __init__(self, backend=None):
        self.backend = backend if backend is not None else MemoryBackend()

    @classmethod
    def in_memory(cls) -> "FindingsStore":
        return cls(MemoryBackend())

    @classmethod
    def open(cls, path: str | Path) -> "FindingsStore":
        """A SQLite-backed store at ``path`` (created on first use)."""
        return cls(SqliteBackend(path))

    # -- introspection ---------------------------------------------------

    def entries(self) -> dict[str, StoredFinding]:
        return self.backend.entries()

    def active(self) -> list[StoredFinding]:
        return sorted(
            (row for row in self.backend.entries().values() if row.status == "active"),
            key=lambda row: (row.file, row.function, row.var, row.fingerprint),
        )

    def snapshots(self) -> list[SnapshotMeta]:
        return self.backend.snapshots()

    def find(self, prefix: str) -> list[StoredFinding]:
        """Entries whose primary fingerprint starts with ``prefix``."""
        return [
            row
            for fingerprint, row in sorted(self.backend.entries().items())
            if fingerprint.startswith(prefix)
        ]

    def stats(self) -> dict:
        entries = self.backend.entries().values()
        return {
            "entries": len(self.backend.entries()),
            "active": sum(1 for row in entries if row.status == "active"),
            "fixed": sum(1 for row in entries if row.status == "fixed"),
            "snapshots": len(self.backend.snapshots()),
        }

    # -- diffing ---------------------------------------------------------

    def diff(
        self,
        findings: Iterable["Finding"],
        sources: Mapping[str, str | None],
        rev: str = "worktree",
        baseline_rev: str | None = None,
    ) -> LifecycleDiff:
        """Classify ``findings`` against a baseline snapshot, read-only.

        ``baseline_rev=None`` means the latest recorded snapshot; a store
        with no snapshots yet classifies everything as ``new``.
        """
        with obs.span("store", op="diff", rev=rev):
            return self._classify(_reported(findings), sources, rev, baseline_rev)

    def record_snapshot(
        self,
        findings: Iterable["Finding"],
        sources: Mapping[str, str | None],
        rev: str,
        baseline_rev: str | None = None,
    ) -> LifecycleDiff:
        """Classify ``findings`` and persist the result as snapshot ``rev``."""
        with obs.span("store", op="snapshot", rev=rev):
            diff = self._classify(_reported(findings), sources, rev, baseline_rev)
            self._apply(diff, rev)
            return diff

    def update_from_incremental(
        self, result: "IncrementalResult", project, rev: str
    ) -> LifecycleDiff:
        """Fold one incremental step into the store, touching only the
        fingerprints of the re-analysed scope.

        ``analyze_changes`` re-analysed exactly ``analyzed_functions``
        (plus deletions); stored entries outside that scope are carried
        forward untouched — no re-fingerprinting of the rest of the
        project.  The returned diff covers the touched scope only.
        """
        from repro.store.fingerprint import project_sources

        deleted, functions = result.touched_scope()
        changed = set(result.changed_files)

        def in_scope(row: StoredFinding) -> bool:
            if row.file in deleted or (row.file, row.function) in functions:
                return True
            if row.file in changed:
                # A function the edit removed outright is in no analysis
                # set, but its stored findings are certainly stale.
                module = project.modules.get(row.file)
                return module is None or row.function not in module.functions
            return False

        with obs.span("store", op="incremental", rev=rev):
            scope_entries = {
                fingerprint: row
                for fingerprint, row in self.backend.entries().items()
                if in_scope(row)
            }
            fresh = [finding for finding in result.findings if finding.is_reported]
            diff = self._classify_against(
                fresh,
                project_sources(project),
                rev,
                scope_entries,
                baseline_members=frozenset(
                    fingerprint
                    for fingerprint, row in scope_entries.items()
                    if row.status == "active"
                ),
                baseline_rev=None,
                baseline_version=_analysis_version(),
            )
            self._apply(diff, rev, snapshot=True)
            return diff

    # -- internals -------------------------------------------------------

    def _classify(
        self,
        findings: list["Finding"],
        sources: Mapping[str, str | None],
        rev: str,
        baseline_rev: str | None,
    ) -> LifecycleDiff:
        entries = self.backend.entries()
        baseline_version = _analysis_version()
        if baseline_rev is None:
            latest = self.backend.latest()
            if latest is not None:
                baseline_rev = latest.rev
                baseline_version = latest.analysis_version
            members = None if latest is None else self.backend.snapshot_members(
                latest.rev
            )
        else:
            meta = next(
                (m for m in self.backend.snapshots() if m.rev == baseline_rev), None
            )
            if meta is None:
                raise ValueError(f"no snapshot recorded for rev {baseline_rev!r}")
            baseline_version = meta.analysis_version
            members = self.backend.snapshot_members(baseline_rev)
        baseline_members = frozenset(members or ())
        return self._classify_against(
            findings,
            sources,
            rev,
            entries,
            baseline_members,
            baseline_rev,
            baseline_version,
        )

    def _classify_against(
        self,
        findings: list["Finding"],
        sources: Mapping[str, str | None],
        rev: str,
        entries: dict[str, StoredFinding],
        baseline_members: frozenset[str],
        baseline_rev: str | None,
        baseline_version: str,
    ) -> LifecycleDiff:
        fingerprints = fingerprint_findings(findings, sources)
        metrics = obs.metrics()
        diff = LifecycleDiff(
            rev=rev,
            baseline_rev=baseline_rev,
            fingerprints=fingerprints,
            analysis_version_changed=baseline_version != _analysis_version(),
        )
        # Location index over unmatched baseline members, for fuzzy
        # re-matching once exact primary matches are taken.
        matched: set[str] = set()
        primary_hits = {
            fingerprints[finding.key].primary
            for finding in findings
            if fingerprints[finding.key].primary in baseline_members
        }
        by_location: dict[str, list[str]] = {}
        for fingerprint in sorted(baseline_members - primary_hits):
            row = entries.get(fingerprint)
            if row is not None:
                by_location.setdefault(row.location, []).append(fingerprint)

        for finding in sorted(findings, key=lambda f: f.key):
            fingerprint = fingerprints[finding.key]
            if fingerprint.primary in baseline_members:
                matched.add(fingerprint.primary)
                diff.rows.append(
                    LifecycleRow(
                        state=Lifecycle.PERSISTENT,
                        fingerprint=fingerprint.primary,
                        finding=finding,
                        stored=entries.get(fingerprint.primary),
                    )
                )
                continue
            candidates = by_location.get(fingerprint.location, [])
            if candidates:
                # Refactored statement: same kind/function/variable
                # identity at the baseline, different structure now.
                old = candidates.pop(0)
                matched.add(old)
                diff.rows.append(
                    LifecycleRow(
                        state=Lifecycle.PERSISTENT,
                        fingerprint=fingerprint.primary,
                        finding=finding,
                        stored=entries.get(old),
                        rematched=True,
                    )
                )
                continue
            known = entries.get(fingerprint.primary)
            if known is not None and known.status == "fixed":
                diff.rows.append(
                    LifecycleRow(
                        state=Lifecycle.REOPENED,
                        fingerprint=fingerprint.primary,
                        finding=finding,
                        stored=known,
                    )
                )
                continue
            diff.rows.append(
                LifecycleRow(
                    state=Lifecycle.NEW,
                    fingerprint=fingerprint.primary,
                    finding=finding,
                )
            )
        for fingerprint in sorted(baseline_members - matched):
            row = entries.get(fingerprint)
            diff.rows.append(
                LifecycleRow(
                    state=Lifecycle.FIXED, fingerprint=fingerprint, stored=row
                )
            )
        if metrics is not None:
            metrics.inc("store.fingerprints", len(fingerprints))
            hits = len(diff.persistent())
            metrics.inc("store.hits", hits)
            metrics.inc("store.misses", len(diff.new()) + len(diff.reopened()))
            for state, count in diff.counts().items():
                if count:
                    metrics.inc("store.lifecycle", count, state=state)
        return diff

    def _apply(self, diff: LifecycleDiff, rev: str, snapshot: bool = True) -> None:
        """Persist one diff: entry transitions plus the snapshot row."""
        updates: list[StoredFinding] = []
        for row in diff.rows:
            if row.state is Lifecycle.FIXED:
                if row.stored is not None:
                    updates.append(mark_fixed(row.stored, rev))
                continue
            finding = row.finding
            assert finding is not None
            candidate = finding.candidate
            fingerprint = diff.fingerprints[finding.key]
            if row.rematched and row.stored is not None:
                # Re-key the refactored entry under its new primary,
                # keeping its history (first_seen).
                self.backend.replace_fingerprint(
                    row.stored.fingerprint,
                    StoredFinding(
                        fingerprint=fingerprint.primary,
                        location=fingerprint.location,
                        file=candidate.file,
                        function=candidate.function,
                        var=candidate.var,
                        kind=candidate.kind.value,
                        line=candidate.line,
                        status="active",
                        first_seen=row.stored.first_seen,
                        last_seen=rev,
                        analysis_version=_analysis_version(),
                    ),
                )
                continue
            if row.stored is not None:
                updates.append(mark_active(row.stored, rev, line=candidate.line))
                continue
            updates.append(
                StoredFinding(
                    fingerprint=fingerprint.primary,
                    location=fingerprint.location,
                    file=candidate.file,
                    function=candidate.function,
                    var=candidate.var,
                    kind=candidate.kind.value,
                    line=candidate.line,
                    status="active",
                    first_seen=rev,
                    last_seen=rev,
                    analysis_version=_analysis_version(),
                )
            )
        if updates:
            self.backend.upsert_entries(updates)
        if snapshot:
            members = sorted(
                row.fingerprint
                for row in self.backend.entries().values()
                if row.status == "active"
            )
            previous = self.backend.latest()
            seq = (previous.seq + 1) if previous is not None else 1
            self.backend.add_snapshot(
                SnapshotMeta(
                    rev=rev,
                    seq=seq,
                    findings=len(members),
                    analysis_version=_analysis_version(),
                ),
                members,
            )


def diff_to_sarif(
    diff: LifecycleDiff,
    project: str = "project",
    baseline=None,
) -> dict:
    """One lifecycle diff as a SARIF 2.1.0 log with ``baselineState``.

    Live findings carry their lifecycle (``new`` / ``unchanged`` /
    ``updated``) plus the store fingerprints; fixed findings are emitted
    as ``absent`` results so a viewer can close them; findings accepted
    in the baseline file ride with their suppression (justification +
    author) — the round-trip :func:`repro.store.baseline
    .baseline_from_sarif` reads back.
    """
    from repro.core.findings import AuthorshipInfo, Candidate, CandidateKind, Finding
    from repro.core.sarif import findings_to_sarif
    from repro.store.baseline import suppression_for

    live = [row.finding for row in diff.rows if row.finding is not None]
    baseline_states = diff.baseline_states()
    fingerprints: dict[str, Fingerprint] = dict(diff.fingerprints)
    suppressions: dict[str, dict] = {}
    if baseline is not None:
        for finding in live:
            fingerprint = fingerprints.get(finding.key)
            if fingerprint is None:
                continue
            entry = baseline.covers(fingerprint.primary, fingerprint.location)
            if entry is not None:
                suppressions[finding.key] = suppression_for(entry)
    for row in diff.fixed():
        stored = row.stored
        if stored is None:
            continue
        synthetic = Finding(
            candidate=Candidate(
                file=stored.file,
                function=stored.function,
                var=stored.var,
                line=stored.line,
                kind=CandidateKind(stored.kind),
            ),
            authorship=AuthorshipInfo(
                cross_scope=True, reason="stored finding, absent at this revision"
            ),
        )
        live.append(synthetic)
        baseline_states[synthetic.key] = "absent"
        fingerprints[synthetic.key] = Fingerprint(
            primary=row.fingerprint, location=stored.location
        )
    return findings_to_sarif(
        live,
        project=project,
        fingerprints=fingerprints,
        baseline_states=baseline_states,
        suppressions=suppressions or None,
    )
