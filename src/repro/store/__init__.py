"""Persistent findings store: stable fingerprints, lifecycle, CI gating.

The store (docs/STORE.md) is what makes the analyzer *revision-aware*:

* :mod:`repro.store.fingerprint` — stable finding fingerprints that
  survive line drift (primary) plus a coarser location identity for
  fuzzy re-matching after refactors (secondary);
* :mod:`repro.store.backend` — SQLite persistence for CI workflows and
  an in-memory backend for tests and warm service sessions;
* :mod:`repro.store.store` — :class:`FindingsStore`: snapshots,
  cross-revision lifecycle (``new`` / ``persistent`` / ``fixed`` /
  ``reopened``) and incremental fingerprint updates;
* :mod:`repro.store.baseline` — the ``.valuecheck-baseline.json``
  reviewed-and-accepted suppression file, with SARIF round-trip;
* :mod:`repro.store.gate` — the CI contract: fail only on new,
  unsuppressed findings.
"""

from repro.store.backend import (
    MemoryBackend,
    SnapshotMeta,
    SqliteBackend,
    STORE_SCHEMA_VERSION,
    StoredFinding,
)
from repro.store.baseline import (
    BASELINE_FILENAME,
    BASELINE_SCHEMA,
    BaselineEntry,
    BaselineFile,
    baseline_from_sarif,
    suppression_for,
)
from repro.store.fingerprint import (
    CONTEXT_RADIUS,
    FINGERPRINT_VERSION,
    Fingerprint,
    fingerprint_candidate,
    fingerprint_findings,
    normalize_line,
    project_sources,
    structural_context,
    variable_path,
)
from repro.store.gate import BLOCKING_STATES, GateResult, evaluate_gate
from repro.store.store import (
    FindingsStore,
    Lifecycle,
    LifecycleDiff,
    LifecycleRow,
    SARIF_BASELINE_STATES,
    diff_to_sarif,
    sorted_rows,
)

__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_SCHEMA",
    "BLOCKING_STATES",
    "BaselineEntry",
    "BaselineFile",
    "CONTEXT_RADIUS",
    "FINGERPRINT_VERSION",
    "Fingerprint",
    "FindingsStore",
    "GateResult",
    "Lifecycle",
    "LifecycleDiff",
    "LifecycleRow",
    "MemoryBackend",
    "SARIF_BASELINE_STATES",
    "STORE_SCHEMA_VERSION",
    "SnapshotMeta",
    "SqliteBackend",
    "StoredFinding",
    "baseline_from_sarif",
    "diff_to_sarif",
    "evaluate_gate",
    "fingerprint_candidate",
    "fingerprint_findings",
    "normalize_line",
    "project_sources",
    "sorted_rows",
    "structural_context",
    "suppression_for",
    "variable_path",
]
