"""The reviewed-and-accepted baseline file: ``.valuecheck-baseline.json``.

A baseline entry is a triage decision that must survive between CI
runs: *this finding is known, someone looked at it, here is why it is
acceptable, and here is who signed off*.  The gate never fails on a
finding covered by the baseline, and SARIF exports carry each accepted
finding as a suppression whose justification names the author — feeding
the same provenance trail ``--explain`` renders.

File format (JSON, stable ordering)::

    {
      "schema": 1,
      "tool": "valuecheck",
      "entries": [
        {
          "fingerprint": "<primary fingerprint>",
          "justification": "intentional: config default is dead here",
          "author": "reviewer1",
          "accepted_rev": "release-1.2",
          "kind": "dead_store", "file": "cache.c",
          "function": "evict", "var": "tmp"
        }
      ]
    }

Only ``fingerprint`` identifies the finding — the location fields are
human context for reviewing the file in a diff.  Entries match by
primary fingerprint first and fall back to the location fingerprint, so
an accepted finding stays suppressed across the same refactors the
store itself re-matches through.

Round-trip: :func:`suppression_for` renders one entry as a SARIF 2.1.0
``suppressions[]`` object and :func:`baseline_from_sarif` reconstructs
a :class:`BaselineFile` from any SARIF log written with them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

BASELINE_SCHEMA = 1
BASELINE_FILENAME = ".valuecheck-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed-and-accepted finding."""

    fingerprint: str
    justification: str
    author: str
    accepted_rev: str = ""
    kind: str = ""
    file: str = ""
    function: str = ""
    var: str = ""

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "justification": self.justification,
            "author": self.author,
            "accepted_rev": self.accepted_rev,
            "kind": self.kind,
            "file": self.file,
            "function": self.function,
            "var": self.var,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BaselineEntry":
        return cls(
            fingerprint=data.get("fingerprint", ""),
            justification=data.get("justification", ""),
            author=data.get("author", ""),
            accepted_rev=data.get("accepted_rev", ""),
            kind=data.get("kind", ""),
            file=data.get("file", ""),
            function=data.get("function", ""),
            var=data.get("var", ""),
        )


@dataclass
class BaselineFile:
    """An in-memory ``.valuecheck-baseline.json``."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def load(cls, path: str | Path) -> "BaselineFile":
        """Load a baseline file; a missing file is an empty baseline."""
        target = Path(path)
        if not target.exists():
            return cls(path=target)
        data = json.loads(target.read_text())
        if data.get("schema", 1) > BASELINE_SCHEMA:
            raise ValueError(
                f"{target} was written by a newer baseline schema "
                f"({data.get('schema')} > {BASELINE_SCHEMA})"
            )
        return cls(
            entries=[BaselineEntry.from_dict(row) for row in data.get("entries", ())],
            path=target,
        )

    def save(self, path: str | Path | None = None) -> Path:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("baseline file has no path to save to")
        payload = {
            "schema": BASELINE_SCHEMA,
            "tool": "valuecheck",
            "entries": [
                entry.as_dict()
                for entry in sorted(self.entries, key=lambda e: e.fingerprint)
            ],
        }
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        self.path = target
        return target

    def add(self, entry: BaselineEntry) -> None:
        """Add (or replace) the entry for one fingerprint."""
        self.entries = [
            existing
            for existing in self.entries
            if existing.fingerprint != entry.fingerprint
        ]
        self.entries.append(entry)

    def covers(self, *fingerprints: str) -> BaselineEntry | None:
        """The entry matching any of the given fingerprints (primary
        first, then the location fallback), or None."""
        by_fingerprint = {entry.fingerprint: entry for entry in self.entries}
        for fingerprint in fingerprints:
            if fingerprint in by_fingerprint:
                return by_fingerprint[fingerprint]
        return None

    def __len__(self) -> int:
        return len(self.entries)


def suppression_for(entry: BaselineEntry) -> dict:
    """One SARIF 2.1.0 ``suppressions[]`` object for an accepted finding."""
    justification = entry.justification
    if entry.author:
        justification += f" (accepted by {entry.author})"
    suppression = {
        "kind": "external",
        "status": "accepted",
        "justification": justification,
        "properties": {
            "valuecheck/justification": entry.justification,
            "valuecheck/author": entry.author,
        },
    }
    if entry.accepted_rev:
        suppression["properties"]["valuecheck/acceptedRev"] = entry.accepted_rev
    return suppression


def baseline_from_sarif(log: dict) -> BaselineFile:
    """Reconstruct the baseline from a SARIF log written with
    :func:`suppression_for` suppressions — the round-trip contract."""
    baseline = BaselineFile()
    for run in log.get("runs", ()):
        for result in run.get("results", ()):
            fingerprint = result.get("partialFingerprints", {}).get(
                "valuecheck/primary"
            )
            if not fingerprint:
                continue
            for suppression in result.get("suppressions", ()):
                properties = suppression.get("properties", {})
                if "valuecheck/justification" not in properties:
                    continue  # a pruner suppression, not a triage decision
                location = (
                    result.get("locations", [{}])[0]
                    .get("physicalLocation", {})
                    .get("artifactLocation", {})
                )
                logical = result.get("locations", [{}])[0].get(
                    "logicalLocations", [{}]
                )
                baseline.add(
                    BaselineEntry(
                        fingerprint=fingerprint,
                        justification=properties.get("valuecheck/justification", ""),
                        author=properties.get("valuecheck/author", ""),
                        accepted_rev=properties.get("valuecheck/acceptedRev", ""),
                        kind=result.get("ruleId", ""),
                        file=location.get("uri", ""),
                        function=(logical[0] if logical else {}).get("name", ""),
                    )
                )
    return baseline
