"""Stable finding fingerprints: identity that survives line drift.

A finding's CSV/dedup key (``file:function:var:line:kind``) breaks the
moment anyone inserts a line above it — useless for cross-revision
tracking.  The **primary fingerprint** instead hashes what the finding
*is*, not where it happens to sit today:

* the rule kind (which unused-definition shape fired);
* the module-relative function identity (``file`` + function name —
  file paths in a project are already module-relative);
* the normalized variable/field path (variable name, field flag,
  parameter position);
* a **structural context window**: the defining statement plus its
  nearest non-blank, non-comment neighbours, each normalized
  (comments stripped, whitespace collapsed).

Line numbers are deliberately *not* hashed: inserting blank lines or
comments anywhere in the file — even between the context lines — leaves
every input unchanged, so the fingerprint is invariant under pure line
drift.  Editing the defining statement (or its immediate structural
neighbourhood) changes the context window and therefore the
fingerprint.

Two identical statements in one function (same variable, same
normalized context) are disambiguated by an **ordinal**: their relative
source order, which line shifts also preserve.

The **location fingerprint** is the coarser secondary key — the same
material minus the context window — used for fuzzy re-matching: after a
refactor rewrites the defining statement, the primary fingerprint
changes but the location fingerprint still ties the finding to its
predecessor, so the store reports it as *persistent* (SARIF
``baselineState: updated``) instead of a fixed+new pair.

Fingerprints are computed post-merge from the final finding list plus
the project sources, so they are deterministic across the serial,
thread and process executors and across content-cache replays.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:
    from repro.core.findings import Candidate, Finding

#: Bump when the fingerprint material changes: old stored fingerprints
#: must stop matching rather than mis-match.
FINGERPRINT_VERSION = "fp-1"

#: Non-blank neighbours on each side of the defining line that enter
#: the structural context window.
CONTEXT_RADIUS = 1

#: Hex digits kept from the sha256 digest — 64 bits of collision
#: resistance per side, plenty for per-project finding populations.
_DIGEST_CHARS = 32


def normalize_line(text: str) -> str:
    """One source line with comments stripped and whitespace collapsed.

    Handles ``//`` tails and single-line ``/* ... */`` blocks; a block
    comment left open truncates the line (the remainder is comment).
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            break
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(text[i])
        i += 1
    return " ".join("".join(out).split())


def structural_context(
    source_text: str | None, line: int, radius: int = CONTEXT_RADIUS
) -> tuple[str, ...]:
    """The normalized defining statement plus its nearest non-blank
    neighbours — the line-number-free anchor of the primary fingerprint.

    Blank and comment-only lines are transparent: the window walks past
    them, so inserting any number of them (above, below, or in between)
    leaves the context unchanged.
    """
    if source_text is None:
        return ()
    lines = source_text.split("\n")
    if not 1 <= line <= len(lines):
        return ()
    context: list[str] = []
    found = 0
    for index in range(line - 2, -1, -1):  # walk upward from the line above
        normalized = normalize_line(lines[index])
        if normalized:
            context.insert(0, normalized)
            found += 1
            if found >= radius:
                break
    context.append(normalize_line(lines[line - 1]))
    found = 0
    for index in range(line, len(lines)):  # walk downward from the line below
        normalized = normalize_line(lines[index])
        if normalized:
            context.append(normalized)
            found += 1
            if found >= radius:
                break
    return tuple(context)


def variable_path(candidate: "Candidate") -> str:
    """Normalized variable/field path: what the definition defines."""
    path = candidate.var
    if candidate.is_field:
        path = f"field:{path}"
    if candidate.param_index >= 0:
        path = f"{path}@param{candidate.param_index}"
    return path


@dataclass(frozen=True)
class Fingerprint:
    """The stable identity pair of one finding."""

    primary: str  # structural — survives line drift
    location: str  # coarse — survives statement rewrites (fuzzy re-match)

    def as_dict(self) -> dict:
        return {"primary": self.primary, "location": self.location}


def _digest(parts: Iterable[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:_DIGEST_CHARS]


def _primary_material(candidate: "Candidate", source_text: str | None) -> tuple[str, ...]:
    return (
        FINGERPRINT_VERSION,
        candidate.kind.value,
        candidate.file,
        candidate.function,
        variable_path(candidate),
        *structural_context(source_text, candidate.line),
    )


def _location_material(candidate: "Candidate") -> tuple[str, ...]:
    return (
        FINGERPRINT_VERSION,
        candidate.kind.value,
        candidate.file,
        candidate.function,
        variable_path(candidate),
    )


def fingerprint_candidate(
    candidate: "Candidate", source_text: str | None, ordinal: int = 0
) -> Fingerprint:
    """Fingerprint one candidate in isolation (ordinal supplied by the
    caller; use :func:`fingerprint_findings` to get ordinals right
    across a whole report)."""
    return Fingerprint(
        primary=_digest((*_primary_material(candidate, source_text), str(ordinal))),
        location=_digest((*_location_material(candidate), str(ordinal))),
    )


def fingerprint_findings(
    findings: Iterable["Finding"], sources: Mapping[str, str | None]
) -> dict[str, Fingerprint]:
    """Fingerprints for a finding list, keyed by ``finding.key``.

    Findings whose primary (or location) material collides — the same
    statement shape repeated in one function — get ordinals in source
    order, which pure line shifts preserve.  The computation only sorts
    and hashes, so the result is identical regardless of which executor
    (or cache replay) produced the findings.
    """
    rows = sorted(
        findings, key=lambda finding: (finding.candidate.line, finding.key)
    )
    primary_groups: dict[tuple[str, ...], int] = {}
    location_groups: dict[tuple[str, ...], int] = {}
    out: dict[str, Fingerprint] = {}
    for finding in rows:
        candidate = finding.candidate
        p_material = _primary_material(candidate, sources.get(candidate.file))
        l_material = _location_material(candidate)
        p_ordinal = primary_groups.get(p_material, 0)
        primary_groups[p_material] = p_ordinal + 1
        l_ordinal = location_groups.get(l_material, 0)
        location_groups[l_material] = l_ordinal + 1
        out[finding.key] = Fingerprint(
            primary=_digest((*p_material, str(p_ordinal))),
            location=_digest((*l_material, str(l_ordinal))),
        )
    return out


def project_sources(project) -> dict[str, str | None]:
    """path → raw source text for every module that still has one."""
    return {
        path: module.source.raw if module.source is not None else None
        for path, module in project.modules.items()
    }
