"""The CI gate: exit non-zero only on *new*, unsuppressed findings.

``valuecheck gate`` (and the service ``gate`` request) turn a lifecycle
diff into a CI verdict.  The contract:

* **persistent** and **fixed** findings never fail the gate — they are
  the baseline, not the regression;
* **new** and **reopened** findings fail it, *unless* the baseline file
  (:mod:`repro.store.baseline`) carries a reviewed-and-accepted entry
  for their fingerprint;
* the exit code is 0 (clean) or 1 (blocking findings), so the command
  drops into any CI pipeline as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.store.baseline import BaselineEntry, BaselineFile
from repro.store.store import Lifecycle, LifecycleDiff, LifecycleRow, sorted_rows

#: States that can fail the gate (before suppression).
BLOCKING_STATES = (Lifecycle.NEW, Lifecycle.REOPENED)


@dataclass
class GateResult:
    """The gate verdict over one lifecycle diff."""

    diff: LifecycleDiff
    blocking: list[LifecycleRow] = field(default_factory=list)
    suppressed: list[tuple[LifecycleRow, BaselineEntry]] = field(default_factory=list)
    # New/reopened rows whose rule pack's gate policy is "warn": surfaced
    # in the verdict but never failing the gate (repro.rules).
    warned: list[LifecycleRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.blocking

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> dict[str, int]:
        counts = self.diff.counts()
        counts["suppressed"] = len(self.suppressed)
        counts["blocking"] = len(self.blocking)
        counts["warned"] = len(self.warned)
        return counts

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code,
            "rev": self.diff.rev,
            "baseline_rev": self.diff.baseline_rev,
            "counts": self.counts(),
            "analysis_version_changed": self.diff.analysis_version_changed,
            "blocking": [row.as_dict() for row in sorted_rows(self.blocking)],
            "warned": [row.as_dict() for row in sorted_rows(self.warned)],
            "suppressed": [
                dict(row.as_dict(), justification=entry.justification, author=entry.author)
                for row, entry in self.suppressed
            ],
            "fixed": [row.as_dict() for row in sorted_rows(self.diff.fixed())],
        }

    def summary(self) -> str:
        counts = self.diff.counts()
        lines = [
            f"gate: {'PASS' if self.ok else 'FAIL'} "
            f"(rev {self.diff.rev}, baseline "
            f"{self.diff.baseline_rev or '<none>'})",
            f"  new:        {counts['new']}",
            f"  reopened:   {counts['reopened']}",
            f"  persistent: {counts['persistent']}",
            f"  fixed:      {counts['fixed']}",
            f"  suppressed: {len(self.suppressed)}",
        ]
        if self.diff.analysis_version_changed:
            lines.append(
                "  note: baseline was recorded under a different "
                "ANALYSIS_VERSION; drift may come from the analyzer"
            )
        for row in sorted_rows(self.blocking):
            lines.append(
                f"  BLOCKING {row.state.value}: {row.file}:{row.line} "
                f"[{row.kind}] {row.function}/{row.var} "
                f"fingerprint={row.fingerprint}"
            )
        for row in sorted_rows(self.warned):
            lines.append(
                f"  warned {row.state.value}: {row.file}:{row.line} "
                f"[{row.kind}] {row.function}/{row.var} "
                f"(rule gate policy: warn)"
            )
        for row, entry in self.suppressed:
            lines.append(
                f"  suppressed {row.state.value}: {row.file}:{row.line} "
                f"{row.function}/{row.var} — {entry.justification} "
                f"(accepted by {entry.author or 'unknown'})"
            )
        return "\n".join(lines)


def evaluate_gate(
    diff: LifecycleDiff, baseline: BaselineFile | None = None
) -> GateResult:
    """Apply the gate contract to a lifecycle diff.

    The blocking decision is per rule pack: rows whose pack's
    ``gate_policy`` is ``"warn"`` are reported in the verdict but never
    fail the gate (suppression still takes precedence — a reviewed
    baseline entry records the acceptance either way)."""
    # Imported lazily: repro.rules pulls in repro.core, and the store
    # package is imported from core-adjacent entry points.
    from repro.rules.registry import gate_policy_for

    result = GateResult(diff=diff)
    metrics = obs.metrics()
    for row in diff.rows:
        if row.state not in BLOCKING_STATES:
            continue
        entry = None
        if baseline is not None and row.finding is not None:
            fingerprint = diff.fingerprints[row.finding.key]
            entry = baseline.covers(fingerprint.primary, fingerprint.location)
        if entry is not None:
            result.suppressed.append((row, entry))
        elif gate_policy_for(row.kind) == "warn":
            result.warned.append(row)
        else:
            result.blocking.append(row)
    if metrics is not None:
        metrics.inc("store.gate.evaluations")
        metrics.inc("store.gate.blocking", len(result.blocking))
        metrics.inc("store.gate.suppressed", len(result.suppressed))
        metrics.inc("store.gate.warned", len(result.warned))
    return result
