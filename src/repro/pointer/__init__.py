"""Pointer analysis and value-flow graphs.

The paper uses SVF's field-sensitive Andersen's analysis (§4.1, citing
Andersen [13] and Hind & Pioli [31] for the precision/scalability
trade-off) for two client queries:

* **alias check** — a definition whose variable is referenced by pointers
  may be used indirectly and must not be reported as unused;
* **indirect-call resolution** — function pointers are resolved through
  their points-to sets so authorship lookup can reach the pointees.

:mod:`repro.pointer.andersen` implements the inclusion-based solver over
the load/store IR; :mod:`repro.pointer.value_flow` layers the def-use /
alias queries the detector consumes.
"""

from repro.pointer.andersen import AndersenResult, NodeTable, analyze_module
from repro.pointer.andersen_reference import ReferenceAndersenResult, analyze_module_reference
from repro.pointer.steensgaard import SteensgaardResult, analyze_module_steensgaard
from repro.pointer.flow_sensitive import FlowSensitiveResult, analyze_module_flow_sensitive
from repro.pointer.value_flow import ValueFlowGraph, build_value_flow
from repro.pointer.sparse_vfg import SparseValueFlow, build_sparse_vfg

__all__ = [
    "AndersenResult",
    "NodeTable",
    "analyze_module",
    "ReferenceAndersenResult",
    "analyze_module_reference",
    "SteensgaardResult",
    "analyze_module_steensgaard",
    "FlowSensitiveResult",
    "analyze_module_flow_sensitive",
    "ValueFlowGraph",
    "build_value_flow",
    "SparseValueFlow",
    "build_sparse_vfg",
]
