"""Value-flow graph: def-use chains enriched with alias information.

The paper (§4.1 "Pointer and Alias"): *"To handle aliases of variables, we
check the value-flow graph generated based on the point-to graph to see
whether this definition is used somewhere else. If it has other use, this
definition is not an unused definition."*

The graph here combines:

* intra-procedural def-use chains from reaching definitions
  (:mod:`repro.dataflow.reaching`), and
* escape information from Andersen's analysis: a variable whose address is
  taken *and* observed by some pointer may be read through that pointer,
  so its definitions are conservatively considered used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.dataflow.reaching import ReachingDefinitions, reaching_definitions
from repro.ir.instructions import AddrOf, Call, FieldAddr, Store, VarAddr
from repro.ir.module import Function, Module
from repro.pointer.andersen import AndersenResult, analyze_module


@dataclass
class ValueFlowGraph:
    """Per-module value-flow facts consumed by the detector and pruners."""

    module: Module
    andersen: AndersenResult
    reaching: dict[str, ReachingDefinitions] = field(default_factory=dict)
    # fn name -> vars whose address is taken somewhere in the function
    address_taken: dict[str, set[str]] = field(default_factory=dict)
    # fn name -> uids of Call instructions whose result temp is never read
    unused_call_results: dict[str, set[int]] = field(default_factory=dict)
    # (fn name, var) -> alias-check verdict; the detector probes the same
    # variable once per candidate, and each miss costs two points-to
    # translations.
    _indirect_cache: dict[tuple[str, str], bool] = field(default_factory=dict)

    def reaching_for(self, function: Function) -> ReachingDefinitions:
        if function.name not in self.reaching:
            self.reaching[function.name] = reaching_definitions(function)
        return self.reaching[function.name]

    def definition_used(self, function: Function, store: Store) -> bool:
        """Direct (def-use chain) use of this store's value."""
        rd = self.reaching_for(function)
        return bool(rd.def_to_uses.get(store.uid))

    def may_be_used_indirectly(self, function: Function, var: str) -> bool:
        """The alias check: True if ``var`` is referenced by pointers
        (address taken and visible in some points-to set)."""
        base = var.split("#", 1)[0]
        if base not in self.address_taken.get(function.name, ()):
            return False
        key = (function.name, var)
        cached = self._indirect_cache.get(key)
        if cached is None:
            cached = self.andersen.is_pointed_to(function, var) or self.andersen.is_pointed_to(
                function, base
            )
            self._indirect_cache[key] = cached
        return cached

    def call_result_unused(self, function: Function, call: Call) -> bool:
        return call.uid in self.unused_call_results.get(function.name, set())

    def resolve_call(self, call: Call) -> list[str]:
        return self.andersen.callees_of(call)


def _collect_address_taken(function: Function) -> set[str]:
    taken: set[str] = set()
    for instruction in function.instructions():
        if isinstance(instruction, AddrOf):
            if isinstance(instruction.addr, (VarAddr, FieldAddr)):
                base = instruction.addr.base_var()
                if base is not None:
                    taken.add(base)
    return taken


def _collect_unused_call_results(function: Function) -> set[int]:
    use_map = function.temp_use_map()
    unused: set[int] = set()
    for instruction in function.instructions():
        if isinstance(instruction, Call) and instruction.dest is not None:
            if not use_map.get(instruction.dest):
                unused.add(instruction.uid)
    return unused


def build_value_flow(module: Module, andersen: AndersenResult | None = None) -> ValueFlowGraph:
    """Build the value-flow graph for ``module`` (running Andersen's
    analysis unless a result is supplied)."""
    with obs.span("vfg", module=module.filename):
        if andersen is None:
            with obs.span("andersen", module=module.filename):
                andersen = analyze_module(module)
        graph = ValueFlowGraph(module=module, andersen=andersen)
        for function in module.functions.values():
            graph.address_taken[function.name] = _collect_address_taken(function)
            graph.unused_call_results[function.name] = _collect_unused_call_results(function)
    return graph
