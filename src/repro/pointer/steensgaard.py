"""Steensgaard's (unification-based) pointer analysis.

The paper (§4.1) picks field-sensitive Andersen's over alternatives,
citing Hind & Pioli's "Which pointer analysis should I use?".  This
module provides the classic faster-but-coarser point in that design
space so the trade-off can be measured (benchmark: ablation E12):
assignments *unify* pointee equivalence classes instead of adding
inclusion edges, making the analysis near-linear but merging everything
an aliased pointer may reach.

The result object exposes the same client interface as
:class:`repro.pointer.andersen.AndersenResult` (``pts``,
``is_pointed_to``, ``callees_of``), so
:func:`repro.pointer.value_flow.build_value_flow` accepts it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    UnOp,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import FuncRef, ParamValue, Temp, Value
from repro.pointer.andersen import (
    Node,
    _EMPTY_PTS,
    arg_node,
    func_node,
    global_node,
    loc_node,
    ret_node,
    temp_node,
)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[Node, Node] = {}

    def find(self, node: Node) -> Node:
        root = node
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(node, node) != node:  # path compression
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a: Node, b: Node) -> Node:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return ra


@dataclass
class SteensgaardResult:
    """Client-compatible result (see AndersenResult)."""

    module: Module
    classes: _UnionFind
    pointee: dict[Node, Node] = field(default_factory=dict)  # class -> pointee class
    members: dict[Node, set[Node]] = field(default_factory=dict)  # class -> location members
    indirect_callees: dict[int, list[str]] = field(default_factory=dict)
    _pointed_classes: set[Node] = field(default_factory=set)

    def _pointee_members(self, node: Node) -> set[Node] | frozenset[Node]:
        cls = self.classes.find(node)
        target = self.pointee.get(cls)
        if target is None:
            return _EMPTY_PTS
        return self.members.get(self.classes.find(target), _EMPTY_PTS)

    def pts(self, node: Node) -> frozenset[Node]:
        # Immutable view: the member sets back the union-find classes, so
        # handing them out mutable would let clients corrupt the result.
        members = self._pointee_members(node)
        return frozenset(members) if members else _EMPTY_PTS

    def pts_of_var(self, function: Function | str, var: str) -> frozenset[Node]:
        name = function if isinstance(function, str) else function.name
        return self.pts(loc_node(name, var))

    def is_pointed_to(self, function: Function | str, var: str) -> bool:
        name = function if isinstance(function, str) else function.name
        for candidate in (loc_node(name, var), loc_node(name, var.split("#", 1)[0])):
            if self.classes.find(candidate) in self._pointed_classes:
                return True
        return False

    def callees_of(self, call: Call) -> list[str]:
        if call.callee is not None:
            return [call.callee]
        return self.indirect_callees.get(call.uid, [])


class _Solver:
    def __init__(self, module: Module):
        self.module = module
        self.uf = _UnionFind()
        self.pointee: dict[Node, Node] = {}
        self.result = SteensgaardResult(module=module, classes=self.uf, pointee=self.pointee)
        self._indirect: list[tuple[Function, Call, Node]] = []

    # -- the two Steensgaard operations ---------------------------------

    def _pointee_of(self, node: Node) -> Node:
        cls = self.uf.find(node)
        if cls not in self.pointee:
            fresh = f"obj:{cls}"
            self.pointee[cls] = fresh
        return self.uf.find(self.pointee[cls])

    def _join(self, a: Node, b: Node) -> None:
        """Unify the classes of a and b, recursively merging pointees.
        Terminates because every recursive step merges two distinct
        classes, and the class count is finite."""
        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return
        pa = self.pointee.pop(ra, None)
        pb = self.pointee.pop(rb, None)
        root = self.uf.union(ra, rb)
        if pa is not None and pb is not None:
            self.pointee[root] = pa
            self._join(pa, pb)
        elif pa is not None:
            self.pointee[root] = pa
        elif pb is not None:
            self.pointee[root] = pb

    def _points_to(self, pointer: Node, location: Node) -> None:
        """pointer = &location: unify pointee(pointer) with location."""
        self._join(self._pointee_of(pointer), location)

    def _copy(self, source: Node, target: Node) -> None:
        """target = source (both pointers): unify their pointees."""
        self._join(self._pointee_of(target), self._pointee_of(source))

    # -- IR walk ------------------------------------------------------------

    def _value_node(self, function: Function, value: Value) -> Node | None:
        if isinstance(value, Temp):
            return temp_node(function.name, value)
        if isinstance(value, FuncRef):
            node = f"sg-const:{value.name}"
            self._points_to(node, func_node(value.name))
            return node
        if isinstance(value, ParamValue):
            return arg_node(function.name, value.index)
        return None

    def _addr_object(self, function: Function, addr) -> Node | None:
        if isinstance(addr, VarAddr):
            return loc_node(function.name, addr.var)
        if isinstance(addr, FieldAddr):
            return loc_node(function.name, addr.tracked_var() or addr.var)
        if isinstance(addr, ElementAddr):
            return loc_node(function.name, addr.var)
        if isinstance(addr, GlobalAddr):
            return global_node(addr.name)
        return None

    def _build_function(self, function: Function) -> None:
        name = function.name
        for instruction in function.instructions():
            if isinstance(instruction, AddrOf):
                obj = self._addr_object(function, instruction.addr)
                if obj is not None:
                    self._points_to(temp_node(name, instruction.dest), obj)
            elif isinstance(instruction, Load):
                dest = temp_node(name, instruction.dest)
                obj = self._addr_object(function, instruction.addr)
                if obj is not None:
                    self._copy(obj, dest)
                elif isinstance(instruction.addr, DerefAddr):
                    pointer = self._value_node(function, instruction.addr.pointer)
                    if pointer is not None:
                        self._copy(self._pointee_of(pointer), dest)
            elif isinstance(instruction, Store):
                value = self._value_node(function, instruction.value)
                obj = self._addr_object(function, instruction.addr)
                if obj is not None and value is not None:
                    self._copy(value, obj)
                elif isinstance(instruction.addr, DerefAddr) and value is not None:
                    pointer = self._value_node(function, instruction.addr.pointer)
                    if pointer is not None:
                        self._copy(value, self._pointee_of(pointer))
            elif isinstance(instruction, (BinOp, UnOp, CastOp, Select)):
                dest = instruction.result()
                if dest is not None:
                    dest_node = temp_node(name, dest)
                    for operand in instruction.operands():
                        source = self._value_node(function, operand)
                        if source is not None:
                            self._copy(source, dest_node)
            elif isinstance(instruction, Call):
                if instruction.callee is not None:
                    self._wire_call(function, instruction, instruction.callee)
                elif instruction.callee_value is not None:
                    pointer = self._value_node(function, instruction.callee_value)
                    if pointer is not None:
                        self._indirect.append((function, instruction, pointer))
            elif isinstance(instruction, Ret) and instruction.value is not None:
                source = self._value_node(function, instruction.value)
                if source is not None:
                    self._copy(source, ret_node(name))

    def _wire_call(self, function: Function, call: Call, callee: str) -> None:
        for index, argument in enumerate(call.args):
            source = self._value_node(function, argument)
            if source is not None:
                self._copy(source, arg_node(callee, index))
        if call.dest is not None:
            self._copy(ret_node(callee), temp_node(function.name, call.dest))

    def solve(self) -> SteensgaardResult:
        for function in self.module.functions.values():
            self._build_function(function)
        # Resolve indirect calls from the unified classes.
        func_classes: dict[Node, list[str]] = {}
        for fn_name in self.module.functions:
            func_classes.setdefault(self.uf.find(func_node(fn_name)), []).append(fn_name)
        for function, call, pointer in self._indirect:
            pointee_cls = self.uf.find(self._pointee_of(pointer))
            callees = sorted(func_classes.get(pointee_cls, []))
            self.result.indirect_callees[call.uid] = callees
            for callee in callees:
                self._wire_call(function, call, callee)
        self._populate_members()
        return self.result

    def _populate_members(self) -> None:
        # Location members per class, and which classes are pointed to.
        locations: list[Node] = []
        for fn_name, function in self.module.functions.items():
            for var in function.variables:
                locations.append(loc_node(fn_name, var))
        for location in locations:
            self.result.members.setdefault(self.uf.find(location), set()).add(location)
        for cls, target in list(self.pointee.items()):
            # A class with a pointee that contains locations means those
            # locations are pointed to by members of `cls`.
            target_cls = self.uf.find(target)
            if self.result.members.get(target_cls):
                self.result._pointed_classes.add(target_cls)


def analyze_module_steensgaard(module: Module) -> SteensgaardResult:
    """Run Steensgaard's analysis over ``module``."""
    return _Solver(module).solve()
