"""Flow-sensitive (intraprocedural) points-to analysis.

The precise-but-costly end of the §4.1 design space: per-program-point
points-to sets with strong updates on direct stores.  The paper chooses
Andersen's instead, citing scalability and a "small difference in help
detecting unused definitions" (Hind & Pioli) — the pointer-analysis
ablation benchmark measures exactly that on our corpora.

Scope: intraprocedural, with conservative escape handling at calls (a
location whose address reaches a call argument may be read/written by
the callee).  The result object exposes the same client interface as
``AndersenResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.traversal import reverse_postorder
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Store,
    UnOp,
    Select,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import FuncRef, Temp, Value
from repro.pointer.andersen import Node, _EMPTY_PTS, func_node, loc_node, temp_node

_State = dict[Node, frozenset[Node]]


def _join(a: _State, b: _State) -> _State:
    out = dict(a)
    for key, value in b.items():
        existing = out.get(key)
        out[key] = value if existing is None else existing | value
    return out


@dataclass
class FlowSensitiveResult:
    """Client-compatible result; points-to sets are the union over all
    program points (the client queries are flow-insensitive)."""

    module: Module
    points_to: dict[Node, set[Node]] = field(default_factory=dict)
    _pointed: set[Node] = field(default_factory=set)
    indirect_callees: dict[int, list[str]] = field(default_factory=dict)

    def pts(self, node: Node) -> frozenset[Node]:
        # Immutable view over the working set (which the per-function
        # solvers keep mutating until the module sweep finishes).
        pointees = self.points_to.get(node)
        return frozenset(pointees) if pointees else _EMPTY_PTS

    def pts_of_var(self, function: Function | str, var: str) -> frozenset[Node]:
        name = function if isinstance(function, str) else function.name
        return self.pts(loc_node(name, var))

    def is_pointed_to(self, function: Function | str, var: str) -> bool:
        name = function if isinstance(function, str) else function.name
        base = loc_node(name, var.split("#", 1)[0])
        return base in self._pointed or loc_node(name, var) in self._pointed

    def callees_of(self, call: Call) -> list[str]:
        if call.callee is not None:
            return [call.callee]
        return self.indirect_callees.get(call.uid, [])


class _FunctionSolver:
    def __init__(self, function: Function, module: Module, result: FlowSensitiveResult):
        self.function = function
        self.module = module
        self.result = result
        self.name = function.name

    def _value_pts(self, state: _State, value: Value) -> frozenset[Node]:
        if isinstance(value, Temp):
            return state.get(temp_node(self.name, value), frozenset())
        if isinstance(value, FuncRef):
            return frozenset((func_node(value.name),))
        return frozenset()

    def _addr_key(self, addr) -> Node | None:
        if isinstance(addr, VarAddr):
            return loc_node(self.name, addr.var)
        if isinstance(addr, FieldAddr):
            return loc_node(self.name, addr.tracked_var() or addr.var)
        if isinstance(addr, ElementAddr):
            return loc_node(self.name, addr.var)
        if isinstance(addr, GlobalAddr):
            return f"glob:{addr.name}"
        return None

    def _record(self, node: Node, pointees: frozenset[Node]) -> None:
        if pointees:
            self.result.points_to.setdefault(node, set()).update(pointees)

    def _transfer(self, instruction, state: _State) -> _State:
        name = self.name
        if isinstance(instruction, AddrOf):
            key = self._addr_key(instruction.addr)
            if key is not None:
                target = temp_node(name, instruction.dest)
                state = dict(state)
                state[target] = frozenset((key,))
                self._record(target, state[target])
        elif isinstance(instruction, Load):
            dest = temp_node(name, instruction.dest)
            addr = instruction.addr
            key = self._addr_key(addr)
            pointees: frozenset[Node] = frozenset()
            if key is not None:
                pointees = state.get(key, frozenset())
            elif isinstance(addr, DerefAddr):
                for obj in self._value_pts(state, addr.pointer):
                    pointees |= state.get(obj, frozenset())
            if pointees:
                state = dict(state)
                state[dest] = pointees
                self._record(dest, pointees)
        elif isinstance(instruction, Store):
            value_pts = self._value_pts(state, instruction.value)
            addr = instruction.addr
            key = self._addr_key(addr)
            if key is not None:
                state = dict(state)
                state[key] = value_pts  # strong update on direct stores
                self._record(key, value_pts)
            elif isinstance(addr, DerefAddr) and value_pts:
                targets = self._value_pts(state, addr.pointer)
                if targets:
                    state = dict(state)
                    for obj in targets:  # weak update through pointers
                        state[obj] = state.get(obj, frozenset()) | value_pts
                        self._record(obj, state[obj])
        elif isinstance(instruction, (BinOp, UnOp, CastOp, Select)):
            dest = instruction.result()
            if dest is not None:
                merged: frozenset[Node] = frozenset()
                for operand in instruction.operands():
                    merged |= self._value_pts(state, operand)
                if merged:
                    state = dict(state)
                    state[temp_node(name, dest)] = merged
                    self._record(temp_node(name, dest), merged)
        elif isinstance(instruction, Call):
            # Conservative escape: every location reachable from pointer
            # arguments may be read or written by the callee.
            escaped: frozenset[Node] = frozenset()
            for argument in instruction.args:
                escaped |= self._value_pts(state, argument)
            for obj in escaped:
                self.result._pointed.add(obj)
            if instruction.callee is None and instruction.callee_value is not None:
                funcs = sorted(
                    node[len("func:") :]
                    for node in self._value_pts(state, instruction.callee_value)
                    if node.startswith("func:")
                )
                if funcs:
                    self.result.indirect_callees[instruction.uid] = funcs
        return state

    def solve(self) -> None:
        order = reverse_postorder(self.function)
        seen = {id(block) for block in order}
        order.extend(b for b in self.function.blocks if id(b) not in seen)
        block_out: dict[int, _State] = {id(b): {} for b in self.function.blocks}
        block_in: dict[int, _State] = {id(b): {} for b in self.function.blocks}
        for _ in range(50):
            changed = False
            for block in order:
                in_state: _State = {}
                for predecessor in block.predecessors:
                    in_state = _join(in_state, block_out[id(predecessor)])
                if in_state != block_in[id(block)]:
                    block_in[id(block)] = in_state
                    changed = True
                state = in_state
                for instruction in block.instructions:
                    state = self._transfer(instruction, state)
                if state != block_out[id(block)]:
                    block_out[id(block)] = state
                    changed = True
            if not changed:
                break
        # The pointed set: anything in some pointer's final points-to set.
        for pointees in self.result.points_to.values():
            for obj in pointees:
                self.result._pointed.add(obj)


def analyze_module_flow_sensitive(module: Module) -> FlowSensitiveResult:
    """Run the flow-sensitive analysis over every function."""
    result = FlowSensitiveResult(module=module)
    for function in module.functions.values():
        _FunctionSolver(function, module, result).solve()
    return result
