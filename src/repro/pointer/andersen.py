"""Field-sensitive Andersen's (inclusion-based) pointer analysis.

Abstract domain
---------------

Nodes are strings:

* ``tmp:<fn>:%tN``   — a temp (virtual register) in function ``fn``
* ``loc:<fn>:v``     — the stack slot of local/param ``v`` (abstract object)
* ``loc:<fn>:v#f``   — field ``f`` of struct local ``v`` (field-sensitive)
* ``glob:g``         — a global variable's storage
* ``func:f``         — function ``f`` as an abstract object (for function
  pointers)
* ``arg:<fn>#i`` / ``ret:<fn>`` — parameter/return conduits used to wire
  calls inter-procedurally within the module (the paper analyses one
  bitcode file at a time; so do we)

Constraints, extracted from the IR:

* ``AddrOf t, &v``      → ``{loc(v)} ⊆ pts(t)``  (base constraint)
* ``Load t, &v``        → copy ``loc(v) → t``
* ``Store val → &v``    → copy ``val → loc(v)``
* ``Load t, *(p)``      → ∀ o ∈ pts(p): copy ``o → t``     (complex)
* ``Store val → *(p)``  → ∀ o ∈ pts(p): copy ``val → o``   (complex)
* ``p->f`` variants use the field child ``o#f`` of each pointee
* calls copy argument values into ``arg:callee#i`` and ``ret:callee``
  into the destination; indirect calls resolve through ``func:*`` pointees

Arrays are smashed (one abstract object per array).

Solver representation
---------------------

The string node names above are the *external* vocabulary only.  The
solver interns every node into a dense integer id through a
:class:`NodeTable` the moment it is first mentioned, and from then on:

* **points-to sets are int bitmasks** — bit *i* set means "points to the
  object interned as id *i*".  Merging a delta is one ``|``; computing
  the genuinely-new part is one ``& ~``; sets share representation
  freely because ints are immutable (copy-on-write for free), and the
  result layer interns each distinct bitmask to a single ``frozenset``
  view so equal sets are materialised once.
* **cycles collapse online** — a union-find over the copy graph merges
  every strongly connected component into one representative node.  A
  full Tarjan pass after constraint construction collapses static
  cycles; during propagation, amortised sweeps re-run Tarjan over the
  condensed graph whenever complex constraints have inserted new copy
  edges (only a new edge can close a new cycle) and enough pops have
  elapsed — per-edge lazy triggers degrade quadratically on saturated
  acyclic chains.  Long copy cycles — which the difference-propagation
  reference walks pointee by pointee, node by node — become a single
  ``|`` into one representative.
* **the worklist is topologically ordered** — nodes are prioritised by
  the (reverse post-) order of the collapsed copy DAG, so pointees flow
  source-to-sink and each node is typically popped O(1) times.

The reference implementation this replaced (string keys, dict-of-set
difference propagation, no collapsing) is retained verbatim in
:mod:`repro.pointer.andersen_reference`; the differential property test
holds the two to identical fixpoints, and ``stages.solver`` in the BENCH
trajectory holds this solver to a ≥10× speedup over it.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.ir.instructions import (
    AddrOf,
    Address,
    BinOp,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    UnOp,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstInt, ConstStr, FuncRef, ParamValue, Temp, Undef, Value

Node = str

# Worklist-pop budget: a backstop against pathological constraint systems.
# With difference propagation each (node, pointee) pair is popped O(1)
# times, so real modules converge far below this.  Hitting it clears
# ``AndersenResult.converged``; the engine records the event in the run's
# metrics registry and propagates the flag into ``Report.converged``.
ITERATION_LIMIT = 200_000

_FUNC_PREFIX = "func:"


def temp_node(function: str, temp: Temp) -> Node:
    return f"tmp:{function}:%t{temp.id}"


def loc_node(function: str, var: str) -> Node:
    return f"loc:{function}:{var}"


def global_node(name: str) -> Node:
    return f"glob:{name}"


def func_node(name: str) -> Node:
    return f"func:{name}"


def arg_node(function: str, index: int) -> Node:
    return f"arg:{function}#{index}"


def ret_node(function: str) -> Node:
    return f"ret:{function}"


def field_child(obj: Node, field_name: str) -> Node:
    return f"{obj}#{field_name}"


# Shared sentinel for pointer-free nodes: ``pts`` misses are frequent on
# hot paths (the alias check probes every candidate variable), so a fresh
# set per miss is pure allocation churn.  Frozen so no caller can mutate
# converged solver state by accident.
_EMPTY_PTS: frozenset[Node] = frozenset()


class NodeTable:
    """Interns string node names to dense integer ids.

    Ids are assigned in first-mention order, which the IR walk makes
    deterministic — the same module always produces the same table, so
    bitmask values (and everything derived from them) are reproducible
    across executors and cache replays.
    """

    __slots__ = ("ids", "names")

    def __init__(self) -> None:
        self.ids: dict[Node, int] = {}
        self.names: list[Node] = []

    def intern(self, name: Node) -> int:
        nid = self.ids.get(name)
        if nid is None:
            nid = len(self.names)
            self.ids[name] = nid
            self.names.append(name)
        return nid

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: Node) -> bool:
        return name in self.ids


def _bits_to_ids(bits: int) -> list[int]:
    """Set bit positions of ``bits``, ascending."""
    ids = []
    while bits:
        low = bits & -bits
        ids.append(low.bit_length() - 1)
        bits ^= low
    return ids


class AndersenResult:
    """Converged points-to information plus client query helpers.

    Backed by the solver's interned state: queries translate string
    nodes through the :class:`NodeTable` and answer from bitmasks.
    ``pts`` returns immutable ``frozenset`` views, interned per distinct
    bitmask — callers can never corrupt the converged solver state.
    """

    __slots__ = (
        "module",
        "indirect_callees",
        "converged",
        "iterations",
        "nodes",
        "scc_collapsed",
        "_table",
        "_parent",
        "_pts_bits",
        "_pointed_bits",
        "_views",
        "_points_to",
    )

    def __init__(
        self,
        module: Module | None = None,
        table: NodeTable | None = None,
        parent: list[int] | None = None,
        pts_bits: list[int] | None = None,
        pointed_bits: int = 0,
        indirect_callees: dict[int, list[str]] | None = None,
        converged: bool = True,
        iterations: int = 0,
        scc_collapsed: int = 0,
    ):
        self.module = module
        self._table = table if table is not None else NodeTable()
        self._parent = parent if parent is not None else []
        self._pts_bits = pts_bits if pts_bits is not None else []
        self._pointed_bits = pointed_bits
        # Resolved callee names for each indirect Call, keyed by uid.
        self.indirect_callees = indirect_callees if indirect_callees is not None else {}
        # False when the solver hit its iteration limit before reaching a
        # fixpoint — points-to sets are then an under-approximation.
        self.converged = converged
        # Worklist pops the solver spent reaching (or abandoning) the
        # fixpoint; feeds the `andersen.iterations` histogram.  Pops are
        # counted over the *collapsed* graph, so the number stays
        # proportional to real propagation work after SCC merging.
        self.iterations = iterations
        # Distinct nodes interned / nodes merged away by cycle collapsing;
        # feed the `andersen.bitset_nodes` / `andersen.scc_collapsed`
        # metrics.
        self.nodes = len(self._table)
        self.scc_collapsed = scc_collapsed
        # Bitmask -> frozenset view interning: equal sets share one view.
        self._views: dict[int, frozenset[Node]] = {}
        self._points_to: dict[Node, frozenset[Node]] | None = None

    # -- interned lookups ------------------------------------------------

    def _rep(self, nid: int) -> int:
        parent = self._parent
        while parent[nid] != nid:
            nid = parent[nid]
        return nid

    def _bits_of(self, node: Node) -> int:
        nid = self._table.ids.get(node)
        if nid is None:
            return 0
        return self._pts_bits[self._rep(nid)]

    def _view(self, bits: int) -> frozenset[Node]:
        if not bits:
            return _EMPTY_PTS
        view = self._views.get(bits)
        if view is None:
            names = self._table.names
            view = frozenset(names[i] for i in _bits_to_ids(bits))
            self._views[bits] = view
        return view

    # -- public queries --------------------------------------------------

    @property
    def points_to(self) -> dict[Node, frozenset[Node]]:
        """Every node with a non-empty points-to set, as immutable views
        (materialised lazily; mutating the returned dict cannot touch
        solver state)."""
        if self._points_to is None:
            out: dict[Node, frozenset[Node]] = {}
            pts_bits = self._pts_bits
            for name, nid in self._table.ids.items():
                bits = pts_bits[self._rep(nid)]
                if bits:
                    out[name] = self._view(bits)
            self._points_to = out
        return self._points_to

    def pts(self, node: Node) -> frozenset[Node]:
        return self._view(self._bits_of(node))

    def pts_of_var(self, function: Function | str, var: str) -> frozenset[Node]:
        name = function if isinstance(function, str) else function.name
        return self.pts(loc_node(name, var))

    def is_pointed_to(self, function: Function | str, var: str) -> bool:
        """Paper §4.1: a definition variable included in another pointer's
        points-to set may be used through indirect reference.  (A node
        whose only pointer is itself does not count.)"""
        name = function if isinstance(function, str) else function.name
        ids = self._table.ids
        pointed = self._pointed_bits
        base = var.split("#", 1)[0]
        nid = ids.get(loc_node(name, base))
        if nid is not None and (pointed >> nid) & 1:
            return True
        if base != var:
            nid = ids.get(loc_node(name, var))
            if nid is not None and (pointed >> nid) & 1:
                return True
        return False

    def callees_of(self, call: Call) -> list[str]:
        if call.callee is not None:
            return [call.callee]
        return self.indirect_callees.get(call.uid, [])


class _Solver:
    """Interned-bitset difference-propagation solver with SCC collapsing.

    Per-node state lives in parallel lists indexed by interned id; all
    of it (points-to mask, pending delta mask, copy successors, complex
    constraints) is owned by the node's union-find *representative*, so
    collapsing a cycle concatenates a few lists and ORs two ints.

    ``delta[n]`` holds pointees added to ``pts(n)`` that have not yet
    flowed to its successors; the worklist schedules exactly the
    representatives with a pending delta, ordered by the copy graph's
    topological order.  New copy edges and complex constraints are
    seeded with the *current* points-to set at registration time, so
    later delta pops only ever handle genuinely new pointees.
    """

    def __init__(self, module: Module):
        self.module = module
        self.table = NodeTable()
        # Parallel per-node state, indexed by interned id; authoritative
        # only at union-find representatives.
        self.pts: list[int] = []  # points-to bitmask
        self.delta: list[int] = []  # pending (unpropagated) bitmask
        self.succ: list[set[int]] = []  # copy-edge successors (may go stale)
        self.loads: list[list[tuple[int, str | None]]] = []  # (dest, field)
        self.stores: list[list[tuple[int, str | None]]] = []  # (value, field)
        self.indirect: list[list[tuple[Call, str]]] = []  # (call, caller fn)
        self.parent: list[int] = []  # union-find parent
        self.rank: list[int] = []  # SCC member count at the rep
        self.order: list[int] = []  # worklist priority (topological)
        # Bitmask of objects pointed to by some node other than themselves.
        self.pointed = 0
        # Worklist: (order, id) min-heap plus an enqueued-membership mask.
        self.worklist: list[tuple[int, int]] = []
        self.enqueued = 0
        self.scc_collapsed = 0
        self.resolved_calls: set[tuple[int, str]] = set()
        self.indirect_callees: dict[int, list[str]] = {}
        # Copy edges inserted since the last cycle-collapse sweep.  A new
        # cycle can only appear when an edge is added, so online sweeps
        # are gated on this counter (and rate-limited by pop count) —
        # per-edge lazy detection walks acyclic chains quadratically.
        self.new_edges = 0
        # id -> callee name for func:* nodes (the indirect-call filter).
        self.func_name: dict[int, str] = {}
        # (obj id, field) -> field-child id, so hot complex constraints
        # skip the string formatting + intern after the first hit.
        self.field_cache: dict[tuple[int, str], int] = {}

    # -- node interning ----------------------------------------------------

    def _node(self, name: Node) -> int:
        nid = self.table.ids.get(name)
        if nid is None:
            nid = self.table.intern(name)
            self.pts.append(0)
            self.delta.append(0)
            self.succ.append(set())
            self.loads.append([])
            self.stores.append([])
            self.indirect.append([])
            self.parent.append(nid)
            self.rank.append(1)
            # Nodes discovered during propagation keep creation order as
            # their priority; build-time nodes are re-ordered by the
            # offline Tarjan pass.
            self.order.append(nid)
            if name.startswith(_FUNC_PREFIX):
                self.func_name[nid] = name[len(_FUNC_PREFIX) :]
        return nid

    def _field_child(self, obj: int, field_name: str) -> int:
        key = (obj, field_name)
        child = self.field_cache.get(key)
        if child is None:
            child = self._node(f"{self.table.names[obj]}#{field_name}")
            self.field_cache[key] = child
        return child

    def _find(self, nid: int) -> int:
        parent = self.parent
        root = nid
        while parent[root] != root:
            root = parent[root]
        while parent[nid] != root:  # path compression
            parent[nid], nid = root, parent[nid]
        return root

    # -- propagation primitives -------------------------------------------

    def _schedule(self, rep: int) -> None:
        bit = 1 << rep
        if not (self.enqueued & bit):
            self.enqueued |= bit
            heappush(self.worklist, (self.order[rep], rep))

    def _diff_into(self, node: int, bits: int) -> None:
        """OR ``bits`` into ``pts(node)``; only genuinely new pointees
        enter the delta and reschedule the node.  The pointed-to mask is
        maintained here, incrementally: every fresh pointee is pointed
        to unless its only pointer is the (singleton) node itself."""
        rep = self._find(node)
        fresh = bits & ~self.pts[rep]
        if not fresh:
            return
        self.pts[rep] |= fresh
        if self.rank[rep] == 1:
            self.pointed |= fresh & ~(1 << rep)
        else:
            # A collapsed SCC has ≥2 member nodes, so each pointee is in
            # the points-to set of some node other than itself.
            self.pointed |= fresh
        self.delta[rep] |= fresh
        self._schedule(rep)

    def _add_base(self, node: int, obj: int) -> None:
        self._diff_into(node, 1 << obj)

    def _add_copy(self, source: int, target: int) -> None:
        rs, rt = self._find(source), self._find(target)
        if rs == rt:
            return
        succ = self.succ[rs]
        if rt not in succ:
            succ.add(rt)
            self.new_edges += 1
            pts = self.pts[rs]
            if pts:
                # Seed the new edge with everything already known; future
                # growth arrives through the source's delta.
                self._diff_into(rt, pts)

    # -- cycle collapsing --------------------------------------------------

    def _merge_pair(self, keep: int, drop: int) -> int:
        """Union two representatives; all per-node state moves to the
        survivor (higher-rank rep, for shallow union-find trees)."""
        if self.rank[keep] < self.rank[drop]:
            keep, drop = drop, keep
        merged_pts = self.pts[keep] | self.pts[drop]
        # Self-pointees excluded while the rep was a singleton become
        # pointed now: the SCC gains a second member.
        if self.rank[keep] == 1 and (merged_pts >> keep) & 1:
            self.pointed |= 1 << keep
        if self.rank[drop] == 1 and (merged_pts >> drop) & 1:
            self.pointed |= 1 << drop
        self.parent[drop] = keep
        self.rank[keep] += self.rank[drop]
        self.pts[keep] = merged_pts
        self.pts[drop] = 0
        self.delta[keep] |= self.delta[drop]
        self.delta[drop] = 0
        merged_succ: set[int] = set()
        for target in self.succ[keep] | self.succ[drop]:
            rt = self._find(target)
            if rt != keep:
                merged_succ.add(rt)
        self.succ[keep] = merged_succ
        self.succ[drop] = set()
        self.loads[keep] += self.loads[drop]
        self.loads[drop] = []
        self.stores[keep] += self.stores[drop]
        self.stores[drop] = []
        self.indirect[keep] += self.indirect[drop]
        self.indirect[drop] = []
        if self.order[drop] < self.order[keep]:
            self.order[keep] = self.order[drop]
        self.scc_collapsed += 1
        return keep

    def _merge_group(self, members: list[int]) -> None:
        """Collapse one SCC (its current representatives) to one node and
        re-propagate the merged set once — members may have flushed their
        deltas to disjoint successor sets before the merge."""
        members = sorted(members)
        rep = members[0]
        for other in members[1:]:
            rep = self._merge_pair(rep, other)
        if self.pts[rep]:
            self.delta[rep] = self.pts[rep]
            self._schedule(rep)

    def _collapse_sccs(self, roots: list[int], assign_order: bool = False) -> None:
        """Iterative Tarjan over the copy graph restricted to what is
        reachable from ``roots``; every non-trivial SCC collapses.  With
        ``assign_order`` the pass doubles as the topological sort: SCCs
        pop off Tarjan's stack sinks-first, so numbering them from high
        to low gives sources the smallest worklist priority."""
        find = self._find
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        instack: set[int] = set()
        stack: list[int] = []
        sccs: list[list[int]] = []
        counter = 0
        for root in roots:
            root = find(root)
            if root in index:
                continue
            frames: list[list] = [[root, None, 0]]
            while frames:
                frame = frames[-1]
                node = frame[0]
                if frame[1] is None:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    instack.add(node)
                    frame[1] = sorted({find(t) for t in self.succ[node]} - {node})
                children = frame[1]
                descended = False
                while frame[2] < len(children):
                    child = children[frame[2]]
                    frame[2] += 1
                    if child not in index:
                        frames.append([child, None, 0])
                        descended = True
                        break
                    if child in instack and index[child] < low[node]:
                        low[node] = index[child]
                if descended:
                    continue
                frames.pop()
                if frames and low[node] < low[frames[-1][0]]:
                    low[frames[-1][0]] = low[node]
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        instack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)
        if assign_order:
            # Tarjan emits SCCs in reverse topological order of the
            # condensation: number from high to low.
            next_order = len(sccs)
            for scc in sccs:
                next_order -= 1
                for member in scc:
                    self.order[member] = next_order
        # Merging rewires find(); do it only after the traversal is done.
        for scc in sccs:
            if len(scc) > 1:
                self._merge_group(scc)

    # -- constraint construction helpers ----------------------------------

    def _value_node(self, function: Function, value: Value) -> int | None:
        if isinstance(value, Temp):
            return self._node(temp_node(function.name, value))
        if isinstance(value, FuncRef):
            node = self._node(f"const:{func_node(value.name)}")
            self._add_base(node, self._node(func_node(value.name)))
            return node
        if isinstance(value, ParamValue):
            return self._node(arg_node(function.name, value.index))
        if isinstance(value, (ConstInt, ConstStr, Undef)):
            return None
        return None

    def _addr_object(self, function: Function, addr: Address) -> int | None:
        """The abstract object a *direct* address denotes (None if the
        address is a deref, handled via complex constraints)."""
        if isinstance(addr, VarAddr):
            return self._node(loc_node(function.name, addr.var))
        if isinstance(addr, FieldAddr):
            return self._node(loc_node(function.name, addr.tracked_var() or addr.var))
        if isinstance(addr, ElementAddr):
            return self._node(loc_node(function.name, addr.var))  # array smashing
        if isinstance(addr, GlobalAddr):
            return self._node(global_node(addr.name))
        return None

    # -- constraint extraction ---------------------------------------------

    def build(self) -> None:
        for function in self.module.functions.values():
            self._build_function(function)

    def _build_function(self, function: Function) -> None:
        name = function.name
        for instruction in function.instructions():
            if isinstance(instruction, AddrOf):
                obj = self._addr_object(function, instruction.addr)
                if obj is not None:
                    self._add_base(self._node(temp_node(name, instruction.dest)), obj)
            elif isinstance(instruction, Load):
                dest = self._node(temp_node(name, instruction.dest))
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    self._add_copy(obj, dest)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None:
                        rep = self._find(pointer)
                        self.loads[rep].append((dest, addr.field))
                        for obj in _bits_to_ids(self.pts[rep]):
                            self._apply_load(dest, addr.field, obj)
            elif isinstance(instruction, Store):
                value = self._value_node(function, instruction.value)
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    if value is not None:
                        self._add_copy(value, obj)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None and value is not None:
                        rep = self._find(pointer)
                        self.stores[rep].append((value, addr.field))
                        for obj in _bits_to_ids(self.pts[rep]):
                            self._apply_store(value, addr.field, obj)
            elif isinstance(instruction, (BinOp, UnOp, CastOp, Select)):
                # Pointer arithmetic / casts / selects preserve pointees.
                dest = instruction.result()
                if dest is not None:
                    dest_node = self._node(temp_node(name, dest))
                    for operand in instruction.operands():
                        source = self._value_node(function, operand)
                        if source is not None:
                            self._add_copy(source, dest_node)
            elif isinstance(instruction, Call):
                self._build_call(function, instruction)
            elif isinstance(instruction, Ret):
                if instruction.value is not None:
                    source = self._value_node(function, instruction.value)
                    if source is not None:
                        self._add_copy(source, self._node(ret_node(name)))

    def _wire_direct_call(self, function: Function, call: Call, callee_name: str) -> None:
        for index, argument in enumerate(call.args):
            source = self._value_node(function, argument)
            if source is not None:
                self._add_copy(source, self._node(arg_node(callee_name, index)))
        if call.dest is not None:
            self._add_copy(
                self._node(ret_node(callee_name)),
                self._node(temp_node(function.name, call.dest)),
            )

    def _build_call(self, function: Function, call: Call) -> None:
        if call.callee is not None:
            self._wire_direct_call(function, call, call.callee)
            return
        pointer = self._value_node(function, call.callee_value) if call.callee_value is not None else None
        if pointer is not None:
            rep = self._find(pointer)
            self.indirect[rep].append((call, function.name))
            for obj in _bits_to_ids(self.pts[rep]):
                self._apply_indirect(call, function.name, obj)

    # -- complex-constraint application -----------------------------------

    def _apply_load(self, dest: int, field_name: str | None, obj: int) -> None:
        source = self._field_child(obj, field_name) if field_name else obj
        self._add_copy(source, dest)

    def _apply_store(self, value: int, field_name: str | None, obj: int) -> None:
        target = self._field_child(obj, field_name) if field_name else obj
        self._add_copy(value, target)

    def _apply_indirect(self, call: Call, caller: str, obj: int) -> None:
        callee_name = self.func_name.get(obj)
        if callee_name is None:
            return
        key = (call.uid, callee_name)
        if key in self.resolved_calls:
            return
        self.resolved_calls.add(key)
        self.indirect_callees.setdefault(call.uid, []).append(callee_name)
        caller_fn = self.module.functions.get(caller)
        if caller_fn is not None:
            self._wire_direct_call(caller_fn, call, callee_name)

    # -- the solve loop ----------------------------------------------------

    def solve(self) -> AndersenResult:
        self.build()
        # Offline pass: collapse build-time cycles, assign topological
        # worklist priorities over the condensed copy graph.
        self._collapse_sccs(list(range(len(self.parent))), assign_order=True)
        self.new_edges = 0

        find = self._find
        delta = self.delta
        worklist = self.worklist
        # Entries pushed during build carry pre-topological priorities;
        # rebuild the heap so the first sweep runs source-to-sink.
        seeded = sorted({find(node) for _, node in worklist})
        worklist.clear()
        self.enqueued = 0
        for node in seeded:
            if delta[node]:
                self._schedule(node)
        # Online cycle collapsing, amortised: complex constraints add copy
        # edges mid-solve, and only a new edge can close a new cycle.
        # Sweep the whole (condensed) graph with one Tarjan pass when
        # edges have been added and enough pops have gone by — O(N+E) per
        # sweep, rate-limited so total sweep cost stays linear-ish.
        sweep_threshold = max(32, len(self.parent) // 2)
        pops_since_sweep = 0
        iterations = 0
        limit = ITERATION_LIMIT
        while worklist and iterations < limit:
            iterations += 1
            pops_since_sweep += 1
            if self.new_edges and pops_since_sweep >= sweep_threshold:
                self._collapse_sccs(list(range(len(self.parent))))
                self.new_edges = 0
                pops_since_sweep = 0
            _, node = heappop(worklist)
            self.enqueued &= ~(1 << node)
            if self.parent[node] != node:
                continue  # merged away while enqueued; the rep is scheduled
            pending = delta[node]
            if not pending:
                continue
            delta[node] = 0
            # Copy edges: only the delta flows (difference propagation).
            for target in tuple(self.succ[node]):
                rt = find(target)
                if rt != node:
                    self._diff_into(rt, pending)
            objs = None
            loads = self.loads[node]
            stores = self.stores[node]
            indirect = self.indirect[node]
            if loads or stores or indirect:
                objs = _bits_to_ids(pending)
            # Complex loads: dest ⊇ pts(o) for each *new* pointee o.
            if loads:
                for dest, field_name in loads:
                    for obj in objs:
                        self._apply_load(dest, field_name, obj)
            # Complex stores: o ⊇ pts(value) for each new pointee o.
            if stores:
                for value, field_name in stores:
                    for obj in objs:
                        self._apply_store(value, field_name, obj)
            # Indirect calls: wire params/returns of newly seen pointees.
            if indirect:
                for call, caller in indirect:
                    for obj in objs:
                        self._apply_indirect(call, caller, obj)

        converged = True
        for _, node in worklist:
            if delta[find(node)]:
                converged = False
                break
        for callees in self.indirect_callees.values():
            callees.sort()
        return AndersenResult(
            module=self.module,
            table=self.table,
            parent=self.parent,
            pts_bits=self.pts,
            pointed_bits=self.pointed,
            indirect_callees=self.indirect_callees,
            converged=converged,
            iterations=iterations,
            scc_collapsed=self.scc_collapsed,
        )


def analyze_module(module: Module) -> AndersenResult:
    """Run Andersen's analysis over every function in ``module``."""
    return _Solver(module).solve()
