"""Field-sensitive Andersen's (inclusion-based) pointer analysis.

Abstract domain
---------------

Nodes are strings:

* ``tmp:<fn>:%tN``   — a temp (virtual register) in function ``fn``
* ``loc:<fn>:v``     — the stack slot of local/param ``v`` (abstract object)
* ``loc:<fn>:v#f``   — field ``f`` of struct local ``v`` (field-sensitive)
* ``glob:g``         — a global variable's storage
* ``func:f``         — function ``f`` as an abstract object (for function
  pointers)
* ``arg:<fn>#i`` / ``ret:<fn>`` — parameter/return conduits used to wire
  calls inter-procedurally within the module (the paper analyses one
  bitcode file at a time; so do we)

Constraints, extracted from the IR:

* ``AddrOf t, &v``      → ``{loc(v)} ⊆ pts(t)``  (base constraint)
* ``Load t, &v``        → copy ``loc(v) → t``
* ``Store val → &v``    → copy ``val → loc(v)``
* ``Load t, *(p)``      → ∀ o ∈ pts(p): copy ``o → t``     (complex)
* ``Store val → *(p)``  → ∀ o ∈ pts(p): copy ``val → o``   (complex)
* ``p->f`` variants use the field child ``o#f`` of each pointee
* calls copy argument values into ``arg:callee#i`` and ``ret:callee``
  into the destination; indirect calls resolve through ``func:*`` pointees

Arrays are smashed (one abstract object per array).  The solver is a
**difference-propagation** worklist algorithm: each node carries a delta
of newly-discovered pointees, and only that delta flows along copy edges
or re-evaluates complex constraints.  The classic formulation re-unions
whole points-to sets on every pop, which is quadratic in the common case
of long copy chains; propagating deltas makes each (edge, pointee) pair
cost O(1) amortised.  This matches the paper's choice of a scalable
may-analysis over a flow-sensitive one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ir.instructions import (
    AddrOf,
    Address,
    BinOp,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    StoreKind,
    UnOp,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstInt, ConstStr, FuncRef, ParamValue, Temp, Undef, Value

Node = str

# Worklist-pop budget: a backstop against pathological constraint systems.
# With difference propagation each (node, pointee) pair is popped O(1)
# times, so real modules converge far below this.  Hitting it clears
# ``AndersenResult.converged``; the engine records the event in the run's
# metrics registry and propagates the flag into ``Report.converged``.
ITERATION_LIMIT = 200_000


def temp_node(function: str, temp: Temp) -> Node:
    return f"tmp:{function}:%t{temp.id}"


def loc_node(function: str, var: str) -> Node:
    return f"loc:{function}:{var}"


def global_node(name: str) -> Node:
    return f"glob:{name}"


def func_node(name: str) -> Node:
    return f"func:{name}"


def arg_node(function: str, index: int) -> Node:
    return f"arg:{function}#{index}"


def ret_node(function: str) -> Node:
    return f"ret:{function}"


def field_child(obj: Node, field_name: str) -> Node:
    return f"{obj}#{field_name}"


@dataclass
class _LoadVia:
    pointer: Node
    dest: Node
    field: str | None


@dataclass
class _StoreVia:
    pointer: Node
    value: Node
    field: str | None


@dataclass
class _IndirectCall:
    pointer: Node
    call: Call
    caller: str


# Shared sentinel for pointer-free nodes: ``pts`` misses are frequent on
# hot paths (the alias check probes every candidate variable), so a fresh
# set per miss is pure allocation churn.  Frozen so no caller can mutate
# shared state by accident.
_EMPTY_PTS: frozenset[Node] = frozenset()


@dataclass
class AndersenResult:
    """Converged points-to information plus client query helpers."""

    points_to: dict[Node, set[Node]] = field(default_factory=dict)
    module: Module | None = None
    # Objects that appear in at least one pointer's points-to set.
    _pointed: set[Node] = field(default_factory=set)
    # Resolved callee names for each indirect Call, keyed by uid.
    indirect_callees: dict[int, list[str]] = field(default_factory=dict)
    # False when the solver hit its iteration limit before reaching a
    # fixpoint — points-to sets are then an under-approximation.
    converged: bool = True
    # Worklist pops the solver spent reaching (or abandoning) the
    # fixpoint; feeds the `andersen.iterations` histogram.
    iterations: int = 0

    def pts(self, node: Node) -> set[Node] | frozenset[Node]:
        return self.points_to.get(node, _EMPTY_PTS)

    def pts_of_var(self, function: Function | str, var: str) -> set[Node]:
        name = function if isinstance(function, str) else function.name
        return self.pts(loc_node(name, var))

    def is_pointed_to(self, function: Function | str, var: str) -> bool:
        """Paper §4.1: a definition variable included in another pointer's
        points-to set may be used through indirect reference."""
        name = function if isinstance(function, str) else function.name
        base = loc_node(name, var.split("#", 1)[0])
        exact = loc_node(name, var)
        return base in self._pointed or exact in self._pointed

    def callees_of(self, call: Call) -> list[str]:
        if call.callee is not None:
            return [call.callee]
        return self.indirect_callees.get(call.uid, [])


class _Solver:
    """Difference-propagation solver.

    ``delta[node]`` holds pointees added to ``pts(node)`` that have not yet
    flowed to its successors; the worklist schedules exactly the nodes with
    a pending delta.  New copy edges and complex constraints are seeded
    with the *current* points-to set at registration time, so later delta
    pops only ever handle genuinely new pointees.
    """

    def __init__(self, module: Module):
        self.module = module
        self.points_to: dict[Node, set[Node]] = {}
        self.delta: dict[Node, set[Node]] = {}
        self.copy_edges: dict[Node, set[Node]] = {}
        self.load_constraints: dict[Node, list[_LoadVia]] = {}
        self.store_constraints: dict[Node, list[_StoreVia]] = {}
        self.indirect_calls: dict[Node, list[_IndirectCall]] = {}
        self.worklist: deque[Node] = deque()
        self.enqueued: set[Node] = set()
        self.resolved_calls: set[tuple[int, str]] = set()
        self.result = AndersenResult(points_to=self.points_to, module=module)

    # -- constraint construction helpers ----------------------------------

    def _pts(self, node: Node) -> set[Node]:
        return self.points_to.setdefault(node, set())

    def _schedule(self, node: Node) -> None:
        if node not in self.enqueued:
            self.enqueued.add(node)
            self.worklist.append(node)

    def _diff_into(self, node: Node, objs) -> None:
        """Merge ``objs`` into ``pts(node)``; only genuinely new pointees
        enter the delta and reschedule the node."""
        pts = self._pts(node)
        fresh = [obj for obj in objs if obj not in pts]
        if not fresh:
            return
        pts.update(fresh)
        self.delta.setdefault(node, set()).update(fresh)
        self._schedule(node)

    def _add_base(self, node: Node, obj: Node) -> None:
        self._diff_into(node, (obj,))

    def _add_copy(self, source: Node, target: Node) -> None:
        edges = self.copy_edges.setdefault(source, set())
        if target not in edges:
            edges.add(target)
            pts = self.points_to.get(source)
            if pts:
                # Seed the new edge with everything already known; future
                # growth arrives through source's delta.
                self._diff_into(target, pts)

    def _value_node(self, function: Function, value: Value) -> Node | None:
        if isinstance(value, Temp):
            return temp_node(function.name, value)
        if isinstance(value, FuncRef):
            node = f"const:{func_node(value.name)}"
            self._add_base(node, func_node(value.name))
            return node
        if isinstance(value, ParamValue):
            return arg_node(function.name, value.index)
        if isinstance(value, (ConstInt, ConstStr, Undef)):
            return None
        return None

    def _addr_object(self, function: Function, addr: Address) -> Node | None:
        """The abstract object a *direct* address denotes (None if the
        address is a deref, handled via complex constraints)."""
        if isinstance(addr, VarAddr):
            return loc_node(function.name, addr.var)
        if isinstance(addr, FieldAddr):
            return loc_node(function.name, addr.tracked_var() or addr.var)
        if isinstance(addr, ElementAddr):
            return loc_node(function.name, addr.var)  # array smashing
        if isinstance(addr, GlobalAddr):
            return global_node(addr.name)
        return None

    # -- constraint extraction ---------------------------------------------

    def build(self) -> None:
        for function in self.module.functions.values():
            self._build_function(function)

    def _build_function(self, function: Function) -> None:
        name = function.name
        for instruction in function.instructions():
            if isinstance(instruction, AddrOf):
                obj = self._addr_object(function, instruction.addr)
                if obj is not None:
                    self._add_base(temp_node(name, instruction.dest), obj)
            elif isinstance(instruction, Load):
                dest = temp_node(name, instruction.dest)
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    self._add_copy(obj, dest)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None:
                        via = _LoadVia(pointer=pointer, dest=dest, field=addr.field)
                        self.load_constraints.setdefault(pointer, []).append(via)
                        for obj in tuple(self.points_to.get(pointer, ())):
                            self._apply_load(via, obj)
            elif isinstance(instruction, Store):
                value = self._value_node(function, instruction.value)
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    if value is not None:
                        self._add_copy(value, obj)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None and value is not None:
                        via = _StoreVia(pointer=pointer, value=value, field=addr.field)
                        self.store_constraints.setdefault(pointer, []).append(via)
                        for obj in tuple(self.points_to.get(pointer, ())):
                            self._apply_store(via, obj)
            elif isinstance(instruction, (BinOp, UnOp, CastOp, Select)):
                # Pointer arithmetic / casts / selects preserve pointees.
                dest = instruction.result()
                if dest is not None:
                    dest_node = temp_node(name, dest)
                    for operand in instruction.operands():
                        source = self._value_node(function, operand)
                        if source is not None:
                            self._add_copy(source, dest_node)
            elif isinstance(instruction, Call):
                self._build_call(function, instruction)
            elif isinstance(instruction, Ret):
                if instruction.value is not None:
                    source = self._value_node(function, instruction.value)
                    if source is not None:
                        self._add_copy(source, ret_node(name))

    def _wire_direct_call(self, function: Function, call: Call, callee_name: str) -> None:
        for index, argument in enumerate(call.args):
            source = self._value_node(function, argument)
            if source is not None:
                self._add_copy(source, arg_node(callee_name, index))
        if call.dest is not None:
            self._add_copy(ret_node(callee_name), temp_node(function.name, call.dest))

    def _build_call(self, function: Function, call: Call) -> None:
        if call.callee is not None:
            self._wire_direct_call(function, call, call.callee)
            return
        pointer = self._value_node(function, call.callee_value) if call.callee_value is not None else None
        if pointer is not None:
            constraint = _IndirectCall(pointer=pointer, call=call, caller=function.name)
            self.indirect_calls.setdefault(pointer, []).append(constraint)
            for obj in tuple(self.points_to.get(pointer, ())):
                self._apply_indirect(constraint, obj)

    # -- propagation ----------------------------------------------------------

    def _apply_load(self, load: _LoadVia, obj: Node) -> None:
        source = field_child(obj, load.field) if load.field else obj
        self._add_copy(source, load.dest)

    def _apply_store(self, store: _StoreVia, obj: Node) -> None:
        target = field_child(obj, store.field) if store.field else obj
        self._add_copy(store.value, target)

    def _apply_indirect(self, indirect: _IndirectCall, obj: Node) -> None:
        if not obj.startswith("func:"):
            return
        callee_name = obj[len("func:") :]
        key = (indirect.call.uid, callee_name)
        if key in self.resolved_calls:
            return
        self.resolved_calls.add(key)
        self.result.indirect_callees.setdefault(indirect.call.uid, []).append(callee_name)
        caller_fn = self.module.functions.get(indirect.caller)
        if caller_fn is not None:
            self._wire_direct_call(caller_fn, indirect.call, callee_name)

    def solve(self) -> AndersenResult:
        self.build()
        iterations = 0
        limit = ITERATION_LIMIT
        while self.worklist and iterations < limit:
            iterations += 1
            node = self.worklist.popleft()
            self.enqueued.discard(node)
            pending = self.delta.pop(node, None)
            if not pending:
                continue
            # Copy edges: only the delta flows (difference propagation).
            for target in tuple(self.copy_edges.get(node, ())):
                self._diff_into(target, pending)
            # Complex loads: dest ⊇ pts(o) for each *new* pointee o.
            for load in self.load_constraints.get(node, ()):  # node is the pointer
                for obj in pending:
                    self._apply_load(load, obj)
            # Complex stores: o ⊇ pts(value) for each new pointee o.
            for store in self.store_constraints.get(node, ()):
                for obj in pending:
                    self._apply_store(store, obj)
            # Indirect calls: wire params/returns of newly seen pointees.
            for indirect in self.indirect_calls.get(node, ()):  # node holds func ptrs
                for obj in pending:
                    self._apply_indirect(indirect, obj)
        self.result.converged = not self.worklist
        self.result.iterations = iterations
        # Record which objects are pointed to by something other than
        # themselves (the alias-check client).
        for node, pointees in self.points_to.items():
            for obj in pointees:
                self.result._pointed.add(obj)
        for callees in self.result.indirect_callees.values():
            callees.sort()
        return self.result


def analyze_module(module: Module) -> AndersenResult:
    """Run Andersen's analysis over every function in ``module``."""
    return _Solver(module).solve()
