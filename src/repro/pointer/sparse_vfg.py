"""Sparse value-flow graph over SSA form (the SVF-style layer).

SVF builds its value-flow graphs *sparsely*: def→use edges follow SSA
def-use chains (with phis as join nodes) instead of re-walking the CFG.
This module provides that representation for one function and the same
client query the dense (reaching-definitions) path answers —
"does this definition have a use?" — so the two can be cross-checked.

Edges:

* store → load            (the load observes the store directly)
* store → phi, phi → phi  (the value flows through join points)
* phi → load

``definition_used`` is True iff some load node is reachable from the
store's definition node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Load, Store
from repro.ir.module import Function
from repro.ssa.construction import PhiNode, SsaDef, SsaForm, build_ssa

_Node = tuple[str, int]  # ("def"|"phi"|"load", uid/id)


@dataclass
class SparseValueFlow:
    """Sparse def→use graph of one function."""

    function: Function
    ssa: SsaForm
    edges: dict[_Node, list[_Node]] = field(default_factory=dict)
    load_nodes: set[_Node] = field(default_factory=set)

    def _reachable(self, start: _Node) -> set[_Node]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in self.edges.get(node, ()):  # DFS
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def definition_used(self, store: Store) -> bool:
        """True iff a load is reachable from this store's def node."""
        return any(node in self.load_nodes for node in self._reachable(("def", store.uid)))

    def flows_of(self, store: Store) -> list[Load]:
        """The loads that may observe this store (for reporting)."""
        loads_by_uid = {
            instruction.uid: instruction
            for instruction in self.function.instructions()
            if isinstance(instruction, Load)
        }
        out = []
        for kind, uid in self._reachable(("def", store.uid)):
            if kind == "load" and uid in loads_by_uid:
                out.append(loads_by_uid[uid])
        out.sort(key=lambda load: load.uid)
        return out


def _def_node(ssa_def: SsaDef) -> _Node:
    if ssa_def.store_uid is not None:
        return ("def", ssa_def.store_uid)
    if ssa_def.phi is not None:
        return ("phi", id(ssa_def.phi))
    return ("undef", id(ssa_def))


def build_sparse_vfg(function: Function, ssa: SsaForm | None = None) -> SparseValueFlow:
    """Build the sparse value-flow graph for ``function``."""
    if ssa is None:
        ssa = build_ssa(function)
    graph = SparseValueFlow(function=function, ssa=ssa)

    def add_edge(src: _Node, dst: _Node) -> None:
        bucket = graph.edges.setdefault(src, [])
        if dst not in bucket:
            bucket.append(dst)

    # def/phi → load edges.
    for load_uid, ssa_defs in ssa.use_defs.items():
        load_node: _Node = ("load", load_uid)
        graph.load_nodes.add(load_node)
        for ssa_def in ssa_defs:
            add_edge(_def_node(ssa_def), load_node)

    # operand → phi edges.
    for phi in ssa.all_phis():
        phi_node: _Node = ("phi", id(phi))
        for operand in phi.operands:
            add_edge(_def_node(operand), phi_node)
    return graph
