"""Reference Andersen's solver: straightforward difference propagation.

This is the pre-interning solver retained verbatim as the semantic
oracle for :mod:`repro.pointer.andersen`.  Nodes are strings, points-to
sets are Python ``set`` objects, and the worklist propagates per-element
deltas — no node interning, no bitsets, no cycle collapsing.  It exists
for two jobs:

* the differential property test
  (``tests/pointer/test_solver_equivalence.py``) solves randomized
  modules with both solvers and requires identical fixpoints;
* the ``stages.solver`` benchmark (``benchmarks/run_bench.py``) measures
  the production solver's speedup against this one, and
  ``check_bench_trajectory.py`` fails the build if that speedup claim
  disappears.

Keep this module boring.  Performance work belongs in
:mod:`repro.pointer.andersen`; the only changes that belong here are
semantic fixes that both solvers must share (e.g. the pointed-to set
excludes pure self-pointees, and ``pts`` hands out immutable views).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.ir.instructions import (
    AddrOf,
    Address,
    BinOp,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    UnOp,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstInt, ConstStr, FuncRef, ParamValue, Temp, Undef, Value
from repro.pointer import andersen as _andersen
from repro.pointer.andersen import (
    Node,
    _EMPTY_PTS,
    arg_node,
    field_child,
    func_node,
    global_node,
    loc_node,
    ret_node,
    temp_node,
)


@dataclass
class _LoadVia:
    pointer: Node
    dest: Node
    field: str | None


@dataclass
class _StoreVia:
    pointer: Node
    value: Node
    field: str | None


@dataclass
class _IndirectCall:
    pointer: Node
    call: Call
    caller: str


@dataclass
class ReferenceAndersenResult:
    """Same query surface as :class:`repro.pointer.andersen.AndersenResult`.

    ``points_to`` maps each node with a non-empty points-to set to an
    immutable ``frozenset`` of pointee nodes (the solver freezes its
    working sets once, after the fixpoint).
    """

    points_to: dict[Node, frozenset[Node]] = field(default_factory=dict)
    module: Module | None = None
    # Objects that appear in some *other* node's points-to set (a node
    # that only points to itself is not pointed to by anything else).
    _pointed: set[Node] = field(default_factory=set)
    indirect_callees: dict[int, list[str]] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0

    def pts(self, node: Node) -> frozenset[Node]:
        return self.points_to.get(node, _EMPTY_PTS)

    def pts_of_var(self, function: Function | str, var: str) -> frozenset[Node]:
        name = function if isinstance(function, str) else function.name
        return self.pts(loc_node(name, var))

    def is_pointed_to(self, function: Function | str, var: str) -> bool:
        name = function if isinstance(function, str) else function.name
        base = loc_node(name, var.split("#", 1)[0])
        exact = loc_node(name, var)
        return base in self._pointed or exact in self._pointed

    def callees_of(self, call: Call) -> list[str]:
        if call.callee is not None:
            return [call.callee]
        return self.indirect_callees.get(call.uid, [])


class _ReferenceSolver:
    """Difference-propagation solver over string-keyed dict-of-set state.

    ``delta[node]`` holds pointees added to ``pts(node)`` that have not yet
    flowed to its successors; the worklist schedules exactly the nodes with
    a pending delta.  New copy edges and complex constraints are seeded
    with the *current* points-to set at registration time, so later delta
    pops only ever handle genuinely new pointees.
    """

    def __init__(self, module: Module):
        self.module = module
        self.points_to: dict[Node, set[Node]] = {}
        self.delta: dict[Node, set[Node]] = {}
        self.copy_edges: dict[Node, set[Node]] = {}
        self.load_constraints: dict[Node, list[_LoadVia]] = {}
        self.store_constraints: dict[Node, list[_StoreVia]] = {}
        self.indirect_calls: dict[Node, list[_IndirectCall]] = {}
        self.worklist: deque[Node] = deque()
        self.enqueued: set[Node] = set()
        self.resolved_calls: set[tuple[int, str]] = set()
        self.result = ReferenceAndersenResult(module=module)

    # -- constraint construction helpers ----------------------------------

    def _pts(self, node: Node) -> set[Node]:
        return self.points_to.setdefault(node, set())

    def _schedule(self, node: Node) -> None:
        if node not in self.enqueued:
            self.enqueued.add(node)
            self.worklist.append(node)

    def _diff_into(self, node: Node, objs) -> None:
        """Merge ``objs`` into ``pts(node)``; only genuinely new pointees
        enter the delta and reschedule the node.  The pointed-to set is
        maintained here, incrementally — a pointee counts as pointed to
        unless its only pointer is itself."""
        pts = self._pts(node)
        fresh = [obj for obj in objs if obj not in pts]
        if not fresh:
            return
        pts.update(fresh)
        pointed = self.result._pointed
        for obj in fresh:
            if obj != node:
                pointed.add(obj)
        self.delta.setdefault(node, set()).update(fresh)
        self._schedule(node)

    def _add_base(self, node: Node, obj: Node) -> None:
        self._diff_into(node, (obj,))

    def _add_copy(self, source: Node, target: Node) -> None:
        edges = self.copy_edges.setdefault(source, set())
        if target not in edges:
            edges.add(target)
            pts = self.points_to.get(source)
            if pts:
                # Seed the new edge with everything already known; future
                # growth arrives through source's delta.
                self._diff_into(target, pts)

    def _value_node(self, function: Function, value: Value) -> Node | None:
        if isinstance(value, Temp):
            return temp_node(function.name, value)
        if isinstance(value, FuncRef):
            node = f"const:{func_node(value.name)}"
            self._add_base(node, func_node(value.name))
            return node
        if isinstance(value, ParamValue):
            return arg_node(function.name, value.index)
        if isinstance(value, (ConstInt, ConstStr, Undef)):
            return None
        return None

    def _addr_object(self, function: Function, addr: Address) -> Node | None:
        """The abstract object a *direct* address denotes (None if the
        address is a deref, handled via complex constraints)."""
        if isinstance(addr, VarAddr):
            return loc_node(function.name, addr.var)
        if isinstance(addr, FieldAddr):
            return loc_node(function.name, addr.tracked_var() or addr.var)
        if isinstance(addr, ElementAddr):
            return loc_node(function.name, addr.var)  # array smashing
        if isinstance(addr, GlobalAddr):
            return global_node(addr.name)
        return None

    # -- constraint extraction ---------------------------------------------

    def build(self) -> None:
        for function in self.module.functions.values():
            self._build_function(function)

    def _build_function(self, function: Function) -> None:
        name = function.name
        for instruction in function.instructions():
            if isinstance(instruction, AddrOf):
                obj = self._addr_object(function, instruction.addr)
                if obj is not None:
                    self._add_base(temp_node(name, instruction.dest), obj)
            elif isinstance(instruction, Load):
                dest = temp_node(name, instruction.dest)
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    self._add_copy(obj, dest)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None:
                        via = _LoadVia(pointer=pointer, dest=dest, field=addr.field)
                        self.load_constraints.setdefault(pointer, []).append(via)
                        for obj in tuple(self.points_to.get(pointer, ())):
                            self._apply_load(via, obj)
            elif isinstance(instruction, Store):
                value = self._value_node(function, instruction.value)
                addr = instruction.addr
                obj = self._addr_object(function, addr)
                if obj is not None:
                    if value is not None:
                        self._add_copy(value, obj)
                elif isinstance(addr, DerefAddr):
                    pointer = self._value_node(function, addr.pointer)
                    if pointer is not None and value is not None:
                        via = _StoreVia(pointer=pointer, value=value, field=addr.field)
                        self.store_constraints.setdefault(pointer, []).append(via)
                        for obj in tuple(self.points_to.get(pointer, ())):
                            self._apply_store(via, obj)
            elif isinstance(instruction, (BinOp, UnOp, CastOp, Select)):
                # Pointer arithmetic / casts / selects preserve pointees.
                dest = instruction.result()
                if dest is not None:
                    dest_node = temp_node(name, dest)
                    for operand in instruction.operands():
                        source = self._value_node(function, operand)
                        if source is not None:
                            self._add_copy(source, dest_node)
            elif isinstance(instruction, Call):
                self._build_call(function, instruction)
            elif isinstance(instruction, Ret):
                if instruction.value is not None:
                    source = self._value_node(function, instruction.value)
                    if source is not None:
                        self._add_copy(source, ret_node(name))

    def _wire_direct_call(self, function: Function, call: Call, callee_name: str) -> None:
        for index, argument in enumerate(call.args):
            source = self._value_node(function, argument)
            if source is not None:
                self._add_copy(source, arg_node(callee_name, index))
        if call.dest is not None:
            self._add_copy(ret_node(callee_name), temp_node(function.name, call.dest))

    def _build_call(self, function: Function, call: Call) -> None:
        if call.callee is not None:
            self._wire_direct_call(function, call, call.callee)
            return
        pointer = self._value_node(function, call.callee_value) if call.callee_value is not None else None
        if pointer is not None:
            constraint = _IndirectCall(pointer=pointer, call=call, caller=function.name)
            self.indirect_calls.setdefault(pointer, []).append(constraint)
            for obj in tuple(self.points_to.get(pointer, ())):
                self._apply_indirect(constraint, obj)

    # -- propagation ----------------------------------------------------------

    def _apply_load(self, load: _LoadVia, obj: Node) -> None:
        source = field_child(obj, load.field) if load.field else obj
        self._add_copy(source, load.dest)

    def _apply_store(self, store: _StoreVia, obj: Node) -> None:
        target = field_child(obj, store.field) if store.field else obj
        self._add_copy(store.value, target)

    def _apply_indirect(self, indirect: _IndirectCall, obj: Node) -> None:
        if not obj.startswith("func:"):
            return
        callee_name = obj[len("func:") :]
        key = (indirect.call.uid, callee_name)
        if key in self.resolved_calls:
            return
        self.resolved_calls.add(key)
        self.result.indirect_callees.setdefault(indirect.call.uid, []).append(callee_name)
        caller_fn = self.module.functions.get(indirect.caller)
        if caller_fn is not None:
            self._wire_direct_call(caller_fn, indirect.call, callee_name)

    def solve(self) -> ReferenceAndersenResult:
        self.build()
        iterations = 0
        limit = _andersen.ITERATION_LIMIT
        while self.worklist and iterations < limit:
            iterations += 1
            node = self.worklist.popleft()
            self.enqueued.discard(node)
            pending = self.delta.pop(node, None)
            if not pending:
                continue
            # Copy edges: only the delta flows (difference propagation).
            for target in tuple(self.copy_edges.get(node, ())):
                self._diff_into(target, pending)
            # Complex loads: dest ⊇ pts(o) for each *new* pointee o.
            for load in self.load_constraints.get(node, ()):  # node is the pointer
                for obj in pending:
                    self._apply_load(load, obj)
            # Complex stores: o ⊇ pts(value) for each new pointee o.
            for store in self.store_constraints.get(node, ()):
                for obj in pending:
                    self._apply_store(store, obj)
            # Indirect calls: wire params/returns of newly seen pointees.
            for indirect in self.indirect_calls.get(node, ()):  # node holds func ptrs
                for obj in pending:
                    self._apply_indirect(indirect, obj)
        self.result.converged = not self.worklist
        self.result.iterations = iterations
        # Freeze the converged sets: clients get immutable views, and the
        # result drops the (now empty-set-littered) working dict.
        self.result.points_to = {
            node: frozenset(pointees)
            for node, pointees in self.points_to.items()
            if pointees
        }
        for callees in self.result.indirect_callees.values():
            callees.sort()
        return self.result


def analyze_module_reference(module: Module) -> ReferenceAndersenResult:
    """Run the reference (string-keyed, no-collapse) solver on ``module``."""
    return _ReferenceSolver(module).solve()
