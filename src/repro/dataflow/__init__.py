"""Dataflow analyses over the load/store IR.

:mod:`repro.dataflow.framework` provides a generic worklist solver for
backward may-analyses (union meet);
:mod:`repro.dataflow.liveness` is the classic flow-sensitive liveness of
named variables (paper §2.1), used by the core detector, by baselines and
by the §3.1 preliminary-study replication;
:mod:`repro.dataflow.reaching` computes reaching definitions for the
value-flow graph.
"""

from repro.dataflow.framework import BackwardSolver, BlockStates
from repro.dataflow.liveness import (
    LivenessResult,
    gen_vars,
    kill_var,
    live_variables,
    unused_definitions,
)
from repro.dataflow.reaching import ReachingDefinitions, reaching_definitions

__all__ = [
    "BackwardSolver",
    "BlockStates",
    "LivenessResult",
    "gen_vars",
    "kill_var",
    "live_variables",
    "unused_definitions",
    "ReachingDefinitions",
    "reaching_definitions",
]
