"""Reaching definitions (forward may-analysis).

The value-flow graph (:mod:`repro.pointer.value_flow`) links each load to
the set of stores that may reach it; this module supplies those sets.
State: ``var -> frozenset of Store uids``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.traversal import reverse_postorder
from repro.dataflow.liveness import gen_vars, kill_var
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.module import BasicBlock, Function

_State = dict[str, frozenset[int]]


def _join(accumulator: _State, other: _State) -> None:
    for var, definitions in other.items():
        existing = accumulator.get(var)
        accumulator[var] = definitions if existing is None else existing | definitions


def _transfer(instruction: Instruction, state: _State) -> None:
    killed = kill_var(instruction)
    if killed is not None and isinstance(instruction, Store):
        state[killed] = frozenset((instruction.uid,))


@dataclass
class ReachingDefinitions:
    """Converged reaching-def sets and the def-use chains derived from
    them."""

    function: Function
    block_in: dict[int, _State] = field(default_factory=dict)
    # Load uid -> uids of stores that may reach it (same tracked var).
    use_to_defs: dict[int, frozenset[int]] = field(default_factory=dict)
    # Store uid -> uids of loads it may reach.
    def_to_uses: dict[int, list[int]] = field(default_factory=dict)
    stores_by_uid: dict[int, Store] = field(default_factory=dict)
    loads_by_uid: dict[int, Load] = field(default_factory=dict)

    def uses_of(self, store: Store) -> list[Load]:
        return [self.loads_by_uid[uid] for uid in self.def_to_uses.get(store.uid, [])]

    def defs_of(self, load: Load) -> list[Store]:
        return [self.stores_by_uid[uid] for uid in sorted(self.use_to_defs.get(load.uid, ()))]


def reaching_definitions(function: Function) -> ReachingDefinitions:
    """Solve reaching definitions and build intra-procedural def-use chains
    over tracked variables."""
    result = ReachingDefinitions(function=function)
    for instruction in function.instructions():
        if isinstance(instruction, Store):
            result.stores_by_uid[instruction.uid] = instruction
        elif isinstance(instruction, Load):
            result.loads_by_uid[instruction.uid] = instruction

    order = reverse_postorder(function)
    seen = {id(block) for block in order}
    order.extend(block for block in function.blocks if id(block) not in seen)

    block_out: dict[int, _State] = {id(block): {} for block in function.blocks}
    result.block_in = {id(block): {} for block in function.blocks}

    for _ in range(100):
        changed = False
        for block in order:
            in_state: _State = {}
            for predecessor in block.predecessors:
                _join(in_state, block_out[id(predecessor)])
            if in_state != result.block_in[id(block)]:
                result.block_in[id(block)] = in_state
                changed = True
            state = dict(in_state)
            for instruction in block.instructions:
                _transfer(instruction, state)
            if state != block_out[id(block)]:
                block_out[id(block)] = state
                changed = True
        if not changed:
            break

    # Derive def-use chains with a final in-block pass.
    for block in function.blocks:
        state = dict(result.block_in[id(block)])
        for instruction in block.instructions:
            if isinstance(instruction, Load):
                for var in gen_vars(instruction):
                    reaching = state.get(var, frozenset())
                    # A whole-struct read also consumes field definitions.
                    info = function.variables.get(var)
                    if info is not None and info.is_struct:
                        prefix = var + "#"
                        for other_var, defs in state.items():
                            if other_var.startswith(prefix):
                                reaching = reaching | defs
                    if reaching:
                        result.use_to_defs[instruction.uid] = reaching
                        for def_uid in reaching:
                            result.def_to_uses.setdefault(def_uid, []).append(instruction.uid)
            _transfer(instruction, state)
    return result


def definition_has_use(rd: ReachingDefinitions, store: Store) -> bool:
    """True if any load may observe ``store``'s value."""
    return bool(rd.def_to_uses.get(store.uid))


__all__ = ["ReachingDefinitions", "reaching_definitions", "definition_has_use"]
