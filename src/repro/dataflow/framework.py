"""Generic worklist solver for backward may-dataflow problems.

The paper's Fig. 4 loop ("while Change … traverse basic blocks reversely …
iterate to handle loops") is a fixpoint iteration with union meet.  The
solver here generalises it: clients supply a per-instruction transfer
function over an arbitrary mutable state, plus join/copy/equality, and get
back converged per-block boundary states.

States flow *backwards*: ``out[b] = ⋃ in[s] for s in succ(b)``; ``in[b]``
is obtained by running the transfer function over the block's instructions
in reverse.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.cfg.traversal import backward_order
from repro.ir.instructions import Instruction
from repro.ir.module import BasicBlock, Function

State = TypeVar("State")


class BlockStates(Generic[State]):
    """Converged boundary states, keyed by block identity."""

    def __init__(self) -> None:
        self._in: dict[int, State] = {}
        self._out: dict[int, State] = {}

    def in_state(self, block: BasicBlock) -> State:
        return self._in[id(block)]

    def out_state(self, block: BasicBlock) -> State:
        return self._out[id(block)]

    def set_in(self, block: BasicBlock, state: State) -> None:
        self._in[id(block)] = state

    def set_out(self, block: BasicBlock, state: State) -> None:
        self._out[id(block)] = state


class BackwardSolver(Generic[State]):
    """Iterates a backward may-analysis to fixpoint.

    Parameters
    ----------
    bottom:
        Factory for the ⊥ state (used at exit blocks and as the seed).
    copy:
        Deep-enough copy so that transfer can mutate safely.
    join:
        In-place union: ``join(accumulator, other)``.
    transfer:
        ``transfer(instruction, state)`` mutates ``state`` to reflect
        executing ``instruction`` *before* the program point ``state``
        describes (i.e. it is applied while walking instructions in
        reverse).
    equals:
        State equality, used for convergence detection.
    """

    def __init__(
        self,
        bottom: Callable[[], State],
        copy: Callable[[State], State],
        join: Callable[[State, State], None],
        transfer: Callable[[Instruction, State], None],
        equals: Callable[[State, State], bool] = lambda a, b: a == b,
        max_iterations: int = 100,
    ) -> None:
        self.bottom = bottom
        self.copy = copy
        self.join = join
        self.transfer = transfer
        self.equals = equals
        self.max_iterations = max_iterations

    def solve(self, function: Function) -> BlockStates[State]:
        states: BlockStates[State] = BlockStates()
        for block in function.blocks:
            states.set_in(block, self.bottom())
            states.set_out(block, self.bottom())
        order = backward_order(function)
        for _ in range(self.max_iterations):
            changed = False
            for block in order:
                out_state = self.bottom()
                for successor in block.successors:
                    self.join(out_state, states.in_state(successor))
                in_state = self.copy(out_state)
                for instruction in reversed(block.instructions):
                    self.transfer(instruction, in_state)
                if not self.equals(out_state, states.out_state(block)):
                    states.set_out(block, out_state)
                    changed = True
                if not self.equals(in_state, states.in_state(block)):
                    states.set_in(block, in_state)
                    changed = True
            if not changed:
                return states
        return states  # bounded fixpoint; states are monotone so this is safe
