"""Flow-sensitive liveness of named variables (paper §2.1, §4.1).

Variables are the function's tracked locals/parameters plus field
pseudo-variables ``s#f``.  The gen/kill rules over the load/store IR:

* ``load &v``           → gen ``v``
* ``load &s.f``         → gen ``s#f``
* ``load &arr[i]``      → gen ``arr`` (reading any element keeps the
  array's definitions alive; arrays are not unused-def candidates anyway)
* ``store -> &v``       → kill ``v`` (and all ``v#*`` if ``v`` is a struct:
  overwriting the aggregate overwrites every field)
* ``store -> &s.f``     → kill ``s#f``
* loads of a whole struct ``s`` (e.g. passing it by value) gen ``s``; a
  field's liveness check must therefore consult both ``s#f`` and ``s``.

Address-of, deref and global accesses have no direct gen/kill — indirect
uses are handled separately by the alias check (paper §4.1 "Pointer and
Alias"), not by weakening liveness.

:func:`unused_definitions` is the *plain* detector (no authorship, no
pruning).  It is what the paper calls "original liveness analysis" in the
§3.1 preliminary experiment, and it is the base the cross-scope detector
in :mod:`repro.core.detector` extends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.framework import BackwardSolver, BlockStates
from repro.ir.instructions import (
    Alloca,
    ElementAddr,
    FieldAddr,
    Instruction,
    Load,
    Store,
    StoreKind,
    VarAddr,
)
from repro.ir.module import Function


def gen_vars(instruction: Instruction) -> list[str]:
    """Tracked variables read by ``instruction``."""
    if isinstance(instruction, Load):
        addr = instruction.addr
        if isinstance(addr, VarAddr):
            return [addr.var]
        if isinstance(addr, FieldAddr):
            tracked = addr.tracked_var()
            return [tracked] if tracked else []
        if isinstance(addr, ElementAddr):
            return [addr.var]
    return []


def kill_var(instruction: Instruction) -> str | None:
    """Tracked variable fully overwritten by ``instruction``, if any."""
    if isinstance(instruction, Store):
        addr = instruction.addr
        if isinstance(addr, (VarAddr, FieldAddr)):
            return addr.tracked_var()
    return None


def _is_live(var: str, live: set[str]) -> bool:
    """Membership that lets whole-struct uses keep fields alive."""
    if var in live:
        return True
    if "#" in var and var.split("#", 1)[0] in live:
        return True
    return False


def _kill(var: str, live: set[str], function: Function) -> None:
    live.discard(var)
    info = function.variables.get(var)
    if info is not None and info.is_struct:
        prefix = var + "#"
        for name in [v for v in live if v.startswith(prefix)]:
            live.discard(name)


@dataclass
class LivenessResult:
    """Converged per-block live sets plus the function analysed."""

    function: Function
    states: BlockStates[set[str]]

    def live_in(self, block) -> set[str]:
        return self.states.in_state(block)

    def live_out(self, block) -> set[str]:
        return self.states.out_state(block)

    def live_at_entry(self) -> set[str]:
        """Liveness at the start of the function *body* — i.e. just after
        the implicit parameter-initialisation stores.  A parameter in this
        set has its incoming value read somewhere; one absent is either
        never read or overwritten on every path first (the paper's
        "assigned but unused argument").
        """
        entry = self.function.entry
        live = set(self.live_out(entry))
        body_start = 0
        for index, instruction in enumerate(entry.instructions):
            if isinstance(instruction, Store) and instruction.kind is StoreKind.PARAM_INIT:
                body_start = index + 1
            elif not isinstance(instruction, Alloca):
                break
        for instruction in reversed(entry.instructions[body_start:]):
            killed = kill_var(instruction)
            if killed is not None:
                _kill(killed, live, self.function)
            for var in gen_vars(instruction):
                live.add(var)
        return live


def live_variables(function: Function) -> LivenessResult:
    """Solve liveness to fixpoint for ``function``."""

    def transfer(instruction: Instruction, live: set[str]) -> None:
        killed = kill_var(instruction)
        if killed is not None:
            _kill(killed, live, function)
        for var in gen_vars(instruction):
            live.add(var)

    solver: BackwardSolver[set[str]] = BackwardSolver(
        bottom=set,
        copy=set,
        join=lambda acc, other: acc.update(other),
        transfer=transfer,
    )
    return LivenessResult(function=function, states=solver.solve(function))


@dataclass(frozen=True)
class PlainUnusedDef:
    """An unused definition found by plain liveness (no authorship)."""

    function: str
    var: str
    line: int
    kind: StoreKind
    is_param: bool


def unused_definitions(
    function: Function,
    include_decl_inits: bool = True,
    include_params: bool = True,
) -> list[PlainUnusedDef]:
    """All stores to tracked variables whose value is never read afterwards,
    plus parameters whose incoming value is never read.

    This is deliberately *noisy* — it is the raw candidate stream before
    cross-scope filtering and pruning, matching the paper's observation
    that plain detection reports far too much to act on.
    """
    result = live_variables(function)
    findings: list[PlainUnusedDef] = []
    for block in function.blocks:
        live = set(result.live_out(block))
        for instruction in reversed(block.instructions):
            if isinstance(instruction, Store):
                tracked = instruction.addr.tracked_var() if instruction.addr is not None else None
                if tracked is not None:
                    info = function.var(tracked)
                    artificial = info.artificial if info is not None else False
                    if not _is_live(tracked, live) and not artificial:
                        if instruction.kind is StoreKind.PARAM_INIT:
                            if include_params:
                                findings.append(
                                    PlainUnusedDef(
                                        function=function.name,
                                        var=tracked,
                                        line=instruction.line,
                                        kind=instruction.kind,
                                        is_param=True,
                                    )
                                )
                        elif include_decl_inits or instruction.kind is not StoreKind.DECL_INIT:
                            findings.append(
                                PlainUnusedDef(
                                    function=function.name,
                                    var=tracked,
                                    line=instruction.line,
                                    kind=instruction.kind,
                                    is_param=False,
                                )
                            )
                    _kill(tracked, live, function)
            for var in gen_vars(instruction):
                live.add(var)
    findings.sort(key=lambda finding: (finding.line, finding.var))
    return findings
