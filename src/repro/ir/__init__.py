"""Load/store IR — the analysis substrate.

The paper's detection algorithm (Fig. 4) is specified over LLVM ``-O0``
bitcode: every local variable is a stack slot, reads are ``load``
instructions and writes are ``store`` instructions.  This package provides
exactly that shape in Python: :mod:`repro.ir.values` (operand kinds),
:mod:`repro.ir.instructions` (the instruction set and address forms),
:mod:`repro.ir.module` (functions, blocks, modules) and
:mod:`repro.ir.builder` (AST lowering).
"""

from repro.ir.values import (
    Value,
    Temp,
    ConstInt,
    ConstStr,
    FuncRef,
    ParamValue,
    Undef,
)
from repro.ir.instructions import (
    Address,
    VarAddr,
    FieldAddr,
    DerefAddr,
    ElementAddr,
    GlobalAddr,
    Instruction,
    Alloca,
    Load,
    Store,
    StoreKind,
    BinOp,
    UnOp,
    Select,
    CastOp,
    AddrOf,
    Call,
    Ret,
    Br,
)
from repro.ir.module import BasicBlock, Function, Module, VarInfo
from repro.ir.builder import lower_unit, lower_source

__all__ = [
    "Value",
    "Temp",
    "ConstInt",
    "ConstStr",
    "FuncRef",
    "ParamValue",
    "Undef",
    "Address",
    "VarAddr",
    "FieldAddr",
    "DerefAddr",
    "ElementAddr",
    "GlobalAddr",
    "Instruction",
    "Alloca",
    "Load",
    "Store",
    "StoreKind",
    "BinOp",
    "UnOp",
    "Select",
    "CastOp",
    "AddrOf",
    "Call",
    "Ret",
    "Br",
    "BasicBlock",
    "Function",
    "Module",
    "VarInfo",
    "lower_unit",
    "lower_source",
]
