"""Functions, basic blocks and modules for the load/store IR."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.frontend.preprocessor import PreprocessedSource
from repro.ir.instructions import Br, Instruction, Ret, Store
from repro.ir.values import Temp


@dataclass(eq=False)
class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    label: str
    instructions: list[Instruction] = field(default_factory=list)
    successors: list["BasicBlock"] = field(default_factory=list)
    predecessors: list["BasicBlock"] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and isinstance(self.instructions[-1], (Br, Ret)):
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instruction}" for instruction in self.instructions)
        return "\n".join(lines)

    def __hash__(self) -> int:
        return id(self)


@dataclass
class VarInfo:
    """Metadata for a tracked local variable or parameter."""

    name: str
    type_name: str
    decl_line: int
    attrs: tuple[str, ...] = ()
    is_param: bool = False
    param_index: int = -1
    is_struct: bool = False
    is_array: bool = False
    is_pointer: bool = False
    artificial: bool = False  # compiler-introduced; never reported


@dataclass(eq=False)
class Function:
    """An IR function: an ordered list of basic blocks plus a symbol table
    of tracked locals."""

    name: str
    filename: str
    return_type: str
    line: int
    end_line: int
    params: list[VarInfo] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    variables: dict[str, VarInfo] = field(default_factory=dict)
    return_lines: list[int] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for basic_block in self.blocks:
            if basic_block.label == label:
                return basic_block
        raise KeyError(label)

    def instructions(self):
        """Iterate all instructions in block order."""
        for basic_block in self.blocks:
            yield from basic_block.instructions

    def var(self, name: str) -> VarInfo | None:
        """Look up a tracked variable; field pseudo-vars (``s#f``) resolve
        to their base struct's info."""
        base = name.split("#", 1)[0]
        return self.variables.get(base)

    def stores(self) -> list[Store]:
        return [i for i in self.instructions() if isinstance(i, Store)]

    def temp_def_map(self) -> dict[Temp, Instruction]:
        """Map each temp to its defining instruction (temps are single-def)."""
        defs: dict[Temp, Instruction] = {}
        for instruction in self.instructions():
            result = instruction.result()
            if result is not None:
                defs[result] = instruction
        return defs

    def temp_use_map(self) -> dict[Temp, list[Instruction]]:
        """Map each temp to the instructions that read it."""
        uses: dict[Temp, list[Instruction]] = {}
        for instruction in self.instructions():
            for operand in instruction.operands():
                if isinstance(operand, Temp):
                    uses.setdefault(operand, []).append(instruction)
        return uses

    def returns_void(self) -> bool:
        return self.return_type == "void"

    def __str__(self) -> str:
        header = f"define {self.return_type} @{self.name}({', '.join(p.name for p in self.params)})"
        body = "\n".join(str(block) for block in self.blocks)
        return f"{header} {{\n{body}\n}}"

    def __hash__(self) -> int:
        return id(self)


@dataclass
class Module:
    """All IR for one source file, plus the artifacts the later phases
    need: the AST unit (for prototypes/struct layouts) and the
    preprocessed source (for config-dependency pruning)."""

    filename: str
    functions: dict[str, Function] = field(default_factory=dict)
    unit: ast.TranslationUnit | None = None
    source: PreprocessedSource | None = None
    # Names of all functions known in this unit (defined or prototyped),
    # with their return types; externals default to returning int.
    signatures: dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> Function | None:
        return self.functions.get(name)

    def callee_return_type(self, name: str) -> str:
        return self.signatures.get(name, "int")

    def loc(self) -> int:
        if self.source is None:
            return 0
        return len(self.source.raw.split("\n"))

    def __iter__(self):
        return iter(self.functions.values())
