"""IR well-formedness verifier.

Checks the structural invariants the analyses rely on.  The builder is
trusted in production runs; tests (and the corpus generator's self-check)
run the verifier over every lowered function to catch lowering bugs at
the source instead of as mysterious analysis results.

Invariants:

* CFG validity (delegated to :func:`repro.cfg.validate_cfg`);
* every temp is defined exactly once, and each use appears after its
  definition in the defining block or in a block reachable from it;
* every tracked variable touched by a load/store/addr-of has an
  ``Alloca`` and an entry in ``Function.variables``;
* parameters have exactly one ``PARAM_INIT`` store, in the entry block;
* ``return_lines`` is consistent with the ``Ret`` instructions.
"""

from __future__ import annotations

from repro.cfg.graph import validate_cfg
from repro.errors import AnalysisError
from repro.ir.instructions import Alloca, Ret, Store, StoreKind
from repro.ir.module import Function, Module
from repro.ir.values import ParamValue, Temp


def _reachable_from(function: Function, start) -> set[int]:
    seen = {id(start)}
    stack = [start]
    while stack:
        block = stack.pop()
        for successor in block.successors:
            if id(successor) not in seen:
                seen.add(id(successor))
                stack.append(successor)
    return seen


def verify_function(function: Function) -> None:
    """Raise AnalysisError on any broken invariant."""
    validate_cfg(function)

    # Temps: single definition; uses dominated in the weak block-order
    # sense (same block later, or in a block reachable from the def).
    def_site: dict[Temp, tuple[int, int]] = {}  # temp -> (block id, index)
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            result = instruction.result()
            if result is not None:
                if result in def_site:
                    raise AnalysisError(
                        f"{function.name}: temp {result} defined twice"
                    )
                def_site[result] = (id(block), index)
    block_reach = {
        id(block): _reachable_from(function, block) for block in function.blocks
    }
    for block in function.blocks:
        for index, instruction in enumerate(block.instructions):
            for operand in instruction.operands():
                if not isinstance(operand, Temp):
                    continue
                if operand not in def_site:
                    raise AnalysisError(
                        f"{function.name}: use of undefined temp {operand}"
                    )
                def_block, def_index = def_site[operand]
                if def_block == id(block):
                    if def_index >= index:
                        raise AnalysisError(
                            f"{function.name}: temp {operand} used before its definition"
                        )
                elif id(block) not in block_reach[def_block]:
                    raise AnalysisError(
                        f"{function.name}: temp {operand} used in a block unreachable "
                        f"from its definition"
                    )

    # Variables: every direct access is declared.
    allocated = {
        instruction.var
        for instruction in function.instructions()
        if isinstance(instruction, Alloca)
    }
    for instruction in function.instructions():
        for addr in instruction.addresses():
            base = addr.base_var()
            if base is None:
                continue
            if base not in function.variables:
                raise AnalysisError(
                    f"{function.name}: access to undeclared variable {base!r}"
                )
            if base not in allocated:
                raise AnalysisError(
                    f"{function.name}: variable {base!r} has no alloca"
                )

    # Parameters: one PARAM_INIT each, in the entry block.
    entry_instructions = list(function.entry.instructions)
    for param in function.params:
        inits = [
            instruction
            for instruction in function.instructions()
            if isinstance(instruction, Store)
            and instruction.kind is StoreKind.PARAM_INIT
            and instruction.addr is not None
            and instruction.addr.tracked_var() == param.name
        ]
        if len(inits) != 1:
            raise AnalysisError(
                f"{function.name}: parameter {param.name} has {len(inits)} entry stores"
            )
        if inits[0] not in entry_instructions:
            raise AnalysisError(
                f"{function.name}: parameter {param.name} initialised outside entry"
            )
        if not isinstance(inits[0].value, ParamValue):
            raise AnalysisError(
                f"{function.name}: parameter {param.name} init is not a ParamValue"
            )

    # Return lines recorded for explicit returns.
    explicit_ret_lines = {
        instruction.line
        for instruction in function.instructions()
        if isinstance(instruction, Ret) and instruction.line != function.end_line
    }
    recorded = set(function.return_lines)
    if not explicit_ret_lines <= recorded | {function.end_line}:
        raise AnalysisError(
            f"{function.name}: Ret lines {explicit_ret_lines - recorded} not recorded"
        )


def verify_module(module: Module) -> None:
    """Verify every function of a module."""
    for function in module.functions.values():
        verify_function(function)
