"""A concrete interpreter for the load/store IR.

Executes lowered functions on integer inputs.  Its purpose is
*validation*: semantics-preserving transformations (dead-code
elimination) and the frontend/lowering pipeline are differentially
tested against it — a random program must compute the same results
before and after parsing→printing→reparsing or DCE.

Supported: integer arithmetic/logic, locals, parameters, struct fields,
arrays, direct and indirect calls (within the module), address-of/deref
of scalar locals, control flow including loops/switch/goto.  External
callees are stubbed deterministically (a pure function of callee name
and arguments) so results are reproducible.  Unsupported constructs
raise :class:`InterpError`; runaway loops raise :class:`InterpTimeout`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.ir.instructions import (
    AddrOf,
    Alloca,
    BinOp,
    Br,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    UnOp,
    VarAddr,
)
from repro.ir.module import Function, Module
from repro.ir.values import ConstInt, ConstStr, FuncRef, ParamValue, Temp, Undef, Value


class InterpError(AnalysisError):
    """The interpreter hit an unsupported or undefined construct."""


class InterpTimeout(AnalysisError):
    """Instruction budget exhausted (runaway loop)."""


@dataclass(frozen=True)
class Ref:
    """A pointer value: a reference to a storage cell."""

    kind: str  # 'var' | 'field' | 'elem' | 'global' | 'func'
    name: str
    field: str | None = None
    index: int = 0


def _stub_external(name: str, args: list) -> int:
    """Deterministic stand-in for callees outside the module."""
    seed = zlib.crc32(name.encode())
    for argument in args:
        if isinstance(argument, int):
            seed = zlib.crc32(str(argument).encode(), seed)
    return (seed % 13) - 6


@dataclass
class _Frame:
    temps: dict[Temp, object] = field(default_factory=dict)
    # scalar vars and whole-struct cells; fields live in `fields`
    vars: dict[str, object] = field(default_factory=dict)
    fields: dict[tuple[str, str], object] = field(default_factory=dict)
    arrays: dict[str, dict[int, object]] = field(default_factory=dict)


class Interpreter:
    """Interpret functions of one module."""

    def __init__(self, module: Module, max_steps: int = 100_000):
        self.module = module
        self.max_steps = max_steps
        self.globals: dict[str, object] = {}
        self._steps = 0

    # -- value/address helpers ----------------------------------------

    def _value(self, frame: _Frame, value: Value | None):
        if value is None:
            return None
        if isinstance(value, ConstInt):
            return value.value
        if isinstance(value, ConstStr):
            return len(value.value)  # opaque but deterministic
        if isinstance(value, Temp):
            if value not in frame.temps:
                raise InterpError(f"read of undefined temp {value}")
            return frame.temps[value]
        if isinstance(value, FuncRef):
            return Ref("func", value.name)
        if isinstance(value, Undef):
            return 0
        if isinstance(value, ParamValue):
            raise InterpError("ParamValue outside parameter store")
        raise InterpError(f"unsupported value {value!r}")

    def _load(self, frame: _Frame, addr) -> object:
        if isinstance(addr, VarAddr):
            return frame.vars.get(addr.var, 0)
        if isinstance(addr, FieldAddr):
            return frame.fields.get((addr.var, addr.field), 0)
        if isinstance(addr, ElementAddr):
            index = self._value(frame, addr.index)
            return frame.arrays.setdefault(addr.var, {}).get(index, 0)
        if isinstance(addr, GlobalAddr):
            return self.globals.get(addr.name, 0)
        if isinstance(addr, DerefAddr):
            target = self._value(frame, addr.pointer)
            return self._read_ref(frame, target, addr.field)
        raise InterpError(f"unsupported load address {addr}")

    def _store(self, frame: _Frame, addr, value) -> None:
        if isinstance(addr, VarAddr):
            frame.vars[addr.var] = value
        elif isinstance(addr, FieldAddr):
            frame.fields[(addr.var, addr.field)] = value
        elif isinstance(addr, ElementAddr):
            index = self._value(frame, addr.index)
            frame.arrays.setdefault(addr.var, {})[index] = value
        elif isinstance(addr, GlobalAddr):
            self.globals[addr.name] = value
        elif isinstance(addr, DerefAddr):
            target = self._value(frame, addr.pointer)
            self._write_ref(frame, target, addr.field, value)
        else:
            raise InterpError(f"unsupported store address {addr}")

    def _read_ref(self, frame: _Frame, ref, field_name):
        if not isinstance(ref, Ref):
            raise InterpError(f"deref of non-pointer {ref!r}")
        if field_name is not None:
            if ref.kind != "var":
                raise InterpError("field deref of non-struct ref")
            return frame.fields.get((ref.name, field_name), 0)
        if ref.kind == "var":
            return frame.vars.get(ref.name, 0)
        if ref.kind == "field":
            return frame.fields.get((ref.name, ref.field or ""), 0)
        if ref.kind == "elem":
            return frame.arrays.setdefault(ref.name, {}).get(ref.index, 0)
        if ref.kind == "global":
            return self.globals.get(ref.name, 0)
        raise InterpError(f"cannot read through {ref}")

    def _write_ref(self, frame: _Frame, ref, field_name, value) -> None:
        if not isinstance(ref, Ref):
            raise InterpError(f"deref-store through non-pointer {ref!r}")
        if field_name is not None:
            frame.fields[(ref.name, field_name)] = value
        elif ref.kind == "var":
            frame.vars[ref.name] = value
        elif ref.kind == "field":
            frame.fields[(ref.name, ref.field or "")] = value
        elif ref.kind == "elem":
            frame.arrays.setdefault(ref.name, {})[ref.index] = value
        elif ref.kind == "global":
            self.globals[ref.name] = value
        else:
            raise InterpError(f"cannot write through {ref}")

    def _addr_ref(self, addr) -> Ref:
        if isinstance(addr, VarAddr):
            return Ref("var", addr.var)
        if isinstance(addr, FieldAddr):
            return Ref("field", addr.var, field=addr.field)
        if isinstance(addr, GlobalAddr):
            return Ref("global", addr.name)
        raise InterpError(f"cannot take address of {addr}")

    # -- arithmetic -------------------------------------------------------

    def _binop(self, op: str, lhs, rhs):
        if isinstance(lhs, Ref) or isinstance(rhs, Ref):
            if op in ("==", "!="):
                equal = lhs == rhs
                return int(equal if op == "==" else not equal)
            raise InterpError(f"pointer arithmetic {op!r} unsupported")
        table = {
            "+": lambda: lhs + rhs,
            "-": lambda: lhs - rhs,
            "*": lambda: lhs * rhs,
            "/": lambda: int(lhs / rhs) if rhs else 0,
            "%": lambda: lhs - int(lhs / rhs) * rhs if rhs else 0,
            "==": lambda: int(lhs == rhs),
            "!=": lambda: int(lhs != rhs),
            "<": lambda: int(lhs < rhs),
            ">": lambda: int(lhs > rhs),
            "<=": lambda: int(lhs <= rhs),
            ">=": lambda: int(lhs >= rhs),
            "&&": lambda: int(bool(lhs) and bool(rhs)),
            "||": lambda: int(bool(lhs) or bool(rhs)),
            "&": lambda: lhs & rhs,
            "|": lambda: lhs | rhs,
            "^": lambda: lhs ^ rhs,
            "<<": lambda: lhs << (rhs & 31),
            ">>": lambda: lhs >> (rhs & 31),
        }
        if op not in table:
            raise InterpError(f"unsupported binary op {op!r}")
        return table[op]()

    def _unop(self, op: str, operand):
        if op == "-":
            return -operand
        if op == "!":
            return int(not operand)
        if op == "~":
            return ~operand
        raise InterpError(f"unsupported unary op {op!r}")

    # -- execution ---------------------------------------------------------

    def call(self, name: str, args: list | None = None):
        """Call a function by name with integer arguments."""
        args = list(args or [])
        function = self.module.functions.get(name)
        if function is None:
            return _stub_external(name, args)
        return self._run(function, args)

    def _run(self, function: Function, args: list):
        frame = _Frame()
        arg_by_index = {index: value for index, value in enumerate(args)}
        blocks = {block.label: block for block in function.blocks}
        block = function.entry
        while True:
            next_label: str | None = None
            for instruction in block.instructions:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise InterpTimeout(f"{function.name}: step budget exhausted")
                if isinstance(instruction, Alloca):
                    continue
                if isinstance(instruction, Store):
                    if isinstance(instruction.value, ParamValue):
                        value = arg_by_index.get(instruction.value.index, 0)
                    else:
                        value = self._value(frame, instruction.value)
                    self._store(frame, instruction.addr, value)
                elif isinstance(instruction, Load):
                    frame.temps[instruction.dest] = self._load(frame, instruction.addr)
                elif isinstance(instruction, BinOp):
                    frame.temps[instruction.dest] = self._binop(
                        instruction.op,
                        self._value(frame, instruction.lhs),
                        self._value(frame, instruction.rhs),
                    )
                elif isinstance(instruction, UnOp):
                    frame.temps[instruction.dest] = self._unop(
                        instruction.op, self._value(frame, instruction.operand)
                    )
                elif isinstance(instruction, Select):
                    cond = self._value(frame, instruction.cond)
                    frame.temps[instruction.dest] = self._value(
                        frame, instruction.then_value if cond else instruction.else_value
                    )
                elif isinstance(instruction, CastOp):
                    frame.temps[instruction.dest] = self._value(frame, instruction.value)
                elif isinstance(instruction, AddrOf):
                    frame.temps[instruction.dest] = self._addr_ref(instruction.addr)
                elif isinstance(instruction, Call):
                    callee = instruction.callee
                    if callee is None:
                        target = self._value(frame, instruction.callee_value)
                        if not isinstance(target, Ref) or target.kind != "func":
                            raise InterpError("indirect call through non-function value")
                        callee = target.name
                    call_args = [self._value(frame, a) for a in instruction.args]
                    result = self.call(callee, call_args)
                    if instruction.dest is not None:
                        frame.temps[instruction.dest] = result
                elif isinstance(instruction, Ret):
                    return self._value(frame, instruction.value)
                elif isinstance(instruction, Br):
                    if instruction.cond is None:
                        next_label = instruction.then_label
                    else:
                        taken = bool(self._value(frame, instruction.cond))
                        next_label = instruction.then_label if taken else instruction.else_label
                    break
                else:
                    raise InterpError(f"unsupported instruction {instruction}")
            if next_label is None:
                raise InterpError(f"{function.name}: block fell through without terminator")
            block = blocks[next_label]


def run_function(module: Module, name: str, args: list | None = None, max_steps: int = 100_000):
    """Convenience: interpret ``module.functions[name]`` on ``args``."""
    return Interpreter(module, max_steps=max_steps).call(name, args)
