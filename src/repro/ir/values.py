"""Operand kinds for the load/store IR.

Temps are single-assignment virtual registers produced by instructions;
everything else is a leaf operand.  Named variables are *not* values —
they live behind :class:`repro.ir.instructions.VarAddr` slots and are only
touched through loads and stores, mirroring ``-O0`` LLVM bitcode.
"""

from __future__ import annotations

from dataclasses import dataclass


class Value:
    """Base class for IR operands."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Temp(Value):
    """A virtual register; ``id`` is unique within its function."""

    id: int

    def __str__(self) -> str:
        return f"%t{self.id}"


@dataclass(frozen=True, slots=True)
class ConstInt(Value):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class ConstStr(Value):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True, slots=True)
class FuncRef(Value):
    """A reference to a function by name (used for direct calls and for
    storing function pointers)."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True, slots=True)
class ParamValue(Value):
    """The incoming value of parameter ``name`` (stored into the parameter's
    stack slot by the implicit entry store)."""

    name: str
    index: int

    def __str__(self) -> str:
        return f"arg({self.name})"


@dataclass(frozen=True, slots=True)
class Undef(Value):
    """An undefined value (e.g. reading an uninitialised global)."""

    def __str__(self) -> str:
        return "undef"
