"""Instruction set and address forms for the load/store IR.

Design notes
------------

* **Addresses** describe where a load reads from / a store writes to.
  ``VarAddr`` and ``FieldAddr`` are *direct* (they name a tracked variable
  or field pseudo-variable of the current function) — these are the only
  addresses that create unused-definition candidates.  ``DerefAddr``,
  ``ElementAddr`` and ``GlobalAddr`` are indirect or out of scope for the
  paper's detector (which considers local variables only, §3.1).

* **Field sensitivity** follows the paper §4.2.1: a direct access to field
  ``f`` of struct variable ``s`` is treated as its own pseudo-variable,
  named ``s#f`` (the paper uses ``v n`` with the field offset; we use the
  field name, which is stable and readable).

* **Store kinds** record *why* a store exists.  The core detector treats
  them uniformly, but pruning strategies and the baseline tools
  distinguish them (e.g. fb-infer's Dead Store does not flag declaration
  initialisers, and parameter entry stores are what make "assigned but
  unused argument" detectable at all).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.values import Value, Temp


# --------------------------------------------------------------------------
# Addresses
# --------------------------------------------------------------------------


class Address:
    """Base class for lvalue addresses."""

    __slots__ = ()

    def tracked_var(self) -> str | None:
        """The liveness-tracked variable this address directly denotes,
        or None for indirect/global addresses."""
        return None

    def base_var(self) -> str | None:
        """The named local whose storage is involved, if any (for arrays
        and fields this is the aggregate)."""
        return self.tracked_var()


@dataclass(frozen=True, slots=True)
class VarAddr(Address):
    """The stack slot of local/parameter ``var``."""

    var: str

    def tracked_var(self) -> str | None:
        return self.var

    def __str__(self) -> str:
        return f"&{self.var}"


@dataclass(frozen=True, slots=True)
class FieldAddr(Address):
    """Field ``field`` of struct-typed local ``var`` (possibly a dotted
    path for nested members)."""

    var: str
    field: str

    def tracked_var(self) -> str | None:
        return f"{self.var}#{self.field}"

    def base_var(self) -> str | None:
        return self.var

    def __str__(self) -> str:
        return f"&{self.var}.{self.field}"


@dataclass(frozen=True, slots=True)
class DerefAddr(Address):
    """Memory reached through pointer value ``pointer`` (optionally a
    struct field of the pointee, for ``p->f``)."""

    pointer: Value
    field: str | None = None

    def __str__(self) -> str:
        suffix = f"->{self.field}" if self.field else ""
        return f"*({self.pointer}){suffix}"


@dataclass(frozen=True, slots=True)
class ElementAddr(Address):
    """Element of array-typed local ``var`` at a dynamic index."""

    var: str
    index: Value

    def base_var(self) -> str | None:
        return self.var

    def __str__(self) -> str:
        return f"&{self.var}[{self.index}]"


@dataclass(frozen=True, slots=True)
class GlobalAddr(Address):
    """A global variable; excluded from unused-definition tracking."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------


class StoreKind(enum.Enum):
    ASSIGN = "assign"  # plain '=' assignment
    DECL_INIT = "decl_init"  # initialiser at declaration
    PARAM_INIT = "param_init"  # implicit store of incoming argument
    COMPOUND = "compound"  # '+=' and friends (read-modify-write)
    INCREMENT = "increment"  # '++'/'--' (read-modify-write by a constant)


_next_instruction_id = 0


def _new_instruction_id() -> int:
    global _next_instruction_id
    _next_instruction_id += 1
    return _next_instruction_id


@dataclass(eq=False)
class Instruction:
    """Base class; ``line`` is the 1-based source line the instruction was
    lowered from."""

    line: int
    uid: int = field(default_factory=_new_instruction_id, init=False, compare=False)

    def operands(self) -> list[Value]:
        """Leaf operand values read by this instruction."""
        return []

    def result(self) -> Temp | None:
        """The temp defined by this instruction, if any."""
        return None

    def addresses(self) -> list[Address]:
        """Addresses referenced (for pointer-analysis constraint extraction)."""
        return []


@dataclass(eq=False)
class Alloca(Instruction):
    """Declares stack storage for ``var`` (parameters included)."""

    var: str = ""
    type_name: str = "int"
    is_param: bool = False

    def __str__(self) -> str:
        kind = "param" if self.is_param else "local"
        return f"alloca {self.var} ; {kind} {self.type_name}"


@dataclass(eq=False)
class Load(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    addr: Address = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        if isinstance(self.addr, DerefAddr):
            return [self.addr.pointer]
        if isinstance(self.addr, ElementAddr):
            return [self.addr.index]
        return []

    def result(self) -> Temp | None:
        return self.dest

    def addresses(self) -> list[Address]:
        return [self.addr]

    def __str__(self) -> str:
        return f"{self.dest} = load {self.addr}"


@dataclass(eq=False)
class Store(Instruction):
    addr: Address = None  # type: ignore[assignment]
    value: Value = None  # type: ignore[assignment]
    kind: StoreKind = StoreKind.ASSIGN
    # Set when the stored value is `old(var) + increment_delta` for a
    # constant delta (from ++/--/+=c/x=x+c); feeds cursor pruning.
    increment_delta: int | None = None

    def operands(self) -> list[Value]:
        ops = [self.value]
        if isinstance(self.addr, DerefAddr):
            ops.append(self.addr.pointer)
        if isinstance(self.addr, ElementAddr):
            ops.append(self.addr.index)
        return ops

    def addresses(self) -> list[Address]:
        return [self.addr]

    def __str__(self) -> str:
        return f"store {self.value} -> {self.addr} ; {self.kind.value}"


@dataclass(eq=False)
class BinOp(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    op: str = "+"
    lhs: Value = None  # type: ignore[assignment]
    rhs: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def result(self) -> Temp | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = {self.lhs} {self.op} {self.rhs}"


@dataclass(eq=False)
class UnOp(Instruction):
    dest: Temp = None  # type: ignore[assignment]
    op: str = "-"
    operand: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.operand]

    def result(self) -> Temp | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = {self.op}{self.operand}"


@dataclass(eq=False)
class Select(Instruction):
    """Ternary: dest = cond ? then_value : else_value (both arms lowered
    eagerly; see builder notes)."""

    dest: Temp = None  # type: ignore[assignment]
    cond: Value = None  # type: ignore[assignment]
    then_value: Value = None  # type: ignore[assignment]
    else_value: Value = None  # type: ignore[assignment]

    def operands(self) -> list[Value]:
        return [self.cond, self.then_value, self.else_value]

    def result(self) -> Temp | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = select {self.cond}, {self.then_value}, {self.else_value}"


@dataclass(eq=False)
class CastOp(Instruction):
    """A cast; ``to_void`` marks the `(void)expr` discard idiom, which the
    unused-hints pruner treats as an explicit developer hint."""

    dest: Temp = None  # type: ignore[assignment]
    value: Value = None  # type: ignore[assignment]
    type_name: str = "int"
    to_void: bool = False

    def operands(self) -> list[Value]:
        return [self.value]

    def result(self) -> Temp | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = ({self.type_name}) {self.value}"


@dataclass(eq=False)
class AddrOf(Instruction):
    """dest = &slot — the only way a local's address escapes into values."""

    dest: Temp = None  # type: ignore[assignment]
    addr: Address = None  # type: ignore[assignment]

    def result(self) -> Temp | None:
        return self.dest

    def addresses(self) -> list[Address]:
        return [self.addr]

    def __str__(self) -> str:
        return f"{self.dest} = addrof {self.addr}"


@dataclass(eq=False)
class Call(Instruction):
    """Direct (``callee`` is a name) or indirect (``callee_value`` is a
    pointer value) call.

    ``dest`` is None only for calls to known-void functions.  For calls in
    statement position whose result is discarded, ``dest`` is still
    created and ``is_stmt`` is set — an implicit definition ``tmp = f()``
    exactly as the paper's peer-definition discussion frames it.
    """

    dest: Temp | None = None
    callee: str | None = None
    callee_value: Value | None = None
    args: list[Value] = field(default_factory=list)
    is_stmt: bool = False
    void_cast: bool = False  # result explicitly discarded via (void)

    def operands(self) -> list[Value]:
        ops = list(self.args)
        if self.callee_value is not None:
            ops.append(self.callee_value)
        return ops

    def result(self) -> Temp | None:
        return self.dest

    @property
    def is_indirect(self) -> bool:
        return self.callee is None

    def __str__(self) -> str:
        target = self.callee if self.callee else f"*{self.callee_value}"
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest else ""
        return f"{prefix}call {target}({args})"


@dataclass(eq=False)
class Ret(Instruction):
    value: Value | None = None

    def operands(self) -> list[Value]:
        return [self.value] if self.value is not None else []

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret void"


@dataclass(eq=False)
class Br(Instruction):
    """Terminator: unconditional (cond None) or two-way conditional branch.
    Targets are block labels; resolved against Function.blocks."""

    cond: Value | None = None
    then_label: str = ""
    else_label: str = ""

    def operands(self) -> list[Value]:
        return [self.cond] if self.cond is not None else []

    def __str__(self) -> str:
        if self.cond is None:
            return f"br {self.then_label}"
        return f"br {self.cond} ? {self.then_label} : {self.else_label}"
