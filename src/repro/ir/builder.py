"""AST → load/store IR lowering.

The lowering mirrors what clang emits at ``-O0 -fno-inline``, which is the
compilation mode the paper uses (§8.1.2) precisely because it keeps every
source-level definition visible as a ``store``:

* every local variable and parameter gets an ``alloca``; parameters are
  initialised by an implicit entry store (``StoreKind.PARAM_INIT``) — this
  is what makes "assigned but unused argument" a detectable definition;
* reads of named variables become ``load``; writes become ``store``;
* direct struct-field accesses (``s.f``) address the pseudo-variable
  ``s#f`` (paper §4.2.1's field-sensitive naming);
* ``&&``/``||`` and ``?:`` are lowered eagerly (both operands evaluated,
  ``Select`` for the ternary).  May-liveness takes the union over paths,
  so eager lowering does not change which definitions are unused; it only
  simplifies the CFG;
* ``sizeof`` does not evaluate its operand (C semantics), so it creates
  no uses.

Increment provenance (``Store.increment_delta``) is recorded whenever the
stored value is ``old(var) ± constant`` — from ``++``/``--``, compound
``+=``/``-=`` with constant, or a plain ``v = v + c`` assignment.  The
cursor pruner consumes this.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_source
from repro.frontend.preprocessor import PreprocessedSource
from repro.ir.instructions import (
    Address,
    AddrOf,
    Alloca,
    BinOp,
    Br,
    Call,
    CastOp,
    DerefAddr,
    ElementAddr,
    FieldAddr,
    GlobalAddr,
    Load,
    Ret,
    Select,
    Store,
    StoreKind,
    UnOp,
    VarAddr,
)
from repro.ir.module import BasicBlock, Function, Module, VarInfo
from repro.ir.values import ConstInt, ConstStr, FuncRef, ParamValue, Temp, Undef, Value

_CHAR_ESCAPES = {
    r"\0": 0,
    r"\n": 10,
    r"\t": 9,
    r"\r": 13,
    r"\\": 92,
    r"\'": 39,
    r"\"": 34,
}


def _char_value(text: str) -> int:
    if text in _CHAR_ESCAPES:
        return _CHAR_ESCAPES[text]
    return ord(text[0]) if text else 0


class _TypeTable:
    """Resolves surface types to the coarse properties VarInfo records."""

    def __init__(self, unit: ast.TranslationUnit):
        self.typedefs = {td.name: td.aliased for td in unit.typedefs}
        self.structs = {st.name for st in unit.structs}

    def resolve(self, type_: ast.Type, depth: int = 0) -> ast.Type:
        if depth > 16:
            return type_
        if isinstance(type_, ast.NamedType) and type_.name in self.typedefs:
            return self.resolve(self.typedefs[type_.name], depth + 1)
        return type_

    def info_flags(self, type_: ast.Type) -> tuple[bool, bool, bool]:
        """(is_struct, is_array, is_pointer) after typedef resolution."""
        resolved = self.resolve(type_)
        return (
            isinstance(resolved, ast.StructType),
            isinstance(resolved, ast.ArrayType),
            isinstance(resolved, ast.PointerType),
        )


class _FunctionBuilder:
    """Lowers one FunctionDef into a Function."""

    def __init__(self, fn_def: ast.FunctionDef, module: Module, types: _TypeTable):
        self.fn_def = fn_def
        self.module = module
        self.types = types
        self.function = Function(
            name=fn_def.name,
            filename=module.filename,
            return_type=str(fn_def.return_type),
            line=fn_def.line,
            end_line=fn_def.end_line,
        )
        self.temp_counter = 0
        self.block_counter = 0
        self.current = self._new_block("entry")
        # break binds to the nearest enclosing loop OR switch; continue
        # only to loops — hence two separate target stacks.
        self.break_stack: list[BasicBlock] = []
        self.continue_stack: list[BasicBlock] = []
        self.label_blocks: dict[str, BasicBlock] = {}
        self.temp_defs: dict[Temp, object] = {}

    # -- infrastructure ------------------------------------------------

    def _new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{self.block_counter}" if hint != "entry" else "entry"
        self.block_counter += 1
        block = BasicBlock(label=label)
        self.function.blocks.append(block)
        return block

    def _new_temp(self) -> Temp:
        self.temp_counter += 1
        return Temp(self.temp_counter)

    def _emit(self, instruction) -> None:
        if self.current.is_terminated():
            # Unreachable code after return/break/goto still gets lowered
            # (the paper analyses all functions, including dead arms).
            self.current = self._new_block("dead")
        self.current.append(instruction)
        result = instruction.result()
        if result is not None:
            self.temp_defs[result] = instruction

    def _branch_to(self, target: BasicBlock, line: int) -> None:
        if not self.current.is_terminated():
            self._emit(Br(line=line, then_label=target.label))

    def _error(self, message: str, line: int) -> LoweringError:
        return LoweringError(message, self.module.filename, line)

    # -- variables -------------------------------------------------------

    def _declare(self, name: str, type_: ast.Type, line: int, attrs: tuple[str, ...], is_param: bool, param_index: int = -1) -> None:
        is_struct, is_array, is_pointer = self.types.info_flags(type_)
        info = VarInfo(
            name=name,
            type_name=str(type_),
            decl_line=line,
            attrs=attrs,
            is_param=is_param,
            param_index=param_index,
            is_struct=is_struct,
            is_array=is_array,
            is_pointer=is_pointer,
        )
        self.function.variables[name] = info
        self._emit(Alloca(line=line, var=name, type_name=info.type_name, is_param=is_param))
        if is_param:
            self.function.params.append(info)
            self._emit(
                Store(
                    line=line,
                    addr=VarAddr(name),
                    value=ParamValue(name, param_index),
                    kind=StoreKind.PARAM_INIT,
                )
            )

    def _is_local(self, name: str) -> bool:
        return name in self.function.variables

    def _is_function_name(self, name: str) -> bool:
        return name in self.module.signatures

    # -- lvalues -----------------------------------------------------------

    def _member_path(self, expr: ast.Member) -> tuple[ast.Expr, str] | None:
        """Flatten a chain of non-arrow members into (base expr, dotted path)."""
        parts: list[str] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Member) and not node.arrow:
            parts.append(node.field_name)
            node = node.base
        return node, ".".join(reversed(parts))

    def lower_lvalue(self, expr: ast.Expr) -> Address:
        if isinstance(expr, ast.Identifier):
            if self._is_local(expr.name):
                return VarAddr(expr.name)
            return GlobalAddr(expr.name)
        if isinstance(expr, ast.Member):
            if not expr.arrow:
                base, path = self._member_path(expr)
                if isinstance(base, ast.Identifier) and self._is_local(base.name):
                    info = self.function.variables[base.name]
                    if info.is_struct:
                        return FieldAddr(base.name, path)
                # Fall through: member of a non-struct-local base — go
                # through its value as an indirect access.
                base_value = self.lower_expr(base)
                return DerefAddr(base_value, path)
            pointer = self.lower_expr(expr.base)
            return DerefAddr(pointer, expr.field_name)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self.lower_expr(expr.operand)
            return DerefAddr(pointer)
        if isinstance(expr, ast.Index):
            base = expr.base
            index_value = self.lower_expr(expr.index)
            if isinstance(base, ast.Identifier) and self._is_local(base.name):
                info = self.function.variables[base.name]
                if info.is_array:
                    return ElementAddr(base.name, index_value)
                # pointer[i] — load the pointer, offset it, deref
                pointer = self.lower_expr(base)
                offset = self._new_temp()
                self._emit(BinOp(line=expr.line, dest=offset, op="+", lhs=pointer, rhs=index_value))
                return DerefAddr(offset)
            base_value = self.lower_expr(base)
            offset = self._new_temp()
            self._emit(BinOp(line=expr.line, dest=offset, op="+", lhs=base_value, rhs=index_value))
            return DerefAddr(offset)
        if isinstance(expr, ast.Cast):
            return self.lower_lvalue(expr.operand)
        raise self._error(f"unsupported lvalue {type(expr).__name__}", expr.line)

    # -- expressions ---------------------------------------------------------

    def _load(self, addr: Address, line: int) -> Temp:
        dest = self._new_temp()
        self._emit(Load(line=line, dest=dest, addr=addr))
        return dest

    def _increment_delta_of(self, target: ast.Expr, value_expr: ast.Expr) -> int | None:
        """Detect `v = v + c` / `v = v - c` shapes for a named target."""
        if not isinstance(target, ast.Identifier):
            return None
        if not isinstance(value_expr, ast.Binary) or value_expr.op not in ("+", "-"):
            return None
        left, right = value_expr.left, value_expr.right
        sign = 1 if value_expr.op == "+" else -1
        if isinstance(left, ast.Identifier) and left.name == target.name and isinstance(right, ast.IntLiteral):
            return sign * right.value
        if (
            value_expr.op == "+"
            and isinstance(right, ast.Identifier)
            and right.name == target.name
            and isinstance(left, ast.IntLiteral)
        ):
            return left.value
        return None

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return ConstInt(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return ConstInt(_char_value(expr.value))
        if isinstance(expr, ast.StringLiteral):
            return ConstStr(expr.value)
        if isinstance(expr, ast.Identifier):
            if self._is_local(expr.name):
                return self._load(VarAddr(expr.name), expr.line)
            if self._is_function_name(expr.name):
                return FuncRef(expr.name)
            return self._load(GlobalAddr(expr.name), expr.line)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._lower_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.lower_expr(expr.cond)
            then_value = self.lower_expr(expr.then)
            else_value = self.lower_expr(expr.other)
            dest = self._new_temp()
            self._emit(Select(line=expr.line, dest=dest, cond=cond, then_value=then_value, else_value=else_value))
            return dest
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, is_stmt=False)
        if isinstance(expr, ast.Member) or isinstance(expr, ast.Index):
            addr = self.lower_lvalue(expr)
            return self._load(addr, expr.line)
        if isinstance(expr, ast.Cast):
            value = self.lower_expr(expr.operand)
            dest = self._new_temp()
            to_void = expr.target_type.is_void()
            self._emit(CastOp(line=expr.line, dest=dest, value=value, type_name=str(expr.target_type), to_void=to_void))
            if to_void and isinstance(value, Temp):
                defining = self.temp_defs.get(value)
                if isinstance(defining, Call):
                    defining.void_cast = True
            return dest
        if isinstance(expr, ast.SizeOf):
            return ConstInt(4)  # operand is unevaluated, per C semantics
        raise self._error(f"unsupported expression {type(expr).__name__}", expr.line)

    def _lower_assign(self, expr: ast.Assign) -> Value:
        if expr.op == "=":
            value = self.lower_expr(expr.value)
            addr = self.lower_lvalue(expr.target)
            delta = self._increment_delta_of(expr.target, expr.value)
            self._emit(
                Store(line=expr.line, addr=addr, value=value, kind=StoreKind.ASSIGN, increment_delta=delta)
            )
            return value
        # Compound assignment: read-modify-write.
        op = expr.op[:-1]
        addr = self.lower_lvalue(expr.target)
        old = self._load(addr, expr.line)
        rhs = self.lower_expr(expr.value)
        dest = self._new_temp()
        self._emit(BinOp(line=expr.line, dest=dest, op=op, lhs=old, rhs=rhs))
        delta = None
        if op in ("+", "-") and isinstance(rhs, ConstInt):
            delta = rhs.value if op == "+" else -rhs.value
        self._emit(
            Store(line=expr.line, addr=addr, value=dest, kind=StoreKind.COMPOUND, increment_delta=delta)
        )
        return dest

    def _lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "&":
            addr = self.lower_lvalue(expr.operand)
            dest = self._new_temp()
            self._emit(AddrOf(line=expr.line, dest=dest, addr=addr))
            return dest
        if expr.op == "*":
            pointer = self.lower_expr(expr.operand)
            return self._load(DerefAddr(pointer), expr.line)
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            addr = self.lower_lvalue(expr.operand)
            old = self._load(addr, expr.line)
            dest = self._new_temp()
            self._emit(BinOp(line=expr.line, dest=dest, op="+", lhs=old, rhs=ConstInt(delta)))
            self._emit(
                Store(line=expr.line, addr=addr, value=dest, kind=StoreKind.INCREMENT, increment_delta=delta)
            )
            return dest
        operand = self.lower_expr(expr.operand)
        if expr.op == "+":
            return operand
        dest = self._new_temp()
        self._emit(UnOp(line=expr.line, dest=dest, op=expr.op, operand=operand))
        return dest

    def _lower_postfix(self, expr: ast.Postfix) -> Value:
        delta = 1 if expr.op == "++" else -1
        addr = self.lower_lvalue(expr.operand)
        old = self._load(addr, expr.line)
        dest = self._new_temp()
        self._emit(BinOp(line=expr.line, dest=dest, op="+", lhs=old, rhs=ConstInt(delta)))
        self._emit(
            Store(line=expr.line, addr=addr, value=dest, kind=StoreKind.INCREMENT, increment_delta=delta)
        )
        return old  # postfix yields the pre-increment value

    def _lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op == ",":
            self.lower_expr(expr.left)
            return self.lower_expr(expr.right)
        lhs = self.lower_expr(expr.left)
        rhs = self.lower_expr(expr.right)
        dest = self._new_temp()
        self._emit(BinOp(line=expr.line, dest=dest, op=expr.op, lhs=lhs, rhs=rhs))
        return dest

    def _lower_call(self, expr: ast.Call, is_stmt: bool) -> Value:
        args = [self.lower_expr(argument) for argument in expr.args]
        callee_name: str | None = None
        callee_value: Value | None = None
        if isinstance(expr.callee, ast.Identifier) and not self._is_local(expr.callee.name):
            callee_name = expr.callee.name
        else:
            callee_value = self.lower_expr(expr.callee)
            if isinstance(callee_value, FuncRef):
                callee_name = callee_value.name
                callee_value = None
        returns_void = callee_name is not None and self.module.callee_return_type(callee_name) == "void"
        dest = None if returns_void else self._new_temp()
        call = Call(
            line=expr.line,
            dest=dest,
            callee=callee_name,
            callee_value=callee_value,
            args=args,
            is_stmt=is_stmt,
        )
        self._emit(call)
        return dest if dest is not None else Undef()

    # -- statements --------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.lower_stmt(inner)
            return
        if isinstance(stmt, ast.DeclStmt):
            for declarator in stmt.declarators:
                self._declare(declarator.name, declarator.type, declarator.line, declarator.attrs, is_param=False)
                if declarator.init is not None:
                    value = self.lower_expr(declarator.init)
                    self._emit(
                        Store(line=declarator.line, addr=VarAddr(declarator.name), value=value, kind=StoreKind.DECL_INIT)
                    )
            return
        if isinstance(stmt, ast.ExprStmt):
            if stmt.expr is None:
                return
            if isinstance(stmt.expr, ast.Call):
                self._lower_call(stmt.expr, is_stmt=True)
            else:
                self.lower_expr(stmt.expr)
            return
        if isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
            return
        if isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
            return
        if isinstance(stmt, ast.SwitchStmt):
            self._lower_switch(stmt)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.function.return_lines.append(stmt.line)
            self._emit(Ret(line=stmt.line, value=value))
            return
        if isinstance(stmt, ast.BreakStmt):
            if not self.break_stack:
                raise self._error("break outside a loop or switch", stmt.line)
            self._branch_to(self.break_stack[-1], stmt.line)
            return
        if isinstance(stmt, ast.ContinueStmt):
            if not self.continue_stack:
                raise self._error("continue outside a loop", stmt.line)
            self._branch_to(self.continue_stack[-1], stmt.line)
            return
        if isinstance(stmt, ast.GotoStmt):
            target = self._label_block(stmt.label)
            self._branch_to(target, stmt.line)
            return
        if isinstance(stmt, ast.LabelStmt):
            target = self._label_block(stmt.label)
            self._branch_to(target, stmt.line)
            self.current = target
            if stmt.statement is not None:
                self.lower_stmt(stmt.statement)
            return
        raise self._error(f"unsupported statement {type(stmt).__name__}", stmt.line)

    def _label_block(self, label: str) -> BasicBlock:
        if label not in self.label_blocks:
            block = self._new_block(f"label_{label}_")
            self.label_blocks[label] = block
        return self.label_blocks[label]

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self._new_block("then")
        merge_block = self._new_block("merge")
        else_block = self._new_block("else") if stmt.other is not None else merge_block
        self._emit(Br(line=stmt.line, cond=cond, then_label=then_block.label, else_label=else_block.label))
        self.current = then_block
        self.lower_stmt(stmt.then)
        self._branch_to(merge_block, stmt.line)
        if stmt.other is not None:
            self.current = else_block
            self.lower_stmt(stmt.other)
            self._branch_to(merge_block, stmt.line)
        self.current = merge_block

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self._new_block("loopcond")
        body_block = self._new_block("loopbody")
        exit_block = self._new_block("loopexit")
        if stmt.do_while:
            self._branch_to(body_block, stmt.line)
        else:
            self._branch_to(cond_block, stmt.line)
        self.current = cond_block
        cond = self.lower_expr(stmt.cond)
        self._emit(Br(line=stmt.line, cond=cond, then_label=body_block.label, else_label=exit_block.label))
        self.current = body_block
        self.continue_stack.append(cond_block)
        self.break_stack.append(exit_block)
        self.lower_stmt(stmt.body)
        self.continue_stack.pop()
        self.break_stack.pop()
        self._branch_to(cond_block, stmt.line)
        self.current = exit_block

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self._new_block("forcond")
        body_block = self._new_block("forbody")
        step_block = self._new_block("forstep")
        exit_block = self._new_block("forexit")
        self._branch_to(cond_block, stmt.line)
        self.current = cond_block
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self._emit(Br(line=stmt.line, cond=cond, then_label=body_block.label, else_label=exit_block.label))
        else:
            self._branch_to(body_block, stmt.line)
        self.current = body_block
        self.continue_stack.append(step_block)
        self.break_stack.append(exit_block)
        self.lower_stmt(stmt.body)
        self.continue_stack.pop()
        self.break_stack.pop()
        self._branch_to(step_block, stmt.line)
        self.current = step_block
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self._branch_to(cond_block, stmt.line)
        self.current = exit_block

    def _lower_switch(self, stmt: ast.SwitchStmt) -> None:
        """C switch semantics: cases tested in order against the selector,
        bodies fall through to the next case's body unless they break."""
        selector = self.lower_expr(stmt.cond)
        exit_block = self._new_block("switchexit")
        body_blocks = [self._new_block("case") for _ in stmt.cases]
        default_index = next(
            (i for i, case in enumerate(stmt.cases) if case.value is None), None
        )
        # Dispatch chain over the non-default cases, in source order.
        tests = [(i, case) for i, case in enumerate(stmt.cases) if case.value is not None]
        fallback = body_blocks[default_index] if default_index is not None else exit_block
        for position, (index, case) in enumerate(tests):
            case_value = self.lower_expr(case.value)
            compare = self._new_temp()
            self._emit(BinOp(line=case.line, dest=compare, op="==", lhs=selector, rhs=case_value))
            if position + 1 < len(tests):
                next_test = self._new_block("casetest")
                self._emit(
                    Br(line=case.line, cond=compare,
                       then_label=body_blocks[index].label, else_label=next_test.label)
                )
                self.current = next_test
            else:
                self._emit(
                    Br(line=case.line, cond=compare,
                       then_label=body_blocks[index].label, else_label=fallback.label)
                )
        if not tests:
            self._branch_to(fallback, stmt.line)
        # Bodies with fallthrough.
        self.break_stack.append(exit_block)
        for index, case in enumerate(stmt.cases):
            self.current = body_blocks[index]
            for inner in case.body:
                self.lower_stmt(inner)
            next_target = body_blocks[index + 1] if index + 1 < len(body_blocks) else exit_block
            self._branch_to(next_target, case.line)
        self.break_stack.pop()
        self.current = exit_block

    # -- driver ------------------------------------------------------------

    def build(self) -> Function:
        for index, param in enumerate(self.fn_def.params):
            if param.name:
                self._declare(param.name, param.type, param.line, param.attrs, is_param=True, param_index=index)
        assert self.fn_def.body is not None
        self.lower_stmt(self.fn_def.body)
        self._seal_blocks()
        self._wire_successors()
        return self.function

    def _seal_blocks(self) -> None:
        """Give every block a terminator (implicit return at function end)."""
        for block in self.function.blocks:
            if not block.is_terminated():
                if self.fn_def.return_type.is_void():
                    block.append(Ret(line=self.fn_def.end_line))
                else:
                    block.append(Ret(line=self.fn_def.end_line, value=Undef()))

    def _wire_successors(self) -> None:
        by_label = {block.label: block for block in self.function.blocks}
        for block in self.function.blocks:
            terminator = block.terminator
            if isinstance(terminator, Br):
                targets = [terminator.then_label]
                if terminator.cond is not None and terminator.else_label:
                    targets.append(terminator.else_label)
                for label in targets:
                    successor = by_label[label]
                    if successor not in block.successors:
                        block.successors.append(successor)
                        successor.predecessors.append(block)


def lower_unit(unit: ast.TranslationUnit, source: PreprocessedSource | None = None) -> Module:
    """Lower a parsed translation unit into an IR module."""
    module = Module(filename=unit.filename, unit=unit, source=source)
    for fn in unit.functions:
        module.signatures[fn.name] = str(fn.return_type)
    types = _TypeTable(unit)
    for fn_def in unit.functions:
        if fn_def.body is None:
            continue
        builder = _FunctionBuilder(fn_def, module, types)
        module.functions[fn_def.name] = builder.build()
    return module


def lower_source(text: str, filename: str = "<memory>", config: set[str] | None = None) -> Module:
    """Parse and lower MiniC source text in one step."""
    from repro import obs

    with obs.span("parse", module=filename):
        unit, preprocessed = parse_source(text, filename=filename, config=config)
    with obs.span("lower", module=filename):
        return lower_unit(unit, preprocessed)
