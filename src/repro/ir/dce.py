"""Dead-code elimination over the load/store IR (paper §2.2).

"Detecting unused definitions has been regarded as compiler optimization
for a long time … merged into mainstream compilers to eliminate redundant
computation."  This pass is that classical consumer of the same liveness
facts ValueCheck reinterprets as bug symptoms: it computes the
instructions a compiler would delete —

* stores to tracked variables whose value is never read (dead stores),
* pure instructions whose result temp is (transitively) unused,
* allocas of variables that are never loaded.

The pass is *analysis only* by default (`dead_instructions`), with an
optional in-place transform (`eliminate_dead_code`) used by tests to show
that ValueCheck's store-shaped candidates are exactly the dead stores a
compiler would remove — the paper's point that the same facts serve two
masters.  Calls are never removed (side effects), which is also why "the
compiler already deletes it" does not make an ignored return value
harmless."""

from __future__ import annotations

from repro.dataflow.liveness import unused_definitions
from repro.ir.instructions import (
    AddrOf,
    Alloca,
    BinOp,
    CastOp,
    Instruction,
    Load,
    Select,
    Store,
    UnOp,
)
from repro.ir.module import Function
from repro.ir.values import Temp

_PURE = (Load, BinOp, UnOp, CastOp, Select, AddrOf)


def dead_instructions(function: Function) -> list[Instruction]:
    """Instructions a DCE pass would delete, in a safe deletion order."""
    dead: list[Instruction] = []
    dead_ids: set[int] = set()

    # 1. Dead stores: flow-sensitive liveness, the same facts the
    # unused-definition detector consumes.
    dead_store_keys = {
        (entry.var, entry.line) for entry in unused_definitions(function)
    }
    for instruction in function.instructions():
        if isinstance(instruction, Store) and instruction.addr is not None:
            tracked = instruction.addr.tracked_var()
            if tracked is not None and (tracked, instruction.line) in dead_store_keys:
                dead.append(instruction)
                dead_ids.add(instruction.uid)

    # 2. Transitively unused pure temps (uses only by already-dead code).
    changed = True
    while changed:
        changed = False
        use_counts: dict[Temp, int] = {}
        for instruction in function.instructions():
            if instruction.uid in dead_ids:
                continue
            for operand in instruction.operands():
                if isinstance(operand, Temp):
                    use_counts[operand] = use_counts.get(operand, 0) + 1
        for instruction in function.instructions():
            if instruction.uid in dead_ids or not isinstance(instruction, _PURE):
                continue
            result = instruction.result()
            if result is not None and use_counts.get(result, 0) == 0:
                dead.append(instruction)
                dead_ids.add(instruction.uid)
                changed = True

    # 3. Allocas of variables with no remaining direct access.
    live_vars: set[str] = set()
    for instruction in function.instructions():
        if instruction.uid in dead_ids:
            continue
        for addr in instruction.addresses():
            base = addr.base_var()
            if base is not None:
                live_vars.add(base)
    for instruction in function.instructions():
        if isinstance(instruction, Alloca) and not instruction.is_param:
            if instruction.var not in live_vars:
                dead.append(instruction)
                dead_ids.add(instruction.uid)
    return dead


def eliminate_dead_code(function: Function) -> int:
    """Remove dead instructions in place; returns how many were removed.
    Iterates to a fixpoint (removing a store can kill the load feeding
    it, which can kill an earlier store, …)."""
    removed_total = 0
    while True:
        dead = dead_instructions(function)
        if not dead:
            return removed_total
        dead_ids = {instruction.uid for instruction in dead}
        for block in function.blocks:
            block.instructions = [
                instruction
                for instruction in block.instructions
                if instruction.uid not in dead_ids
            ]
        removed_total += len(dead)


def dce_summary(function: Function) -> dict[str, int]:
    """Counts per instruction category a DCE pass would delete."""
    summary = {"stores": 0, "pure": 0, "allocas": 0}
    for instruction in dead_instructions(function):
        if isinstance(instruction, Store):
            summary["stores"] += 1
        elif isinstance(instruction, Alloca):
            summary["allocas"] += 1
        else:
            summary["pure"] += 1
    return summary
