#!/usr/bin/env python3
"""Generate a scaled-down MySQL-like corpus and reproduce the headline
evaluation numbers on it: detection counts, pruning breakdown, DOK
ranking quality and a baseline comparison.

Run:  python examples/corpus_evaluation.py [scale]
"""

import sys

from repro.baselines import CoverityUnused, InferDeadStore
from repro.core import ValueCheck
from repro.corpus import generate_app
from repro.eval.metrics import precision_at, real_bug_count


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"generating mysql corpus at scale {scale}...")
    app = generate_app("mysql", scale=scale, seed=7)
    project = app.project()
    print(
        f"  {len(project.modules)} files, {project.loc()} LoC, "
        f"{len(app.repo.commits)} commits, "
        f"{len(app.ledger.entries)} planted constructs "
        f"({len(app.ledger.bugs())} bugs)"
    )

    report = ValueCheck().analyze(project)
    reported = report.reported()
    real = real_bug_count(app.ledger, reported)
    print("\nValueCheck pipeline:")
    print(f"  cross-scope candidates: {len(report.cross_scope())}")
    for pruner, count in sorted(report.prune_stats.items()):
        print(f"    pruned by {pruner}: {count}")
    print(f"  reported: {len(reported)}  real bugs: {real}  "
          f"FP rate: {1 - real / len(reported):.0%}")

    cutoff = max(3, round(10 * scale * 2))
    top_real, top_n = precision_at(app.ledger, reported, cutoff)
    print(f"  precision@{cutoff} after DOK ranking: {top_real}/{top_n} "
          f"({top_real / top_n:.0%})")

    print("\nBaselines on the same corpus:")
    for baseline in (InferDeadStore(), CoverityUnused()):
        result = baseline.analyze(project)
        hits = 0
        for warning in result.warnings:
            entry = app.ledger.match_warning(warning.file, warning.function, warning.var)
            if entry is not None and entry.is_bug:
                hits += 1
        rate = 1 - hits / result.count() if result.count() else 0.0
        print(f"  {baseline.name:<10} found={result.count():<5} real≈{hits:<4} FP≈{rate:.0%}")

    print("\nTop of the ranked report:")
    for finding in reported[:8]:
        entry = app.ledger.match_finding(finding)
        verdict = "BUG" if entry is not None and entry.is_bug else "minor"
        print(
            f"  #{finding.rank:<3} fam={finding.familiarity:.2f} "
            f"[{finding.candidate.kind.value:<16}] "
            f"{finding.candidate.function}/{finding.candidate.var}  -> {verdict}"
        )


if __name__ == "__main__":
    main()
