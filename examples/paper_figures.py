#!/usr/bin/env python3
"""Walk through the paper's motivating examples (Figures 1a, 1b and 5).

Three multi-file, multi-author scenarios:

* **Figure 1a** — the first attribute from ``next_attr_from_bitmap`` is
  overwritten by the loop initialiser another developer added, so one
  file attribute is silently never copied (a security bug);
* **Figure 1b** — ``logfile_mod_open``'s ``bufsz`` argument is clobbered
  with 1400 inside the callee, so the caller's configured ``0`` (flush
  immediately) has no effect (a configuration bug);
* **Figure 5** — a cursor (``*o++``) whose final increment is dead *by
  design*: detected, then pruned, never reported.

Run:  python examples/paper_figures.py
"""

from repro.core import ValueCheck
from repro.core.findings import CandidateKind
from repro.core.project import Project
from repro.vcs import Author, Repository

DEV_BITMAP = Author("bitmap-author")
DEV_FSAL = Author("fsal-author")
DEV_LOG = Author("log-author")
DEV_SQUID = Author("squid-author")


def build_repo() -> Repository:
    repo = Repository("paper-figures")

    # --- Figure 1a: attribute bitmap conversion ------------------------
    bitmap_lib = """\
int next_attr_from_bitmap(int *bm)
{
    if (bm == NULL) { return -1; }
    return *bm;
}
"""
    fsal_v1 = """\
int next_attr_from_bitmap(int *bm);
int bitmap4_to_attrmask_t(int *bm, int *mask)
{
    int attr = next_attr_from_bitmap(bm);
    while (attr != -1) { *mask = attr; attr = next_attr_from_bitmap(bm); }
    return 0;
}
"""
    # Author2 rewrites the loop as a for-statement whose initialiser
    # refetches — overwriting (and thereby skipping) the first attribute.
    fsal_v2 = """\
int next_attr_from_bitmap(int *bm);
int bitmap4_to_attrmask_t(int *bm, int *mask)
{
    int attr = next_attr_from_bitmap(bm);
    for (attr = next_attr_from_bitmap(bm); attr != -1; attr = next_attr_from_bitmap(bm))
    { *mask = attr; }
    return 0;
}
"""
    # --- Figure 1b: log buffer size -------------------------------------
    logfile_v1 = """\
int logfile_mod_open(char *path, int bufsz)
{
    if (path == NULL) { return -1; }
    if (bufsz > 0) { return bufsz; }
    return 0;
}
"""
    logfile_v2 = """\
int logfile_mod_open(char *path, int bufsz)
{
    bufsz = 1400;
    if (path == NULL) { return -1; }
    if (bufsz > 0) { return bufsz; }
    return 0;
}
"""
    caller = """\
int logfile_mod_open(char *path, int bufsz);
void setup_access_log(void)
{
    int fd;
    fd = logfile_mod_open("headers.log", 0);
    if (fd < 0) { return; }
}
"""
    # --- Figure 5: a cursor, intentionally dead ------------------------
    # The cursor body is a later rewrite inside a function another
    # developer owns — cross-scope, so it enters the pipeline, where the
    # cursor pruner recognises and drops it.
    cursor_v1 = """\
static void dashes_to_underscores(char *output, char c)
{
    if (c == '-') { *output = '_'; }
}
"""
    cursor = """\
static void dashes_to_underscores(char *output, char c)
{
    char *o = output;
    if (c == '-')
        *o++ = '_';
    *o++ = '\\0';
}
"""

    # Replay everything in day order (one linear history).  The Figure 1a
    # loop restructure is by a *different* developer than the original
    # conversion — that boundary is what makes it cross-scope.
    dev_fsal2 = Author("fsal-refactorer")
    repo.commit(DEV_BITMAP, "add bitmap iteration helpers", {"bitmap.c": bitmap_lib}, day=50)
    repo.commit(DEV_LOG, "logfile module", {"logfile.c": logfile_v1}, day=300)
    repo.commit(DEV_FSAL, "convert NFSv4 masks to FSAL masks", {"fsal_convert.c": fsal_v1}, day=400)
    repo.commit(DEV_LOG, "normalise option names", {"tools.c": cursor_v1}, day=600)
    repo.commit(DEV_SQUID, "open header log unbuffered", {"access_log.c": caller}, day=800)
    repo.commit(dev_fsal2, "restructure attribute loop", {"fsal_convert.c": fsal_v2}, day=2300)
    repo.commit(DEV_LOG, "default the log buffer to MTU", {"logfile.c": logfile_v2}, day=2600)
    repo.commit(DEV_SQUID, "handle multi-dash names", {"tools.c": cursor}, day=2700)
    return repo


def main() -> None:
    repo = build_repo()
    report = ValueCheck().analyze(Project.from_repository(repo))

    print(report.summary())
    print()
    reported = report.reported()

    fig1a = [f for f in reported if f.candidate.var == "attr"]
    print("Figure 1a — skipped first bitmap attribute:")
    for finding in fig1a:
        print(f"  {finding.candidate} (overwritten at {finding.candidate.overwrite_lines})")
    assert fig1a, "Figure 1a bug not detected"

    fig1b = [f for f in reported if f.candidate.var == "bufsz"]
    print("Figure 1b — overwritten bufsz argument:")
    for finding in fig1b:
        print(f"  {finding.candidate} [{finding.authorship.reason}]")
    assert fig1b and fig1b[0].candidate.kind is CandidateKind.OVERWRITTEN_ARG

    cursors = [f for f in report.pruned() if f.candidate.var == "o"]
    print("Figure 5 — cursor detected but pruned:")
    for finding in cursors:
        print(f"  {finding.candidate} pruned_by={finding.pruned_by}")
    assert cursors and cursors[0].pruned_by == "cursor"
    assert not any(f.candidate.var == "o" for f in reported)

    print("\nBoth bugs reported; the intentional cursor was pruned. ✔")


if __name__ == "__main__":
    main()
