#!/usr/bin/env python3
"""Build a corpus for *your own* hypothetical project and benchmark the
pipeline (and a baseline) on it.

The four built-in profiles mirror the paper's applications; this example
uses the custom-profile API to synthesise an embedded-flavoured code base
with a different bug/noise mix, then runs the full pipeline and scores it
against the shipped ground truth.

Run:  python examples/custom_corpus.py
"""

from repro.baselines import CoverityUnused
from repro.core import ValueCheck
from repro.corpus.custom import generate_custom, make_profile
from repro.corpus.stats import collect_stats
from repro.eval.metrics import real_bug_count


def main() -> None:
    profile = make_profile(
        "router-firmware",
        display="RouterFW",
        version="2.4",
        bugs=12,
        fp_minor=4,
        config_dep=6,  # firmware trees are #ifdef-heavy
        cursor=8,
        hints=30,
        peer_sites=60,
        same_author=40,
        filler=25,
        domains=("network", "drivers", "security"),
        n_owner_authors=6,
        n_drifter_authors=5,
    )
    app = generate_custom(profile, scale=1.0, seed=99)
    project = app.project()

    print(collect_stats(app.repo, project=project, ledger=app.ledger).render())
    print()

    report = ValueCheck().analyze(project)
    reported = report.reported()
    real = real_bug_count(app.ledger, reported)
    expected = len([e for e in app.ledger.bugs() if e.expected_pruner is None])
    print(f"ValueCheck: {len(reported)} reported, {real}/{expected} planted bugs found, "
          f"FP rate {1 - real / len(reported):.0%}")
    for pruner, count in sorted(report.prune_stats.items()):
        print(f"  pruned by {pruner}: {count}")

    coverity = CoverityUnused().analyze(project)
    coverity_real = len(
        {
            entry.join_key
            for warning in coverity.warnings
            if (entry := app.ledger.match_warning(warning.file, warning.function, warning.var))
            is not None
            and entry.is_bug
        }
    )
    print(f"Coverity-style baseline: {coverity.count()} warnings, {coverity_real} real")

    print("\ntop findings:")
    for finding in reported[:6]:
        entry = app.ledger.match_finding(finding)
        verdict = "BUG" if entry is not None and entry.is_bug else "minor"
        print(
            f"  #{finding.rank:<3} fam={finding.familiarity:.2f} "
            f"{finding.candidate.function}/{finding.candidate.var} -> {verdict}"
        )

    assert real == expected, "pipeline should rediscover every planted bug"
    print("\nAll planted bugs rediscovered on the custom corpus. ✔")


if __name__ == "__main__":
    main()
