#!/usr/bin/env python3
"""Quickstart: detect the paper's Figure 8 bug in a two-author history.

The scenario: author1 wrote ``fsal_acl_posix`` checking the status of
``get_permset``; author2 later inserted a recomputation that clobbers the
status before the check.  The error path is now silently dead — a broken
access-control bug hiding behind an "unused definition".

Run:  python examples/quickstart.py
"""

from repro.core import ValueCheck
from repro.core.project import Project
from repro.vcs import Author, Repository

AUTHOR1 = Author("author1", "a1@nfs.example")
AUTHOR2 = Author("author2", "a2@nfs.example")

ORIGINAL = """\
int get_permset(int en, int *pset)
{
    if (en < 0) { return -1; }
    return 0;
}
int calc_mask(int *acl)
{
    if (acl == NULL) { return -1; }
    return 0;
}
int fsal_acl_posix(int en)
{
    int ret;
    int pset;
    int allow_acl;
    ret = get_permset(en, &pset);
    if (ret) { return -1; }
    return 0;
}
"""

# author2's edit inserts `ret = calc_mask(&allow_acl);` between the
# definition and its check — exactly Figure 8 of the paper.
EDITED = ORIGINAL.replace(
    "    ret = get_permset(en, &pset);\n",
    "    ret = get_permset(en, &pset);\n    ret = calc_mask(&allow_acl);\n",
)


def main() -> None:
    # 1. Build the version history (normally this is your git repo).
    repo = Repository("acl-demo")
    repo.commit(AUTHOR1, "add POSIX ACL conversion", {"fsal_acl.c": ORIGINAL}, day=100)
    repo.commit(AUTHOR2, "recompute mask before returning", {"fsal_acl.c": EDITED}, day=900)

    # 2. Parse the head snapshot into a project and run the full pipeline.
    project = Project.from_repository(repo)
    report = ValueCheck().analyze(project)

    # 3. Inspect the ranked report.
    print(report.summary())
    print()
    for finding in report.reported():
        candidate = finding.candidate
        authorship = finding.authorship
        print(f"rank #{finding.rank}: {candidate.file}:{candidate.line}")
        print(f"  kind:        {candidate.kind.value}")
        print(f"  variable:    {candidate.var} in {candidate.function}()")
        print(f"  written by:  {authorship.def_author}")
        print(f"  clobbered by: {', '.join(authorship.counterpart_authors)}"
              f" (line {candidate.overwrite_lines})")
        print(f"  familiarity: {finding.familiarity:.2f} (lower = riskier)")

    assert any(f.candidate.var == "ret" for f in report.reported()), "bug not found?"
    print("\nThe lost get_permset() status is exactly the paper's Figure 8 bug.")


if __name__ == "__main__":
    main()
