#!/usr/bin/env python3
"""Use ValueCheck as a CI gate: analyse only what each commit changed.

§8.6 of the paper argues the analysis is cheap enough to run per commit
("under 5s for all the applications we evaluate").  This example replays
the last commits of a generated NFS-ganesha history through the
incremental analyzer, the way a pre-merge bot would, and fails the
"build" whenever a commit introduces a new cross-scope unused definition
that survives pruning.

Run:  python examples/incremental_ci.py
"""

from repro.core.incremental import IncrementalAnalyzer
from repro.corpus import generate_app
from repro.vcs import Author

REPLAY = 10

GOOD_FN = """\
int read_lease_state(int fd);
int refresh_lease(int fd)
{
    int state;
    state = read_lease_state(fd);
    if (state < 0) { return state; }
    return 0;
}
"""


def main() -> None:
    app = generate_app("nfs-ganesha", scale=0.08, seed=21)
    repo = app.repo
    day = repo.head.day

    # Simulate today's merge queue: a teammate lands a clean function,
    # then a contributor's "refresh eagerly" patch clobbers the status
    # before its check — the kind of commit the gate exists to stop.
    repo.commit(Author("lease-owner"), "add lease refresh", {"fs/lease_ci.c": GOOD_FN}, day=day)
    buggy = GOOD_FN.replace(
        "    if (state < 0) { return state; }\n",
        "    state = 0;\n    if (state < 0) { return state; }\n",
    )
    repo.commit(
        Author("eager-contributor"),
        "always refresh eagerly",
        {"fs/lease_ci.c": buggy},
        day=day,
    )

    start = max(0, len(repo.commits) - 1 - REPLAY)
    print(f"history has {len(repo.commits)} commits; replaying the last {REPLAY}\n")

    analyzer = IncrementalAnalyzer(repo, start_rev=start)
    gate_failures = 0
    total_seconds = 0.0
    for _ in range(min(REPLAY, len(repo.commits) - 1 - start)):
        result = analyzer.replay_next()
        total_seconds += result.seconds
        commit = repo.commit_by_id(result.commit_id)
        reported = result.reported()
        status = "FAIL" if reported else "ok"
        if reported:
            gate_failures += 1
        print(
            f"[{status:>4}] {commit.commit_id} {commit.author.name:<18} "
            f"files={len(result.changed_files)} fns={len(result.changed_functions)} "
            f"({result.seconds * 1000:.0f} ms) — {commit.message[:48]}"
        )
        for finding in reported:
            candidate = finding.candidate
            print(
                f"         new cross-scope unused def: {candidate.function}/{candidate.var} "
                f"({candidate.kind.value}) introduced by "
                f"{finding.authorship.introducing_author}"
            )

    print(
        f"\nreplayed {REPLAY} commits in {total_seconds:.2f}s "
        f"({total_seconds / REPLAY * 1000:.0f} ms/commit); "
        f"{gate_failures} commit(s) would have been blocked"
    )
    assert gate_failures >= 1, "the eager-contributor bug should trip the gate"


if __name__ == "__main__":
    main()
